"""Register allocator unit tests."""

import pytest

from repro.asm import parse_module
from repro.execution import Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.targets import make_target, translate_module
from repro.targets.machine import (
    Imm,
    MachineFunction,
    MachineInstr,
    Mem,
    PhysReg,
    Semantics,
    VirtualReg,
)
from repro.targets.regalloc import (
    LinearScanAllocator,
    SpillAllAllocator,
    instr_defs_uses,
)
from repro.ir import types


class TestDefsUses:
    def test_mov(self):
        d = VirtualReg(0, types.INT)
        s = VirtualReg(1, types.INT)
        instr = MachineInstr("mov", Semantics.MOV, [d, s])
        defs, uses = instr_defs_uses(instr)
        assert defs == [0] and uses == [1]

    def test_store_is_all_uses(self):
        v = VirtualReg(0, types.INT)
        mem = Mem(base=VirtualReg(1, types.pointer_to(types.INT)))
        instr = MachineInstr("mov", Semantics.STORE, [v, mem])
        defs, uses = instr_defs_uses(instr)
        assert defs == [] and uses == [0, 1]

    def test_mem_operand_in_slot_zero_is_use(self):
        mem = Mem(base=VirtualReg(0, types.pointer_to(types.INT)))
        instr = MachineInstr("push", Semantics.PUSH, [mem])
        defs, uses = instr_defs_uses(instr)
        assert defs == [] and uses == [0]


def _no_virtual_registers(machine: MachineFunction) -> bool:
    for instr in machine.instructions():
        for _index, reg in instr.registers():
            if isinstance(reg, VirtualReg):
                return False
    return True


def _fac_module():
    return parse_module("""
    int %fac(int %n) {
    entry:
            %base = setle int %n, 1
            br bool %base, label %one, label %rec
    one:
            ret int 1
    rec:
            %m = sub int %n, 1
            %r = call int %fac(int %m)
            %p = mul int %n, %r
            ret int %p
    }
    """)


class TestAllocatorsEliminateVirtuals:
    def test_spill_all(self):
        module = _fac_module()
        machine = make_target("x86").translate_function(
            module.get_function("fac"))
        assert _no_virtual_registers(machine)

    def test_linear_scan(self):
        module = _fac_module()
        machine = make_target("sparc").translate_function(
            module.get_function("fac"))
        assert _no_virtual_registers(machine)

    def test_linear_scan_respects_register_classes(self):
        module = parse_module("""
        double %mix(double %a, int %b) {
        entry:
                %c = cast int %b to double
                %d = add double %a, %c
                %e = mul double %d, %d
                ret double %e
        }
        """)
        machine = make_target("sparc").translate_function(
            module.get_function("mix"))
        target = make_target("sparc")
        float_regs = set(target.fpr_names) | set(target.scratch_fprs)
        for instr in machine.instructions():
            if instr.semantics == Semantics.ALU \
                    and instr.attrs["value_type"].is_floating_point:
                for _i, reg in instr.registers():
                    if isinstance(reg, PhysReg) \
                            and reg.name not in ("fp", "sp"):
                        assert reg.name in float_regs \
                            or reg.name == target.return_reg


class TestCallPreservation:
    def test_values_survive_calls_under_linear_scan(self):
        """High register pressure across many calls: every live value
        must survive (callee-saved or spilled)."""
        source = """
        int %leaf(int %x) {
        entry:
                %r = add int %x, 1
                ret int %r
        }
        int %main() {
        entry:
                %a = add int 1, 0
                %b = add int 2, 0
                %c = add int 3, 0
                %d = add int 4, 0
                %e = add int 5, 0
                %f = add int 6, 0
                %g = add int 7, 0
                %h = add int 8, 0
                %i = add int 9, 0
                %j = add int 10, 0
                %c1 = call int %leaf(int %a)
                %c2 = call int %leaf(int %b)
                %c3 = call int %leaf(int %c)
                %s1 = add int %a, %b
                %s2 = add int %s1, %c
                %s3 = add int %s2, %d
                %s4 = add int %s3, %e
                %s5 = add int %s4, %f
                %s6 = add int %s5, %g
                %s7 = add int %s6, %h
                %s8 = add int %s7, %i
                %s9 = add int %s8, %j
                %s10 = add int %s9, %c1
                %s11 = add int %s10, %c2
                %s12 = add int %s11, %c3
                ret int %s12
        }
        """
        module = parse_module(source)
        expected = Interpreter(module).run("main").return_value
        assert expected == sum(range(1, 11)) + 2 + 3 + 4
        for target_name in ("x86", "sparc"):
            native = translate_module(module, make_target(target_name))
            value, _ = MachineSimulator(native, module).run("main")
            assert value == expected, target_name

    def test_loop_carried_value_crosses_call_via_back_edge(self):
        """The regression behind the crafty hang: a value live across a
        call only through a loop back edge must not sit in a
        caller-saved register."""
        source = """
        int %leaf(int %x) {
        entry:
                %r = add int %x, 1
                ret int %r
        }
        int %main(int %n) {
        entry:
                br label %loop
        loop:
                %i = phi int [ 0, %entry ], [ %i2, %loop ]
                %acc = phi int [ 0, %entry ], [ %acc2, %loop ]
                %t = call int %leaf(int %i)
                %acc2 = add int %acc, %t
                %i2 = add int %i, 1
                %c = setlt int %i2, %n
                br bool %c, label %loop, label %done
        done:
                ret int %acc2
        }
        """
        module = parse_module(source)
        expected = Interpreter(module).run("main", [20]).return_value
        for target_name in ("x86", "sparc"):
            native = translate_module(module, make_target(target_name))
            value, _ = MachineSimulator(native, module).run(
                "main", [20])
            assert value == expected, target_name

    def test_callee_saved_usage_adds_save_restore(self):
        module = _fac_module()
        machine = make_target("sparc").translate_function(
            module.get_function("fac"))
        mnemonics = [i.mnemonic for i in machine.instructions()]
        # %n lives across the recursive call: a callee-saved register
        # was used, so its save/restore pair must be present.
        assert "save" in mnemonics
        assert "restore" in mnemonics


class TestFrameAccounting:
    def test_spill_all_frame_grows_per_vreg(self):
        module = _fac_module()
        machine = make_target("x86").translate_function(
            module.get_function("fac"))
        assert machine.frame_size >= 8 * 4  # several spill slots

    def test_linear_scan_uses_fewer_slots(self):
        module = _fac_module()
        sparc = make_target("sparc").translate_function(
            module.get_function("fac"))
        x86 = make_target("x86").translate_function(
            module.get_function("fac"))
        assert sparc.frame_size <= x86.frame_size
