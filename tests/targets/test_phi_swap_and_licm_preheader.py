"""Regression nets for two delicate paths:

* phi swap cycles in the translator's copy insertion (the staged
  parallel-copy case of Section 3.1's phi elimination);
* LICM preheader synthesis when the loop header has several outside
  predecessors.
"""

import pytest

from repro.asm import parse_module
from repro.execution import Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.ir import verify_module
from repro.targets import make_target, translate_module
from repro.transforms import LoopInvariantCodeMotion


class TestPhiSwapCycles:
    SWAP = """
    int %fib_pair(int %n) {
    entry:
            br label %loop
    loop:
            %a = phi int [ 0, %entry ], [ %b, %loop ]
            %b = phi int [ 1, %entry ], [ %sum, %loop ]
            %i = phi int [ 0, %entry ], [ %i2, %loop ]
            %sum = add int %a, %b
            %i2 = add int %i, 1
            %c = setlt int %i2, %n
            br bool %c, label %loop, label %done
    done:
            ret int %a
    }
    """

    ROTATE = """
    int %rotate3(int %n) {
    entry:
            br label %loop
    loop:
            %x = phi int [ 1, %entry ], [ %y, %loop ]
            %y = phi int [ 2, %entry ], [ %z, %loop ]
            %z = phi int [ 3, %entry ], [ %x, %loop ]
            %i = phi int [ 0, %entry ], [ %i2, %loop ]
            %i2 = add int %i, 1
            %c = setlt int %i2, %n
            br bool %c, label %loop, label %done
    done:
            %t = mul int %x, 100
            %t2 = add int %t, %y
            %t3 = mul int %t2, 10
            %r = add int %t3, %z
            ret int %r
    }
    """

    @pytest.mark.parametrize("target_name", ["x86", "sparc"])
    def test_two_phi_swap(self, target_name):
        module = parse_module(self.SWAP)
        verify_module(module)
        expected = Interpreter(module).run(
            "fib_pair", [10]).return_value
        assert expected == 34  # fib(9): %a trails the pair by one
        native = translate_module(module, make_target(target_name))
        value, _ = MachineSimulator(native, module).run(
            "fib_pair", [10])
        assert value == expected

    @pytest.mark.parametrize("target_name", ["x86", "sparc"])
    @pytest.mark.parametrize("iterations", [0, 1, 2, 3, 7])
    def test_three_phi_rotation(self, target_name, iterations):
        module = parse_module(self.ROTATE)
        expected = Interpreter(module).run(
            "rotate3", [iterations]).return_value
        native = translate_module(module, make_target(target_name))
        value, _ = MachineSimulator(native, module).run(
            "rotate3", [iterations])
        assert value == expected, (target_name, iterations)


class TestLICMPreheaderSynthesis:
    MULTI_ENTRY = """
    int %f(bool %which, int %n, int %a, int %b) {
    entry:
            br bool %which, label %from_left, label %from_right
    from_left:
            br label %header
    from_right:
            br label %header
    header:
            %i = phi int [ 0, %from_left ], [ 5, %from_right ],
                 [ %i2, %header ]
            %s = phi int [ 0, %from_left ], [ 100, %from_right ],
                 [ %s2, %header ]
            %inv = mul int %a, %b
            %s2 = add int %s, %inv
            %i2 = add int %i, 1
            %c = setlt int %i2, %n
            br bool %c, label %header, label %done
    done:
            ret int %s2
    }
    """

    def test_preheader_created_and_semantics_preserved(self):
        module = parse_module(self.MULTI_ENTRY)
        verify_module(module)
        results_before = {
            (which, n): Interpreter(module).run(
                "f", [which, n, 3, 4]).return_value
            for which in (True, False) for n in (1, 6, 10)
        }
        changed = LoopInvariantCodeMotion().run(module.get_function("f"))
        verify_module(module)
        assert changed
        function = module.get_function("f")
        header = [b for b in function.blocks if b.name == "header"][0]
        assert not any(i.opcode == "mul" for i in header.instructions)
        preheaders = [b for b in function.blocks
                      if "preheader" in (b.name or "")]
        assert preheaders, "a merge preheader must be synthesized"
        for (which, n), expected in results_before.items():
            result = Interpreter(module).run("f", [which, n, 3, 4])
            assert result.return_value == expected, (which, n)

    @pytest.mark.parametrize("target_name", ["x86", "sparc"])
    def test_transformed_function_translates(self, target_name):
        module = parse_module(self.MULTI_ENTRY)
        LoopInvariantCodeMotion().run(module.get_function("f"))
        verify_module(module)
        expected = Interpreter(module).run(
            "f", [True, 6, 3, 4]).return_value
        native = translate_module(module, make_target(target_name))
        value, _ = MachineSimulator(native, module).run(
            "f", [True, 6, 3, 4])
        assert value == expected


class TestInlinerWithInvokeInCallee:
    def test_callee_containing_invoke_inlines(self):
        from repro.transforms import FunctionInliner

        module = parse_module("""
        int %thrower(int %x) {
        entry:
                %bad = setgt int %x, 5
                br bool %bad, label %t, label %f
        t:
                unwind
        f:
                ret int %x
        }
        int %guarded(int %x) {
        entry:
                %v = invoke int %thrower(int %x) to label %ok
                      unwind label %caught
        ok:
                ret int %v
        caught:
                ret int -1
        }
        int %main() {
        entry:
                %a = call int %guarded(int 3)
                %b = call int %guarded(int 9)
                %r = mul int %a, %b
                ret int %r
        }
        """)
        expected = Interpreter(module).run("main").return_value
        assert expected == -3
        FunctionInliner().run_module(module)
        verify_module(module)
        after = Interpreter(module).run("main")
        assert after.return_value == expected
        main = module.get_function("main")
        # guarded (with its invoke) was inlined into main.
        assert any(i.opcode == "invoke" for i in main.instructions())
