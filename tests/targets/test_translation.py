"""Translator tests: lowering, calling conventions, differential
execution against the interpreter on both targets."""

import pytest

from helpers import build_factorial, build_loop_sum
from repro.asm import parse_module
from repro.execution import ExecutionTrap, Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.ir import verify_module
from repro.llee.jit import FunctionJIT
from repro.targets import (
    make_target,
    split_critical_edges,
    translate_module,
    verify_native_module,
)
from repro.targets.machine import Semantics

TARGETS = ("x86", "sparc")


def _differential(source_or_module, entry="main", args=(),
                  targets=TARGETS):
    if isinstance(source_or_module, str):
        module = parse_module(source_or_module)
    else:
        module = source_or_module
    verify_module(module)
    expected = Interpreter(module).run(entry, args)
    for target_name in targets:
        native = translate_module(module, make_target(target_name))
        verify_native_module(native)
        simulator = MachineSimulator(native, module)
        value, _status = simulator.run(entry, args)
        assert value == expected.return_value, (
            target_name, value, expected.return_value)
        assert simulator.output_text() == expected.output, target_name
    return expected


class TestDifferential:
    def test_factorial(self):
        _differential(build_factorial())

    def test_loops_arrays_phis(self):
        _differential(build_loop_sum(30))

    def test_float_math(self):
        _differential("""
        declare void %print_double(double)
        double %main() {
        entry:
                %a = add double 1.25, 2.5
                %b = mul double %a, %a
                %c = div double %b, 3.0
                %d = sub double %c, 0.125
                call void %print_double(double %d)
                ret double %d
        }
        """)

    def test_many_arguments_spill_to_stack(self):
        """More args than any register convention holds: exercises both
        PUSH-based passing and the callee's incoming-slot reads."""
        _differential("""
        int %sum8(int %a, int %b, int %c, int %d,
                  int %e, int %f, int %g, int %h) {
        entry:
                %s1 = add int %a, %b
                %s2 = add int %s1, %c
                %s3 = add int %s2, %d
                %s4 = add int %s3, %e
                %s5 = add int %s4, %f
                %s6 = add int %s5, %g
                %s7 = add int %s6, %h
                ret int %s7
        }
        int %main() {
        entry:
                %r = call int %sum8(int 1, int 2, int 3, int 4,
                                    int 5, int 6, int 7, int 8)
                ret int %r
        }
        """)

    def test_indirect_calls_through_table(self):
        _differential("""
        %ops = constant [2 x int (int)*] [ int (int)* %double_it,
                                           int (int)* %negate ]
        int %double_it(int %x) {
        entry:
                %r = mul int %x, 2
                ret int %r
        }
        int %negate(int %x) {
        entry:
                %r = sub int 0, %x
                ret int %r
        }
        int %main() {
        entry:
                %p0 = getelementptr [2 x int (int)*]* %ops, long 0, long 0
                %f0 = load int (int)** %p0
                %p1 = getelementptr [2 x int (int)*]* %ops, long 0, long 1
                %f1 = load int (int)** %p1
                %a = call int %f0(int 21)
                %b = call int %f1(int 2)
                %r = add int %a, %b
                ret int %r
        }
        """)

    def test_invoke_unwind_native(self):
        _differential("""
        int %thrower(int %x) {
        entry:
                %bad = setgt int %x, 5
                br bool %bad, label %t, label %f
        t:
                unwind
        f:
                ret int %x
        }
        int %main() {
        entry:
                %a = invoke int %thrower(int 3) to label %ok1
                      unwind label %h1
        ok1:
                %b = invoke int %thrower(int 9) to label %ok2
                      unwind label %h2
        ok2:
                ret int 0
        h1:
                ret int -1
        h2:
                %r = add int %a, 100
                ret int %r
        }
        """)

    def test_recursion_and_globals(self):
        _differential("""
        %depth_seen = global int 0
        int %probe(int %n) {
        entry:
                %cur = load int* %depth_seen
                %more = setgt int %n, %cur
                br bool %more, label %bump, label %go
        bump:
                store int %n, int* %depth_seen
                br label %go
        go:
                %z = seteq int %n, 0
                br bool %z, label %stop, label %rec
        stop:
                ret int 0
        rec:
                %m = sub int %n, 1
                %r = call int %probe(int %m)
                ret int %r
        }
        int %main() {
        entry:
                %x = call int %probe(int 40)
                %d = load int* %depth_seen
                ret int %d
        }
        """)

    def test_dynamic_alloca(self):
        _differential("""
        int %main() {
        entry:
                %n = add uint 6, 0
                %buf = alloca int, uint %n
                %p2 = getelementptr int* %buf, long 2
                store int 55, int* %p2
                %v = load int* %p2
                ret int %v
        }
        """)

    def test_masked_exceptions_native(self):
        """The ExceptionsEnabled contract holds in translated code."""
        _differential("""
        int %main() {
        entry:
                %q = div int 5, 0 !ee(false)
                %p = cast ulong 64 to int*
                %v = load int* %p !ee(false)
                %r = add int %q, %v
                ret int %r
        }
        """)

    def test_enabled_trap_propagates_native(self):
        module = parse_module("""
        int %main() {
        entry:
                %q = div int 5, 0
                ret int %q
        }
        """)
        for target_name in TARGETS:
            native = translate_module(module, make_target(target_name))
            simulator = MachineSimulator(native, module)
            with pytest.raises(ExecutionTrap):
                simulator.run("main")

    def test_both_endiannesses_execute_same_program(self):
        source = """
        int %main() {
        entry:
                %slot = alloca uint
                store uint 305419896, uint* %slot
                %bytes = cast uint* %slot to ubyte*
                %b0 = load ubyte* %bytes
                %r = cast ubyte %b0 to int
                ret int %r
        }
        """
        module = parse_module(source)
        x86 = translate_module(module, make_target("x86"))
        x86_sim = MachineSimulator(x86, module)
        assert x86_sim.run("main")[0] == 0x78  # little-endian
        module_be = parse_module("target endian = big\n" + source)
        sparc = translate_module(module_be, make_target("sparc"))
        sparc_sim = MachineSimulator(sparc, module_be)
        assert sparc_sim.run("main")[0] == 0x12  # big-endian


class TestLoweringDetails:
    def test_split_critical_edges(self):
        module = parse_module("""
        int %f(bool %c) {
        entry:
                br bool %c, label %merge, label %side
        side:
                br label %merge
        merge:
                %v = phi int [ 1, %entry ], [ 2, %side ]
                ret int %v
        }
        """)
        f = module.get_function("f")
        split = split_critical_edges(f)
        assert split == 1  # entry->merge was critical
        verify_module(module)

    def test_static_allocas_are_frame_slots(self):
        """Section 3.2: 'the translator preallocates all fixed-size
        alloca objects in the function's stack frame' — so no ADJSP
        appears for them."""
        module = parse_module("""
        int %f() {
        entry:
                %a = alloca int
                %b = alloca [10 x double]
                store int 1, int* %a
                %v = load int* %a
                ret int %v
        }
        """)
        machine = make_target("x86").translate_function(
            module.get_function("f"))
        assert machine.frame_size >= 4 + 80
        semantics = [i.semantics for i in machine.instructions()]
        assert Semantics.ADJSP not in semantics

    def test_dynamic_alloca_adjusts_sp(self):
        module = parse_module("""
        int* %f(uint %n) {
        entry:
                %a = alloca int, uint %n
                ret int* %a
        }
        """)
        machine = make_target("x86").translate_function(
            module.get_function("f"))
        semantics = [i.semantics for i in machine.instructions()]
        assert Semantics.ADJSP in semantics

    def test_phi_becomes_predecessor_copies(self):
        """Section 3.1: 'the translator eliminates the φ-nodes by
        introducing copy operations into predecessor basic blocks'."""
        module = build_loop_sum(5)
        machine = make_target("sparc").translate_function(
            module.get_function("main"))
        movs = [i for i in machine.instructions()
                if i.semantics == Semantics.MOV]
        assert movs  # the loop phis turned into copies

    def test_x86_folds_memory_operands(self):
        module = build_factorial()
        machine = make_target("x86").translate_function(
            module.get_function("fac"))
        from repro.targets.machine import Mem
        folded = [
            i for i in machine.instructions()
            if i.semantics in (Semantics.ALU, Semantics.CMP)
            and any(isinstance(op, Mem) for op in i.operands)
        ]
        assert folded, "x86 should fold stack slots into ALU operands"

    def test_sparc_has_no_alu_memory_operands(self):
        module = build_factorial()
        machine = make_target("sparc").translate_function(
            module.get_function("fac"))
        from repro.targets.machine import Mem
        for instr in machine.instructions():
            if instr.semantics == Semantics.ALU:
                assert not any(isinstance(op, Mem)
                               for op in instr.operands), instr

    def test_sparc_delay_slots(self):
        module = build_factorial()
        machine = make_target("sparc").translate_function(
            module.get_function("fac"))
        instructions = list(machine.instructions())
        for index, instr in enumerate(instructions):
            if instr.semantics in (Semantics.JCC, Semantics.CALL):
                assert instructions[index + 1].mnemonic == "nop", instr

    def test_fixed_vs_variable_encoding(self):
        module = build_factorial()
        sparc = make_target("sparc").translate_function(
            module.get_function("fac"))
        assert sparc.code_size() == 4 * sparc.num_instructions()
        x86 = make_target("x86").translate_function(
            module.get_function("fac"))
        sizes = {make_target("x86").encoded_size(i)
                 for i in x86.instructions()}
        assert len(sizes) > 1  # variable-length


class TestNativeSerialization:
    def test_round_trip_and_execute(self):
        from repro.targets import deserialize_native, serialize_native

        module = build_factorial()
        target = make_target("x86")
        native = translate_module(module, target)
        data = serialize_native(native)
        restored = deserialize_native(data, target)
        assert restored.num_instructions() == native.num_instructions()
        simulator = MachineSimulator(restored, module)
        assert simulator.run("main")[0] == 3628800

    def test_wrong_target_rejected(self):
        from repro.targets import deserialize_native, serialize_native

        module = build_factorial()
        native = translate_module(module, make_target("x86"))
        data = serialize_native(native)
        with pytest.raises(ValueError):
            deserialize_native(data, make_target("sparc"))


class TestJITLaziness:
    def test_untranslated_functions_resolve_on_demand(self):
        module = build_factorial()
        target = make_target("sparc")
        jit = FunctionJIT(module, target)
        from repro.targets import NativeModule

        native = NativeModule(target, module.name)
        simulator = MachineSimulator(native, module,
                                     resolver=jit.translate)
        value, _ = simulator.run("main")
        assert value == 3628800
        assert jit.stats.functions_translated == 2  # main + fac
