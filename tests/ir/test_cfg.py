"""Dominator, frontier, and CFG-utility tests."""

import pytest

from repro.ir import IRBuilder, Module, types
from repro.ir.cfg import (
    DominatorTree,
    dominance_frontiers,
    postorder,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
)
from repro.ir.values import const_bool, const_int


def _diamond():
    """entry -> (left | right) -> merge."""
    module = Module("diamond")
    f = module.create_function(
        "f", types.function_of(types.INT, [types.BOOL]), ["c"])
    entry = f.add_block("entry")
    left = f.add_block("left")
    right = f.add_block("right")
    merge = f.add_block("merge")
    b = IRBuilder(entry)
    b.cond_br(f.args[0], left, right)
    b.set_block(left)
    lv = b.add(const_int(types.INT, 1), const_int(types.INT, 2))
    b.br(merge)
    b.set_block(right)
    rv = b.add(const_int(types.INT, 3), const_int(types.INT, 4))
    b.br(merge)
    b.set_block(merge)
    phi = b.phi(types.INT, [(lv, left), (rv, right)])
    b.ret(phi)
    return f, entry, left, right, merge


def _loop():
    """entry -> header <-> body; header -> exit."""
    module = Module("loop")
    f = module.create_function("f", types.function_of(types.INT,
                                                      [types.INT]), ["n"])
    entry = f.add_block("entry")
    header = f.add_block("header")
    body = f.add_block("body")
    exit_block = f.add_block("exit")
    b = IRBuilder(entry)
    b.br(header)
    b.set_block(header)
    i = b.phi(types.INT, name="i")
    i.add_incoming(const_int(types.INT, 0), entry)
    c = b.setlt(i, f.args[0])
    b.cond_br(c, body, exit_block)
    b.set_block(body)
    i2 = b.add(i, const_int(types.INT, 1))
    i.add_incoming(i2, body)
    b.br(header)
    b.set_block(exit_block)
    b.ret(i)
    return f, entry, header, body, exit_block


class TestOrderings:
    def test_reachable_blocks(self):
        f, entry, left, right, merge = _diamond()
        assert set(b.name for b in reachable_blocks(f)) == {
            "entry", "left", "right", "merge"}

    def test_rpo_entry_first(self):
        f, entry, *_rest = _diamond()
        rpo = reverse_postorder(f)
        assert rpo[0] is entry
        assert len(rpo) == 4

    def test_postorder_entry_last(self):
        f, entry, *_rest = _diamond()
        order = postorder(f)
        assert order[-1] is entry

    def test_rpo_respects_topology(self):
        f, entry, header, body, exit_block = _loop()
        rpo = reverse_postorder(f)
        positions = {b.name: i for i, b in enumerate(rpo)}
        assert positions["entry"] < positions["header"]
        assert positions["header"] < positions["body"]


class TestDominators:
    def test_diamond_idoms(self):
        f, entry, left, right, merge = _diamond()
        dom = DominatorTree(f)
        assert dom.immediate_dominator(entry) is None
        assert dom.immediate_dominator(left) is entry
        assert dom.immediate_dominator(right) is entry
        assert dom.immediate_dominator(merge) is entry

    def test_dominates_relation(self):
        f, entry, left, right, merge = _diamond()
        dom = DominatorTree(f)
        assert dom.dominates(entry, merge)
        assert dom.dominates(entry, entry)
        assert not dom.dominates(left, merge)
        assert not dom.dominates(left, right)
        assert dom.strictly_dominates(entry, left)
        assert not dom.strictly_dominates(entry, entry)

    def test_loop_idoms(self):
        f, entry, header, body, exit_block = _loop()
        dom = DominatorTree(f)
        assert dom.immediate_dominator(body) is header
        assert dom.immediate_dominator(exit_block) is header
        assert dom.dominates(header, body)
        assert not dom.dominates(body, header)

    def test_children_partition(self):
        f, entry, header, body, exit_block = _loop()
        dom = DominatorTree(f)
        assert set(b.name for b in dom.children(header)) == \
            {"body", "exit"}

    def test_instruction_dominance_same_block(self):
        f, entry, header, body, exit_block = _loop()
        dom = DominatorTree(f)
        first, second = body.instructions[0], body.instructions[1]
        assert dom.instruction_dominates(first, second)
        assert not dom.instruction_dominates(second, first)

    def test_phi_use_checks_predecessor(self):
        f, entry, header, body, exit_block = _loop()
        dom = DominatorTree(f)
        phi = header.phis()[0]
        i2 = body.instructions[0]  # defined in body, used by phi
        # The phi use of i2 occurs "at the end of" body.
        index = list(phi.operands).index(i2)
        assert dom.instruction_dominates(i2, phi, index)


class TestFrontiers:
    def test_diamond_frontier_is_merge(self):
        f, entry, left, right, merge = _diamond()
        frontiers = dominance_frontiers(f)
        assert frontiers[id(left)] == {merge}
        assert frontiers[id(right)] == {merge}
        assert frontiers[id(entry)] == set()

    def test_loop_header_in_own_frontier(self):
        f, entry, header, body, exit_block = _loop()
        frontiers = dominance_frontiers(f)
        assert header in frontiers[id(header)]
        assert header in frontiers[id(body)]


class TestUnreachableRemoval:
    def test_removes_dead_block_and_phi_edges(self):
        f, entry, header, body, exit_block = _loop()
        dead = f.add_block("dead")
        b = IRBuilder(dead)
        extra = b.add(const_int(types.INT, 7), const_int(types.INT, 8))
        header.phis()[0].add_incoming(extra, dead)
        b.br(header)
        assert remove_unreachable_blocks(f) == 1
        assert all(block.name != "dead" for block in f.blocks)
        assert header.phis()[0].num_incoming == 2

    def test_noop_when_all_reachable(self):
        f, *_ = _diamond()
        assert remove_unreachable_blocks(f) == 0
