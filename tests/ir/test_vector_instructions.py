"""Vector-extension IR: printer -> parser -> verifier round-trips for
every vector instruction, plus malformed-form rejections (bad lane
counts, element/operand type mismatches, cross-block vector uses)."""

import pytest

from repro.asm import ParseError, parse_module
from repro.ir import instructions as insts
from repro.ir import print_module, types, verify_module
from repro.ir.types import LlvaTypeError
from repro.ir.values import Argument, const_int
from repro.ir.verifier import VerificationError

_HEADER = """
target pointersize = 64
target endian = little
"""

#: One function exercising all nine vector opcodes on double lanes.
_DOUBLE_KERNEL = _HEADER + """
double %kernel(double* %p, double* %q) {
entry:
        %a = vload <4 x double>, double* %p
        %b = vload <4 x double>, double* %q
        %s = vadd <4 x double> %a, %b
        %d = vsub <4 x double> %a, %b
        %m = vmul <4 x double> %s, %d
        %c = vsplat <4 x double> 2.5
        %t = vmul <4 x double> %m, %c
        vstore <4 x double> %t, double* %p
        %r0 = vreduce.add double 0.0, <4 x double> %t
        %r1 = vreduce.min double %r0, <4 x double> %a
        %r2 = vreduce.max double %r1, <4 x double> %b
        ret double %r2
}
"""

#: The same shape on int lanes (wrapping arithmetic).
_INT_KERNEL = _HEADER + """
int %ikernel(int* %p, int* %q) {
entry:
        %a = vload <4 x int>, int* %p
        %b = vload <4 x int>, int* %q
        %s = vadd <4 x int> %a, %b
        %c = vsplat <4 x int> 3
        %m = vmul <4 x int> %s, %c
        %d = vsub <4 x int> %m, %b
        vstore <4 x int> %d, int* %q
        %r = vreduce.add int 0, <4 x int> %d
        %mn = vreduce.min int %r, <4 x int> %a
        %mx = vreduce.max int %mn, <4 x int> %b
        ret int %mx
}
"""


def _round_trip(source):
    module = parse_module(source, "vec")
    verify_module(module)
    text1 = print_module(module)
    module2 = parse_module(text1, "vec")
    verify_module(module2)
    assert print_module(module2) == text1
    return module


class TestRoundTrip:
    def test_double_kernel_all_opcodes(self):
        module = _round_trip(_DOUBLE_KERNEL)
        opcodes = {inst.opcode
                   for block in module.get_function("kernel").blocks
                   for inst in block.instructions}
        assert {"vload", "vstore", "vadd", "vsub", "vmul", "vsplat",
                "vreduce.add", "vreduce.min", "vreduce.max"} <= opcodes

    def test_int_kernel(self):
        _round_trip(_INT_KERNEL)

    def test_printed_vector_type_spells_lanes(self):
        module = parse_module(_DOUBLE_KERNEL, "vec")
        assert "<4 x double>" in print_module(module)

    @pytest.mark.parametrize("lanes", [2, 8, 16])
    def test_other_lane_counts(self, lanes):
        _round_trip(_HEADER + """
        double %f(double* %p) {{
        entry:
                %a = vload <{0} x double>, double* %p
                %b = vadd <{0} x double> %a, %a
                %r = vreduce.add double 0.0, <{0} x double> %b
                ret double %r
        }}
        """.format(lanes))


class TestMalformedLaneCounts:
    @pytest.mark.parametrize("lanes", ["0", "1", "17", "99"])
    def test_parser_rejects_bad_lane_count(self, lanes):
        with pytest.raises(ParseError):
            parse_module(_HEADER + """
            double %f(double* %p) {
            entry:
                    %a = vload <""" + lanes + """ x double>, double* %p
                    ret double 0.0
            }
            """, "bad")

    def test_vector_of_rejects_bad_lane_counts(self):
        for lanes in (0, 1, types.MAX_VECTOR_LANES + 1, "4"):
            with pytest.raises(LlvaTypeError):
                types.vector_of(types.DOUBLE, lanes)

    def test_vector_of_rejects_non_arithmetic_elements(self):
        for element in (types.VOID, types.BOOL,
                        types.pointer_to(types.INT)):
            with pytest.raises(LlvaTypeError):
                types.vector_of(element, 4)

    def test_parser_rejects_pointer_element(self):
        with pytest.raises(ParseError):
            parse_module(_HEADER + """
            double %f(int** %p) {
            entry:
                    %a = vload <4 x int*>, int** %p
                    ret double 0.0
            }
            """, "bad")


class TestTypeMismatches:
    def _vec(self, element=types.DOUBLE, lanes=4, name="v"):
        """An SSA value of vector type (a splat of an argument)."""
        scalar = Argument(element, name + ".s", 0)
        return insts.VSplatInst(types.vector_of(element, lanes), scalar,
                                name=name)

    def test_vsplat_scalar_must_match_element(self):
        with pytest.raises(LlvaTypeError):
            insts.VSplatInst(types.vector_of(types.DOUBLE, 4),
                             const_int(types.INT, 7))

    def test_vsplat_result_must_be_vector(self):
        with pytest.raises(LlvaTypeError):
            insts.VSplatInst(types.DOUBLE, Argument(types.DOUBLE, "x", 0))

    def test_vadd_requires_vector_operands(self):
        scalar = Argument(types.DOUBLE, "x", 0)
        with pytest.raises(LlvaTypeError):
            insts.VAddInst(scalar, scalar)

    def test_vadd_lane_counts_must_agree(self):
        with pytest.raises(LlvaTypeError):
            insts.VAddInst(self._vec(lanes=4), self._vec(lanes=8))

    def test_vadd_element_types_must_agree(self):
        with pytest.raises(LlvaTypeError):
            insts.VAddInst(self._vec(types.DOUBLE), self._vec(types.INT))

    def test_vreduce_init_must_match_lanes(self):
        with pytest.raises(LlvaTypeError):
            insts.VReduceAddInst(const_int(types.INT, 0),
                                 self._vec(types.DOUBLE))

    def test_vreduce_requires_vector(self):
        with pytest.raises(LlvaTypeError):
            insts.VReduceMinInst(Argument(types.INT, "a", 0),
                                 Argument(types.INT, "b", 1))

    def test_vload_pointer_must_point_at_element(self):
        pointer = Argument(types.pointer_to(types.INT), "p", 0)
        with pytest.raises(LlvaTypeError):
            insts.VLoadInst(types.vector_of(types.DOUBLE, 4), pointer)

    def test_vstore_pointer_must_point_at_element(self):
        pointer = Argument(types.pointer_to(types.DOUBLE), "p", 0)
        with pytest.raises(LlvaTypeError):
            insts.VStoreInst(self._vec(types.INT), pointer)

    def test_no_pointer_to_vector(self):
        with pytest.raises(LlvaTypeError):
            types.pointer_to(types.vector_of(types.DOUBLE, 4))


class TestVerifierRules:
    def test_vector_values_are_block_local(self):
        module = parse_module(_HEADER + """
        double %f(double* %p) {
        entry:
                %v = vload <4 x double>, double* %p
                br label %next
        next:
                %r = vreduce.add double 0.0, <4 x double> %v
                ret double %r
        }
        """, "crossblock")
        with pytest.raises(VerificationError) as info:
            verify_module(module)
        assert any("outside its defining block" in error
                   for error in info.value.errors)

    def test_vector_values_cannot_cross_phis(self):
        # No phi of vector type exists: the parser has no way to spell
        # one (phi requires a scalar type), and the verifier's
        # block-local rule rejects the incoming use anyway.
        module = parse_module(_HEADER + """
        double %f(double* %p, bool %c) {
        entry:
                %v = vload <4 x double>, double* %p
                br bool %c, label %a, label %b
        a:
                %r1 = vreduce.add double 0.0, <4 x double> %v
                ret double %r1
        b:
                ret double 1.0
        }
        """, "crossphi")
        with pytest.raises(VerificationError):
            verify_module(module)
