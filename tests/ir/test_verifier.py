"""Verifier tests: every structural rule must be enforced."""

import pytest

from repro.ir import IRBuilder, Module, types, verify_module
from repro.ir import instructions as insts
from repro.ir.values import const_bool, const_int
from repro.ir.verifier import VerificationError


def _module_with_main():
    module = Module("v")
    f = module.create_function("main", types.function_of(types.INT, []))
    return module, f


def _expect_error(module, fragment):
    with pytest.raises(VerificationError) as info:
        verify_module(module)
    assert fragment in str(info.value), str(info.value)


class TestBlockRules:
    def test_missing_terminator(self):
        module, f = _module_with_main()
        block = f.add_block("entry")
        b = IRBuilder(block)
        b.add(const_int(types.INT, 1), const_int(types.INT, 2))
        _expect_error(module, "does not end in a terminator")

    def test_empty_block(self):
        module, f = _module_with_main()
        entry = f.add_block("entry")
        IRBuilder(entry).ret(const_int(types.INT, 0))
        f.add_block("empty")
        _expect_error(module, "empty block")

    def test_terminator_mid_block(self):
        module, f = _module_with_main()
        entry = f.add_block("entry")
        ret1 = insts.RetInst(const_int(types.INT, 1))
        ret2 = insts.RetInst(const_int(types.INT, 2))
        entry.instructions.extend([ret1, ret2])
        ret1.parent = entry
        ret2.parent = entry
        _expect_error(module, "terminator in mid-block")

    def test_body_required(self):
        # A function without blocks is a declaration to verify_module,
        # but verifying it directly demands a body.
        from repro.ir import verify_function
        module, f = _module_with_main()
        with pytest.raises(VerificationError) as info:
            verify_function(f)
        assert "no basic blocks" in str(info.value)

    def test_entry_with_predecessor(self):
        module, f = _module_with_main()
        entry = f.add_block("entry")
        other = f.add_block("other")
        b = IRBuilder(entry)
        b.br(other)
        b.set_block(other)
        b.br(entry)
        _expect_error(module, "entry block has predecessors")


class TestReturnRules:
    def test_ret_type_mismatch(self):
        module, f = _module_with_main()
        entry = f.add_block("entry")
        IRBuilder(entry).ret(const_int(types.LONG, 0))
        _expect_error(module, "ret type")

    def test_ret_void_in_valued_function(self):
        module, f = _module_with_main()
        entry = f.add_block("entry")
        IRBuilder(entry).ret()
        _expect_error(module, "ret void in non-void")


class TestPhiRules:
    def test_phi_incoming_must_match_predecessors(self):
        module, f = _module_with_main()
        entry = f.add_block("entry")
        merge = f.add_block("merge")
        b = IRBuilder(entry)
        b.br(merge)
        b.set_block(merge)
        phi = b.phi(types.INT)  # no incoming at all
        b.ret(phi)
        _expect_error(module, "phi")

    def test_phi_after_non_phi(self):
        module, f = _module_with_main()
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        v = b.add(const_int(types.INT, 1), const_int(types.INT, 2))
        phi = insts.PhiInst(types.INT)
        entry.instructions.append(phi)
        phi.parent = entry
        b.ret(v)
        _expect_error(module, "phi after non-phi")


class TestSSARules:
    def test_use_before_def_in_block(self):
        module, f = _module_with_main()
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        one = const_int(types.INT, 1)
        first = insts.AddInst(one, one, "first")
        second = insts.AddInst(one, one, "second")
        # first uses second, but second comes later.
        entry.append(first)
        entry.append(second)
        first.set_operand(0, second)
        b.set_block(entry)
        b.ret(first)
        _expect_error(module, "SSA violation")

    def test_use_not_dominated_across_blocks(self):
        module, f = _module_with_main()
        entry = f.add_block("entry")
        left = f.add_block("left")
        right = f.add_block("right")
        merge = f.add_block("merge")
        b = IRBuilder(entry)
        b.cond_br(const_bool(True), left, right)
        b.set_block(left)
        lv = b.add(const_int(types.INT, 1), const_int(types.INT, 2))
        b.br(merge)
        b.set_block(right)
        b.br(merge)
        b.set_block(merge)
        b.ret(lv)  # lv does not dominate merge
        _expect_error(module, "SSA violation")

    def test_valid_module_verifies(self):
        module, f = _module_with_main()
        entry = f.add_block("entry")
        IRBuilder(entry).ret(const_int(types.INT, 0))
        verify_module(module)  # should not raise


class TestUseChainChecks:
    def test_corrupted_use_list_detected(self):
        module, f = _module_with_main()
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        v = b.add(const_int(types.INT, 1), const_int(types.INT, 2))
        b.ret(v)
        ret = entry.terminator
        # Corrupt: bypass set_operand.
        ret._operands[0] = const_int(types.INT, 9)
        _expect_error(module, "use list")
