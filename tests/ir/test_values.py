"""Tests for values, constants, and def-use chains."""

import pytest

from repro.ir import types
from repro.ir import values as V
from repro.ir.instructions import AddInst, MulInst
from repro.ir.types import LlvaTypeError


class TestConstants:
    def test_int_interning(self):
        assert V.const_int(types.INT, 5) is V.const_int(types.INT, 5)
        assert V.const_int(types.INT, 5) is not V.const_int(types.LONG, 5)

    def test_int_range_checked(self):
        with pytest.raises(LlvaTypeError):
            V.ConstantInt(types.UBYTE, 256)
        with pytest.raises(LlvaTypeError):
            V.ConstantInt(types.UBYTE, -1)

    def test_int_requires_integer_type(self):
        with pytest.raises(LlvaTypeError):
            V.ConstantInt(types.DOUBLE, 1)

    def test_bool_singletons(self):
        assert V.const_bool(True) is V.TRUE
        assert V.const_bool(False) is V.FALSE

    def test_fp_float_rounds_to_single(self):
        c = V.const_fp(types.FLOAT, 0.1)
        assert c.value != 0.1  # 0.1 is not exactly representable in f32
        d = V.const_fp(types.DOUBLE, 0.1)
        assert d.value == 0.1

    def test_null_requires_pointer(self):
        ptr = types.pointer_to(types.INT)
        assert V.const_null(ptr) is V.const_null(ptr)
        with pytest.raises(LlvaTypeError):
            V.ConstantNull(types.INT)

    def test_zero_dispatch(self):
        assert V.const_zero(types.INT).value == 0
        assert V.const_zero(types.BOOL) is V.FALSE
        assert V.const_zero(types.DOUBLE).value == 0.0
        ptr = types.pointer_to(types.INT)
        assert isinstance(V.const_zero(ptr), V.ConstantNull)
        agg = types.array_of(types.INT, 3)
        assert isinstance(V.const_zero(agg), V.ConstantZero)

    def test_string_constant(self):
        c = V.make_string_constant(b"hi")
        assert c.type is types.array_of(types.SBYTE, 3)  # NUL-terminated
        assert [e.value for e in c.elements] == [104, 105, 0]

    def test_aggregate_type_checking(self):
        with pytest.raises(LlvaTypeError):
            V.ConstantArray(types.INT, [V.const_int(types.LONG, 1)])
        s = types.struct_of([types.INT, types.DOUBLE])
        with pytest.raises(LlvaTypeError):
            V.ConstantStruct(s, [V.const_int(types.INT, 1)])
        with pytest.raises(LlvaTypeError):
            V.ConstantStruct(s, [V.const_int(types.INT, 1),
                                 V.const_int(types.INT, 2)])


class TestUseChains:
    def _fresh(self):
        # Use arguments as leaf values so constant intern pools stay clean.
        a = V.Argument(types.INT, "a", 0)
        b = V.Argument(types.INT, "b", 1)
        return a, b

    def test_operands_register_uses(self):
        a, b = self._fresh()
        inst = AddInst(a, b)
        assert list(a.users()) == [inst]
        assert list(b.users()) == [inst]
        assert inst.operands == (a, b)

    def test_same_value_twice_counts_twice(self):
        a, _ = self._fresh()
        inst = AddInst(a, a)
        assert len(a.uses) == 2

    def test_set_operand_updates_chains(self):
        a, b = self._fresh()
        c = V.Argument(types.INT, "c", 2)
        inst = AddInst(a, b)
        inst.set_operand(1, c)
        assert not b.has_uses()
        assert list(c.users()) == [inst]
        assert inst.operand(1) is c

    def test_replace_all_uses_with(self):
        a, b = self._fresh()
        c = V.Argument(types.INT, "c", 2)
        i1 = AddInst(a, b)
        i2 = MulInst(a, a)
        count = a.replace_all_uses_with(c)
        assert count == 3
        assert not a.has_uses()
        assert i1.operand(0) is c
        assert i2.operands == (c, c)

    def test_replace_with_self_rejected(self):
        a, _ = self._fresh()
        with pytest.raises(ValueError):
            a.replace_all_uses_with(a)

    def test_drop_all_references(self):
        a, b = self._fresh()
        inst = AddInst(a, b)
        inst.drop_all_references()
        assert not a.has_uses()
        assert not b.has_uses()
        assert inst.num_operands == 0
