"""Property test: the Cooper-Harvey-Kennedy dominator computation
against the definitional brute force (A dominates B iff removing A
makes B unreachable from entry), on randomly generated CFGs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import IRBuilder, Module, types
from repro.ir.cfg import DominatorTree, reachable_blocks
from repro.ir.values import const_int


@st.composite
def random_cfg(draw):
    """A list of edge targets: block i branches to one or two blocks."""
    block_count = draw(st.integers(min_value=1, max_value=10))
    edges = []
    for index in range(block_count):
        out_degree = draw(st.integers(min_value=0, max_value=2))
        targets = [
            draw(st.integers(min_value=0, max_value=block_count - 1))
            for _ in range(out_degree)
        ]
        edges.append(targets)
    return block_count, edges


def _build(block_count, edges):
    module = Module("cfg")
    f = module.create_function(
        "f", types.function_of(types.INT, [types.BOOL]), ["c"])
    blocks = [f.add_block("b{0}".format(i)) for i in range(block_count)]
    builder = IRBuilder(None)
    for index, targets in enumerate(edges):
        builder.set_block(blocks[index])
        if not targets:
            builder.ret(const_int(types.INT, index))
        elif len(targets) == 1:
            builder.br(blocks[targets[0]])
        else:
            builder.cond_br(f.args[0], blocks[targets[0]],
                            blocks[targets[1]])
    return f, blocks


def _reachable_without(function, blocked):
    """Blocks reachable from entry without passing through *blocked*."""
    entry = function.entry_block
    if entry is blocked:
        return set()
    seen = {id(entry)}
    stack = [entry]
    while stack:
        block = stack.pop()
        for successor in block.successors():
            if successor is blocked or id(successor) in seen:
                continue
            seen.add(id(successor))
            stack.append(successor)
    return seen


@given(random_cfg())
@settings(max_examples=120, deadline=None)
def test_dominators_match_brute_force(cfg):
    block_count, edges = cfg
    function, blocks = _build(block_count, edges)
    domtree = DominatorTree(function)
    reachable = {id(b) for b in reachable_blocks(function)}
    for a in blocks:
        for b in blocks:
            if id(a) not in reachable or id(b) not in reachable:
                assert not domtree.dominates(a, b) \
                    or (id(a) in reachable and id(b) in reachable)
                continue
            brute = a is b or id(b) not in _reachable_without(function, a)
            assert domtree.dominates(a, b) == brute, (
                a.name, b.name, brute)


@given(random_cfg())
@settings(max_examples=60, deadline=None)
def test_idom_is_unique_closest_strict_dominator(cfg):
    block_count, edges = cfg
    function, blocks = _build(block_count, edges)
    domtree = DominatorTree(function)
    reachable = {id(b) for b in reachable_blocks(function)}
    for block in blocks:
        if id(block) not in reachable:
            continue
        idom = domtree.immediate_dominator(block)
        if block is function.entry_block:
            assert idom is None
            continue
        assert idom is not None
        assert domtree.strictly_dominates(idom, block)
        # No other strict dominator sits between idom and block.
        for other in blocks:
            if id(other) in reachable \
                    and domtree.strictly_dominates(other, block):
                assert domtree.dominates(other, idom)
