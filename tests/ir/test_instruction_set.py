"""The instruction set is exactly the paper's Table 1, with its type
rules and the Section 3.3 ExceptionsEnabled defaults."""

import pytest

from repro.ir import instructions as I
from repro.ir import types
from repro.ir.module import BasicBlock, Function
from repro.ir.types import LlvaTypeError
from repro.ir.values import Argument, const_bool, const_int, const_null


def _arg(type_, name="x", index=0):
    return Argument(type_, name, index)


class TestTable1Inventory:
    def test_exactly_28_instructions(self):
        base = [op for group, ops in I.OPCODE_GROUPS.items()
                if group != "vector" for op in ops]
        assert len(base) == 28

    def test_vector_extension_appends_after_table_1(self):
        # The vector group must stay last so base-ISA bitcode opcode
        # indices never move.
        assert list(I.OPCODE_GROUPS)[-1] == "vector"
        assert I.ALL_OPCODES[28:] == I.OPCODE_GROUPS["vector"]
        assert I.OPCODE_GROUPS["vector"] == (
            "vadd", "vsub", "vmul", "vsplat",
            "vreduce.add", "vreduce.min", "vreduce.max",
            "vload", "vstore")

    def test_groups_match_table_1(self):
        assert I.OPCODE_GROUPS["arithmetic"] == (
            "add", "sub", "mul", "div", "rem")
        assert I.OPCODE_GROUPS["bitwise"] == (
            "and", "or", "xor", "shl", "shr")
        assert I.OPCODE_GROUPS["comparison"] == (
            "seteq", "setne", "setlt", "setgt", "setle", "setge")
        assert I.OPCODE_GROUPS["control-flow"] == (
            "ret", "br", "mbr", "invoke", "unwind")
        assert I.OPCODE_GROUPS["memory"] == (
            "load", "store", "getelementptr", "alloca")
        assert I.OPCODE_GROUPS["other"] == ("cast", "call", "phi")

    def test_every_opcode_has_a_class(self):
        assert set(I.INSTRUCTION_CLASSES) == set(I.ALL_OPCODES)


class TestExceptionsEnabledDefaults:
    """Section 3.3: true by default for load, store and div only."""

    def test_load_store_div_default_true(self):
        ptr = _arg(types.pointer_to(types.INT))
        assert I.LoadInst(ptr).exceptions_enabled
        assert I.StoreInst(_arg(types.INT), ptr).exceptions_enabled
        assert I.DivInst(_arg(types.INT), _arg(types.INT)
                         ).exceptions_enabled

    def test_other_opcodes_default_false(self):
        a, b = _arg(types.INT), _arg(types.INT, "y", 1)
        assert not I.AddInst(a, b).exceptions_enabled
        assert not I.MulInst(a, b).exceptions_enabled
        assert not I.RemInst(a, b).exceptions_enabled
        assert not I.SetEqInst(a, b).exceptions_enabled

    def test_attribute_is_static_and_mutable(self):
        a, b = _arg(types.INT), _arg(types.INT, "y", 1)
        inst = I.AddInst(a, b)
        inst.exceptions_enabled = True
        assert inst.may_raise()  # integer add can overflow


class TestArithmeticRules:
    def test_no_mixed_types(self):
        with pytest.raises(LlvaTypeError):
            I.AddInst(_arg(types.INT), _arg(types.LONG, "y", 1))

    def test_no_pointer_arithmetic(self):
        ptr = types.pointer_to(types.INT)
        with pytest.raises(LlvaTypeError):
            I.AddInst(_arg(ptr), _arg(ptr, "y", 1))

    def test_no_bool_arithmetic(self):
        with pytest.raises(LlvaTypeError):
            I.AddInst(const_bool(True), const_bool(False))

    def test_float_arithmetic_allowed(self):
        inst = I.MulInst(_arg(types.DOUBLE), _arg(types.DOUBLE, "y", 1))
        assert inst.type is types.DOUBLE

    def test_div_declares_divide_by_zero(self):
        inst = I.DivInst(_arg(types.INT), _arg(types.INT, "y", 1))
        assert "divide-by-zero" in inst.possible_exceptions()
        fp = I.DivInst(_arg(types.DOUBLE), _arg(types.DOUBLE, "y", 1))
        assert fp.possible_exceptions() == ()  # IEEE, no trap


class TestBitwiseRules:
    def test_logical_on_bool(self):
        inst = I.AndInst(const_bool(True), const_bool(False))
        assert inst.type is types.BOOL

    def test_logical_rejects_float(self):
        with pytest.raises(LlvaTypeError):
            I.XorInst(_arg(types.DOUBLE), _arg(types.DOUBLE, "y", 1))

    def test_shift_amount_must_be_ubyte(self):
        with pytest.raises(LlvaTypeError):
            I.ShlInst(_arg(types.INT), const_int(types.INT, 2))
        inst = I.ShlInst(_arg(types.INT), const_int(types.UBYTE, 2))
        assert inst.type is types.INT

    def test_shift_first_operand_integer(self):
        with pytest.raises(LlvaTypeError):
            I.ShrInst(_arg(types.DOUBLE), const_int(types.UBYTE, 1))


class TestComparisonRules:
    def test_result_is_bool(self):
        inst = I.SetLtInst(_arg(types.INT), _arg(types.INT, "y", 1))
        assert inst.type is types.BOOL

    def test_pointer_comparison_allowed(self):
        ptr = types.pointer_to(types.INT)
        inst = I.SetEqInst(_arg(ptr), const_null(ptr))
        assert inst.type is types.BOOL

    def test_mixed_comparison_rejected(self):
        with pytest.raises(LlvaTypeError):
            I.SetEqInst(_arg(types.INT), _arg(types.UINT, "y", 1))


class TestControlFlow:
    def test_branch_forms(self):
        block_a, block_b = BasicBlock("a"), BasicBlock("b")
        uncond = I.BranchInst(target=block_a)
        assert not uncond.is_conditional
        assert uncond.successors() == (block_a,)
        cond = I.BranchInst(condition=const_bool(True),
                            if_true=block_a, if_false=block_b)
        assert cond.is_conditional
        assert cond.successors() == (block_a, block_b)

    def test_branch_condition_must_be_bool(self):
        block = BasicBlock("a")
        with pytest.raises(LlvaTypeError):
            I.BranchInst(condition=const_int(types.INT, 1),
                         if_true=block, if_false=block)

    def test_branch_target_must_be_label(self):
        with pytest.raises(LlvaTypeError):
            I.BranchInst(target=const_int(types.INT, 0))

    def test_mbr_cases(self):
        default, case_block = BasicBlock("d"), BasicBlock("c")
        inst = I.MultiwayBranchInst(
            _arg(types.INT), default,
            [(const_int(types.INT, 3), case_block)])
        assert inst.num_cases == 1
        assert inst.successors() == (default, case_block)

    def test_mbr_case_type_must_match_selector(self):
        default = BasicBlock("d")
        with pytest.raises(LlvaTypeError):
            I.MultiwayBranchInst(
                _arg(types.INT), default,
                [(const_int(types.LONG, 3), BasicBlock("c"))])

    def test_terminator_flags(self):
        assert I.TERMINATOR_OPCODES == {
            "ret", "br", "mbr", "invoke", "unwind"}
        assert I.UnwindInst().is_terminator
        assert I.RetInst().is_terminator


class TestCalls:
    def _callee(self):
        fn_type = types.function_of(types.INT, [types.INT])
        return Function(fn_type, "f")

    def test_call_types_checked(self):
        f = self._callee()
        call = I.CallInst(f, [const_int(types.INT, 1)])
        assert call.type is types.INT
        with pytest.raises(LlvaTypeError):
            I.CallInst(f, [const_int(types.LONG, 1)])
        with pytest.raises(LlvaTypeError):
            I.CallInst(f, [])

    def test_indirect_call_through_pointer(self):
        fn_type = types.function_of(types.INT, [types.INT])
        fp = _arg(types.pointer_to(fn_type))
        call = I.CallInst(fp, [const_int(types.INT, 1)])
        assert call.signature is fn_type

    def test_call_target_must_be_function(self):
        with pytest.raises(LlvaTypeError):
            I.CallInst(_arg(types.INT), [])

    def test_invoke_layout(self):
        f = self._callee()
        normal, unwind = BasicBlock("n"), BasicBlock("u")
        inv = I.InvokeInst(f, [const_int(types.INT, 1)], normal, unwind)
        assert inv.normal_dest is normal
        assert inv.unwind_dest is unwind
        assert inv.args == (const_int(types.INT, 1),)
        assert inv.successors() == (normal, unwind)


class TestMemory:
    def test_load_requires_scalar_pointee(self):
        agg_ptr = _arg(types.pointer_to(types.array_of(types.INT, 2)))
        with pytest.raises(LlvaTypeError):
            I.LoadInst(agg_ptr)

    def test_store_type_must_match(self):
        ptr = _arg(types.pointer_to(types.INT))
        with pytest.raises(LlvaTypeError):
            I.StoreInst(const_int(types.LONG, 1), ptr)

    def test_gep_struct_index_must_be_constant_ubyte(self):
        struct = types.struct_of([types.INT, types.DOUBLE])
        ptr = _arg(types.pointer_to(struct))
        good = I.GetElementPtrInst(
            ptr, [const_int(types.LONG, 0), const_int(types.UBYTE, 1)])
        assert good.type is types.pointer_to(types.DOUBLE)
        with pytest.raises(LlvaTypeError):
            I.GetElementPtrInst(
                ptr, [const_int(types.LONG, 0), _arg(types.UBYTE, "i", 1)])
        with pytest.raises(LlvaTypeError):
            I.GetElementPtrInst(
                ptr, [const_int(types.LONG, 0), const_int(types.UBYTE, 9)])

    def test_gep_cannot_index_scalar(self):
        ptr = _arg(types.pointer_to(types.INT))
        with pytest.raises(LlvaTypeError):
            I.GetElementPtrInst(
                ptr, [const_int(types.LONG, 0), const_int(types.LONG, 0)])

    def test_gep_result_type(self):
        array = types.array_of(types.pointer_to(types.INT), 4)
        ptr = _arg(types.pointer_to(array))
        gep = I.GetElementPtrInst(
            ptr, [const_int(types.LONG, 0), const_int(types.LONG, 2)])
        assert gep.type is types.pointer_to(types.pointer_to(types.INT))

    def test_alloca(self):
        inst = I.AllocaInst(types.DOUBLE)
        assert inst.type is types.pointer_to(types.DOUBLE)
        assert inst.is_static
        dyn = I.AllocaInst(types.INT, _arg(types.UINT))
        assert not dyn.is_static
        with pytest.raises(LlvaTypeError):
            I.AllocaInst(types.INT, _arg(types.INT))


class TestCastAndPhi:
    def test_cast_matrix_limits(self):
        with pytest.raises(LlvaTypeError):
            I.CastInst(_arg(types.DOUBLE),
                       types.pointer_to(types.INT))
        with pytest.raises(LlvaTypeError):
            I.CastInst(_arg(types.pointer_to(types.INT)), types.DOUBLE)
        ok = I.CastInst(_arg(types.INT), types.DOUBLE)
        assert ok.type is types.DOUBLE

    def test_noop_cast_detection(self):
        p1 = types.pointer_to(types.INT)
        p2 = types.pointer_to(types.DOUBLE)
        assert I.CastInst(_arg(p1), p2).is_noop
        assert not I.CastInst(_arg(types.INT), types.LONG).is_noop

    def test_phi_incoming_types_checked(self):
        block = BasicBlock("b")
        with pytest.raises(LlvaTypeError):
            I.PhiInst(types.INT, [(const_int(types.LONG, 1), block)])

    def test_phi_edge_management(self):
        b1, b2 = BasicBlock("b1"), BasicBlock("b2")
        phi = I.PhiInst(types.INT, [(const_int(types.INT, 1), b1)])
        phi.add_incoming(const_int(types.INT, 2), b2)
        assert phi.num_incoming == 2
        assert phi.incoming_for_block(b2).value == 2
        phi.remove_incoming(b1)
        assert phi.num_incoming == 1
        assert phi.incoming_for_block(b1) is None
