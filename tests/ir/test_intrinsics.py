"""Intrinsic registry tests (Sections 3.4, 3.5, 4.1)."""

import pytest

from repro.ir import Module, types
from repro.ir.intrinsics import (
    INTRINSICS,
    declare_intrinsic,
    intrinsic_info,
    is_intrinsic_name,
)


class TestRegistry:
    def test_namespace(self):
        for name in INTRINSICS:
            assert name.startswith("llva.")
            assert is_intrinsic_name(name)
        assert not is_intrinsic_name("malloc")

    def test_paper_mandated_intrinsics_exist(self):
        # Section 3.5: traps, register state, stack walking, page tables.
        for name in ("llva.trap.register", "llva.trap.raise",
                     "llva.register.read", "llva.stack.caller",
                     "llva.pagetable.map", "llva.pagetable.unmap"):
            assert name in INTRINSICS, name
        # Section 3.4: self-modifying / self-extending code.
        assert "llva.smc.replace" in INTRINSICS
        assert "llva.sec.register" in INTRINSICS
        # Section 4.1: the storage-API bootstrap.
        assert "llva.storage.register" in INTRINSICS
        # Section 3.3: dynamic exception masking.
        assert "llva.exceptions.set" in INTRINSICS

    def test_privilege_classification(self):
        """Kernel-only operations must carry the privileged flag."""
        privileged = {name for name, info in INTRINSICS.items()
                      if info.privileged}
        assert "llva.pagetable.map" in privileged
        assert "llva.trap.register" in privileged
        assert "llva.storage.register" in privileged
        assert "llva.trap.raise" not in privileged
        assert "llva.smc.replace" not in privileged

    def test_trap_handler_signature(self):
        """'A trap handler is an ordinary LLVA function with two
        arguments: the trap number and a pointer of type void*.'"""
        info = intrinsic_info("llva.trap.register")
        assert info.function_type.params[0] is types.UINT
        handler_param = info.function_type.params[1]
        assert handler_param.is_pointer

    def test_declare_is_idempotent(self):
        module = Module("m")
        first = declare_intrinsic(module, "llva.stack.depth")
        second = declare_intrinsic(module, "llva.stack.depth")
        assert first is second
        assert first.is_intrinsic
        assert first.is_declaration

    def test_unknown_intrinsic_rejected(self):
        with pytest.raises(KeyError):
            intrinsic_info("llva.not.a.thing")

    def test_every_intrinsic_documented(self):
        for info in INTRINSICS.values():
            assert info.description.strip()
