"""Unit and property tests for the LLVA type system (paper Section 3.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import types
from repro.ir.types import (
    Endianness,
    LlvaTypeError,
    TargetData,
    array_of,
    function_of,
    named_struct,
    pointer_to,
    struct_of,
)


class TestPrimitives:
    def test_paper_primitive_set(self):
        # The paper lists primitives "with predefined sizes (ubyte, uint,
        # float, double, etc...)".
        expected = {
            "void", "label", "bool", "ubyte", "sbyte", "ushort", "short",
            "uint", "int", "ulong", "long", "float", "double",
        }
        assert set(types.PRIMITIVES) == expected

    @pytest.mark.parametrize("name,size", [
        ("bool", 1), ("ubyte", 1), ("sbyte", 1), ("ushort", 2),
        ("short", 2), ("uint", 4), ("int", 4), ("ulong", 8),
        ("long", 8), ("float", 4), ("double", 8),
    ])
    def test_sizes(self, name, size):
        assert types.PRIMITIVES[name].size == size

    def test_signedness(self):
        assert types.INT.is_signed
        assert types.UINT.is_unsigned
        assert not types.DOUBLE.is_integer

    def test_scalar_classification(self):
        assert types.INT.is_scalar
        assert types.BOOL.is_scalar
        assert pointer_to(types.INT).is_scalar
        assert not types.VOID.is_scalar
        assert not array_of(types.INT, 3).is_scalar
        assert not struct_of([types.INT]).is_scalar

    def test_integer_ranges(self):
        assert types.SBYTE.min_value == -128
        assert types.SBYTE.max_value == 127
        assert types.UBYTE.min_value == 0
        assert types.UBYTE.max_value == 255
        assert types.LONG.max_value == 2**63 - 1

    def test_wrap_behaviour(self):
        assert types.UBYTE.wrap(256) == 0
        assert types.UBYTE.wrap(-1) == 255
        assert types.SBYTE.wrap(128) == -128
        assert types.INT.wrap(2**31) == -(2**31)


class TestInterning:
    def test_pointer_interning(self):
        assert pointer_to(types.INT) is pointer_to(types.INT)

    def test_array_interning(self):
        assert array_of(types.INT, 4) is array_of(types.INT, 4)
        assert array_of(types.INT, 4) is not array_of(types.INT, 5)

    def test_anonymous_struct_interning(self):
        a = struct_of([types.INT, types.DOUBLE])
        b = struct_of([types.INT, types.DOUBLE])
        assert a is b

    def test_function_interning(self):
        a = function_of(types.INT, [types.INT], vararg=False)
        b = function_of(types.INT, [types.INT], vararg=False)
        c = function_of(types.INT, [types.INT], vararg=True)
        assert a is b
        assert a is not c

    def test_named_structs_are_nominal(self):
        a = named_struct("A", [types.INT])
        b = named_struct("A", [types.INT])
        assert a is not b


class TestTypeRules:
    def test_no_pointer_to_void(self):
        with pytest.raises(LlvaTypeError):
            pointer_to(types.VOID)

    def test_no_void_struct_field(self):
        with pytest.raises(LlvaTypeError):
            struct_of([types.VOID])

    def test_no_aggregate_params(self):
        with pytest.raises(LlvaTypeError):
            function_of(types.VOID, [array_of(types.INT, 2)])

    def test_no_negative_array(self):
        with pytest.raises(LlvaTypeError):
            array_of(types.INT, -1)

    def test_opaque_struct_has_no_fields(self):
        opaque = named_struct("opaque.test")
        assert opaque.is_opaque
        with pytest.raises(LlvaTypeError):
            _ = opaque.fields

    def test_set_body_twice_conflicts(self):
        s = named_struct("twice.test", [types.INT])
        with pytest.raises(LlvaTypeError):
            s.set_body([types.DOUBLE])

    def test_anonymous_struct_immutable(self):
        s = struct_of([types.INT])
        with pytest.raises(LlvaTypeError):
            s.set_body([types.DOUBLE])


class TestTargetData:
    def test_pointer_sizes(self):
        assert TargetData(4).size_of(pointer_to(types.INT)) == 4
        assert TargetData(8).size_of(pointer_to(types.INT)) == 8

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            TargetData(pointer_size=3)
        with pytest.raises(ValueError):
            TargetData(endianness="middle")

    def test_struct_padding(self):
        # { sbyte, int } pads the sbyte to 4-byte alignment.
        s = struct_of([types.SBYTE, types.INT])
        td = TargetData(8)
        assert td.struct_offsets(s) == [0, 4]
        assert td.size_of(s) == 8

    def test_struct_tail_padding(self):
        s = struct_of([types.INT, types.SBYTE])
        td = TargetData(8)
        assert td.size_of(s) == 8  # rounded up to align 4

    def test_paper_quadtree_offsets(self):
        """The paper's example: &T[0].Children[3] is at byte offset 20
        with 32-bit pointers and 32 with 64-bit pointers."""
        qt = named_struct("qt.offsets")
        qt.set_body([types.DOUBLE, array_of(pointer_to(qt), 4)])
        assert TargetData(4).gep_offset(qt, [0, 1, 3]) == 20
        assert TargetData(8).gep_offset(qt, [0, 1, 3]) == 32

    def test_gep_offset_leading_index_scales_whole_object(self):
        td = TargetData(8)
        s = struct_of([types.INT, types.INT])
        assert td.gep_offset(s, [2]) == 16
        assert td.gep_offset(s, [2, 1]) == 20

    def test_gep_symbolic_index_rejected(self):
        td = TargetData(8)
        with pytest.raises(ValueError):
            td.gep_offset(types.INT, ["sym"])

    def test_void_has_no_size(self):
        with pytest.raises(LlvaTypeError):
            TargetData(8).size_of(types.VOID)
        with pytest.raises(LlvaTypeError):
            TargetData(8).align_of(types.LABEL)

    def test_array_size(self):
        td = TargetData(8)
        assert td.size_of(array_of(types.SHORT, 7)) == 14
        assert td.align_of(array_of(types.SHORT, 7)) == 2

    def test_pointer_int_type(self):
        assert TargetData(8).pointer_int_type is types.ULONG
        assert TargetData(4).pointer_int_type is types.UINT


@given(st.integers())
def test_wrap_is_idempotent(value):
    for type_ in types.INTEGER_TYPES:
        wrapped = type_.wrap(value)
        assert type_.wrap(wrapped) == wrapped
        assert type_.min_value <= wrapped <= type_.max_value


@given(st.integers(min_value=-2**63, max_value=2**63 - 1),
       st.integers(min_value=-2**63, max_value=2**63 - 1))
def test_wrap_is_additive_homomorphism(a, b):
    """Two's-complement wraparound commutes with addition."""
    for type_ in types.INTEGER_TYPES:
        assert type_.wrap(a + b) == type_.wrap(type_.wrap(a) + type_.wrap(b))


@given(st.lists(st.sampled_from([
    types.BOOL, types.SBYTE, types.SHORT, types.INT, types.LONG,
    types.FLOAT, types.DOUBLE]), min_size=1, max_size=8))
def test_struct_offsets_are_aligned_and_monotone(fields):
    s = struct_of(fields)
    for td in (TargetData(4), TargetData(8)):
        offsets = td.struct_offsets(s)
        last_end = 0
        for offset, fieldtype in zip(offsets, fields):
            assert offset % td.align_of(fieldtype) == 0
            assert offset >= last_end
            last_end = offset + td.size_of(fieldtype)
        assert td.size_of(s) >= last_end
        assert td.size_of(s) % td.align_of(s) == 0
