"""Printer formatting and builder behaviour."""

import pytest

from helpers import build_factorial, build_quadtree_module
from repro.ir import (
    IRBuilder,
    Module,
    print_function,
    print_module,
    types,
    verify_module,
)
from repro.ir.printer import format_instruction
from repro.ir.values import const_bool, const_fp, const_int, const_null


class TestPrinter:
    def test_figure2_shape(self):
        module, function = build_quadtree_module()
        text = print_function(function)
        # Landmarks from the paper's Figure 2(b).
        assert "%V = alloca double" in text
        assert "seteq %struct.QuadTree* %T, null" in text
        assert ("getelementptr %struct.QuadTree* %T, long 0, ubyte 1, "
                "long 3") in text
        assert "phi double [ %Ret.0, %else ], [ 0.0, %entry ]" in text
        assert "ret void" in text

    def test_module_header(self):
        module = Module("m", pointer_size=4, endianness="big")
        text = print_module(module)
        assert "target pointersize = 32" in text
        assert "target endian = big" in text

    def test_ee_attribute_printed_only_when_nondefault(self):
        module = Module("ee")
        f = module.create_function("f", types.function_of(
            types.INT, [types.INT, types.INT]), ["a", "b"])
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        q = b.div(f.args[0], f.args[1])
        s = b.add(f.args[0], f.args[1])
        b.ret(q)
        text = print_function(f)
        assert "!ee" not in text        # both at their defaults
        q.exceptions_enabled = False
        s.exceptions_enabled = True
        text = print_function(f)
        assert "div int %a, %b !ee(false)" in text
        assert "add int %a, %b !ee(true)" in text

    def test_unnamed_values_get_unique_names(self):
        module = Module("nameless")
        f = module.create_function("f", types.function_of(types.INT, []))
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        x = b.add(const_int(types.INT, 1), const_int(types.INT, 2))
        y = b.add(x, x)
        x.name = None
        y.name = None
        b.ret(y)
        text = print_function(f)
        assert text.count("%v =") == 1
        assert "%v.1" in text

    def test_format_single_instruction(self):
        module = Module("one")
        f = module.create_function("f", types.function_of(
            types.VOID, [types.pointer_to(types.INT)]), ["p"])
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        st = b.store(const_int(types.INT, 42), f.args[0])
        b.ret()
        assert format_instruction(st) == "store int 42, int* %p"


class TestBuilder:
    def test_gep_const_picks_canonical_index_types(self):
        module = Module("g")
        struct = types.named_struct("S", [types.INT,
                                          types.array_of(types.INT, 4)])
        f = module.create_function("f", types.function_of(
            types.INT, [types.pointer_to(struct)]), ["s"])
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        gep = b.gep_const(f.args[0], 0, 1, 2)
        value = b.load(gep)
        b.ret(value)
        assert [op.type for op in gep.indices] == [
            types.LONG, types.UBYTE, types.LONG]

    def test_cast_to_same_type_is_identity(self):
        module = Module("c")
        f = module.create_function(
            "f", types.function_of(types.INT, [types.INT]), ["x"])
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        assert b.cast(f.args[0], types.INT) is f.args[0]
        b.ret(f.args[0])

    def test_phi_inserted_before_non_phis(self):
        module = Module("p")
        f = module.create_function("f", types.function_of(types.INT, []))
        entry = f.add_block("entry")
        loop = f.add_block("loop")
        b = IRBuilder(entry)
        b.br(loop)
        b.set_block(loop)
        v = b.add(const_int(types.INT, 1), const_int(types.INT, 1))
        phi = b.phi(types.INT)
        assert loop.instructions[0] is phi
        phi.add_incoming(const_int(types.INT, 0), entry)
        phi.add_incoming(v, loop)
        b.br(loop)
        # This function is a pathological infinite loop but must verify.
        # (entry has no predecessors; loop has entry and itself.)
        verify_module(module)

    def test_terminator_blocks_further_append(self):
        module = Module("t")
        f = module.create_function("f", types.function_of(types.INT, []))
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        b.ret(const_int(types.INT, 0))
        with pytest.raises(ValueError):
            b.ret(const_int(types.INT, 1))


class TestModuleStructure:
    def test_duplicate_symbols_rejected(self):
        module = Module("dup")
        module.create_function("f", types.function_of(types.INT, []))
        with pytest.raises(ValueError):
            module.create_function("f", types.function_of(types.INT, []))
        with pytest.raises(ValueError):
            module.create_global("f", types.INT)

    def test_num_instructions(self):
        module = build_factorial()
        assert module.num_instructions() == sum(
            len(block) for f in module.functions.values()
            for block in f.blocks)

    def test_smc_replace_body(self):
        module = Module("smc")
        fn_type = types.function_of(types.INT, [types.INT])
        original = module.create_function("f", fn_type, ["x"])
        entry = original.add_block("entry")
        b = IRBuilder(entry)
        b.ret(b.mul(original.args[0], const_int(types.INT, 2)))
        donor = module.create_function("f2", fn_type, ["x"])
        entry2 = donor.add_block("entry")
        b.set_block(entry2)
        b.ret(b.add(donor.args[0], const_int(types.INT, 100)))
        version = original.smc_version
        original.replace_body_from(donor)
        assert original.smc_version == version + 1
        assert donor.is_declaration
        verify_module(module)

    def test_smc_signature_mismatch_rejected(self):
        module = Module("smc2")
        a = module.create_function("a", types.function_of(types.INT, []))
        a.add_block("entry")
        IRBuilder(a.blocks[0]).ret(const_int(types.INT, 0))
        b_fn = module.create_function(
            "b", types.function_of(types.LONG, []))
        with pytest.raises(types.LlvaTypeError):
            a.replace_body_from(b_fn)
