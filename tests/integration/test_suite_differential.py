"""Whole-suite differential testing at reduced scale.

Every Table 2 workload must produce *identical* results and output when
run (a) by the interpreter, (b) after -O2, (c) translated to x86, and
(d) translated to SPARC — plus survive a bitcode round trip.  This is
the deepest integration net in the repository: it crosses the MiniC
front-end, the optimizer, the object-code encoder, both translators,
both register allocators, and both execution engines.
"""

import pytest

from repro.benchsuite import SUITE_ORDER, load_workload
from repro.bitcode import read_module, write_module
from repro.execution import Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.minic import compile_source
from repro.targets import make_target, translate_module

SCALE = 0.08

#: A fast cross-section for the per-commit tests; the benchmarks cover
#: the full suite.
FAST_SET = ["anagram", "ks", "ft", "yacr2", "mcf", "gzip", "vortex",
            "gap", "equake"]


@pytest.fixture(scope="module")
def compiled():
    store = {}
    for name in FAST_SET:
        workload = load_workload(name, SCALE)
        module = compile_source(workload.source, name,
                                optimization_level=0)
        reference = Interpreter(module).run("main")
        store[name] = (workload, reference)
    return store


@pytest.mark.parametrize("name", FAST_SET)
def test_optimizer_preserves_output(compiled, name):
    workload, reference = compiled[name]
    module = compile_source(workload.source, name, optimization_level=2)
    result = Interpreter(module).run("main")
    assert result.return_value == reference.return_value
    assert result.output == reference.output
    assert result.steps <= reference.steps


@pytest.mark.parametrize("name", FAST_SET)
def test_bitcode_round_trip_preserves_output(compiled, name):
    workload, reference = compiled[name]
    module = compile_source(workload.source, name, optimization_level=2)
    module2 = read_module(write_module(module))
    result = Interpreter(module2).run("main")
    assert result.return_value == reference.return_value
    assert result.output == reference.output


@pytest.mark.parametrize("name", FAST_SET)
@pytest.mark.parametrize("target_name", ["x86", "sparc"])
def test_native_matches_interpreter(compiled, name, target_name):
    workload, reference = compiled[name]
    module = compile_source(workload.source, name, optimization_level=2)
    native = translate_module(module, make_target(target_name))
    simulator = MachineSimulator(native, module)
    value, _status = simulator.run("main")
    assert value == reference.return_value, (name, target_name)
    assert simulator.output_text() == reference.output


def test_all_seventeen_workloads_compile_and_verify():
    """Every Table 2 row must at least build cleanly at tiny scale."""
    from repro.ir import verify_module

    for name in SUITE_ORDER:
        workload = load_workload(name, 0.05)
        module = compile_source(workload.source, name,
                                optimization_level=2)
        verify_module(module)
        assert module.num_instructions() > 50, name
