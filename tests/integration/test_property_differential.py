"""Property-based cross-engine testing.

Hypothesis generates random straight-line LLVA computations; every
engine (interpreter, constant folder via -O2, x86 simulator, SPARC
simulator) and both serializations (assembly, bitcode) must agree on
the result bit-for-bit.  This hammers exactly the invariant the whole
reproduction rests on: one V-ISA semantics, many implementations.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.asm import parse_module
from repro.bitcode import read_module, write_module
from repro.execution import Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.ir import IRBuilder, Module, print_module, types, verify_module
from repro.ir.values import const_int
from repro.targets import make_target, translate_module
from repro.transforms import optimize

_INT_OPS = ("add", "sub", "mul", "and", "or", "xor")


@st.composite
def straight_line_program(draw):
    """A random chain of integer ops over two arguments, with an
    optional trapping-op guard pattern."""
    op_count = draw(st.integers(min_value=1, max_value=12))
    steps = []
    for _ in range(op_count):
        op = draw(st.sampled_from(_INT_OPS + ("div", "rem", "shl",
                                              "shr", "cmp")))
        operand = draw(st.integers(min_value=-100, max_value=100))
        steps.append((op, operand))
    return steps


def _build(steps) -> Module:
    module = Module("prop")
    int_t = types.INT
    f = module.create_function(
        "main", types.function_of(int_t, [int_t, int_t]), ["a", "b"])
    entry = f.add_block("entry")
    builder = IRBuilder(entry)
    value = f.args[0]
    other = f.args[1]
    for op, raw in steps:
        if op in _INT_OPS:
            value = builder.binary(op, value,
                                   const_int(int_t, raw))
        elif op in ("div", "rem"):
            # Use a nonzero constant divisor so no engine traps.
            divisor = raw if raw != 0 else 7
            value = builder.binary(op, value,
                                   const_int(int_t, divisor))
        elif op in ("shl", "shr"):
            amount = const_int(types.UBYTE, abs(raw) % 31)
            value = builder.binary(op, value, amount)
        else:  # cmp: fold a comparison back into the integer stream
            flag = builder.setlt(value, other)
            value = builder.cast(flag, int_t)
        # Mix the second argument in occasionally via xor.
        if raw % 3 == 0:
            value = builder.xor(value, other)
    builder.ret(value)
    verify_module(module)
    return module


@given(steps=straight_line_program(),
       a=st.integers(min_value=-10**6, max_value=10**6),
       b=st.integers(min_value=-10**6, max_value=10**6))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_all_engines_agree(steps, a, b):
    module = _build(steps)
    expected = Interpreter(module).run("main", [a, b]).return_value

    # Optimized (exercises the constant folder / GVN / simplifier).
    optimized = parse_module(print_module(module), "prop")
    optimize(optimized, level=2)
    verify_module(optimized)
    assert Interpreter(optimized).run(
        "main", [a, b]).return_value == expected

    # Bitcode round trip.
    decoded = read_module(write_module(module))
    assert Interpreter(decoded).run(
        "main", [a, b]).return_value == expected

    # Both native targets.
    for target_name in ("x86", "sparc"):
        native = translate_module(module, make_target(target_name))
        simulator = MachineSimulator(native, module)
        value, _ = simulator.run("main", [a, b])
        assert value == expected, target_name


@given(values=st.lists(st.integers(min_value=-2**31,
                                   max_value=2**31 - 1),
                       min_size=1, max_size=12))
@settings(max_examples=30, deadline=None)
def test_memory_round_trip_all_engines(values):
    """Store a list into an array, read it back, sum — identical across
    engines and layouts (including big-endian SPARC memory)."""
    module = Module("mem")
    int_t = types.INT
    array_t = types.array_of(int_t, len(values))
    f = module.create_function("main", types.function_of(int_t, []))
    entry = f.add_block("entry")
    builder = IRBuilder(entry)
    array = builder.alloca(array_t)
    total = const_int(int_t, 0)
    for index, raw in enumerate(values):
        slot = builder.gep(array, [const_int(types.LONG, 0),
                                   const_int(types.LONG, index)])
        builder.store(const_int(int_t, int_t.wrap(raw)), slot)
        loaded = builder.load(slot)
        total = builder.add(total, loaded)
    builder.ret(total)
    verify_module(module)

    expected = Interpreter(module).run("main").return_value
    assert expected == int_t.wrap(sum(int_t.wrap(v) for v in values))
    for target_name in ("x86", "sparc"):
        native = translate_module(module, make_target(target_name))
        value, _ = MachineSimulator(native, module).run("main")
        assert value == expected, target_name
