"""Every example in examples/ must run cleanly — the documentation is
tested, not just written."""

import os
import subprocess
import sys

import pytest

_EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                             "examples")

_EXAMPLES = sorted(
    name for name in os.listdir(_EXAMPLES_DIR)
    if name.endswith(".py")
)


@pytest.mark.parametrize("script", _EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"


def test_expected_example_set():
    assert set(_EXAMPLES) == {
        "quickstart.py",
        "figure2_quadtree.py",
        "observability.py",
        "offline_caching.py",
        "os_support.py",
        "profile_guided.py",
        "pool_allocation.py",
        "table2_row.py",
    }


class TestDocsMatchImplementation:
    """The reference manuals must track the code."""

    def _read(self, name):
        path = os.path.join(_EXAMPLES_DIR, "..", "docs", name)
        with open(path) as handle:
            return handle.read()

    def test_langref_lists_every_opcode(self):
        from repro.ir.instructions import ALL_OPCODES

        text = self._read("LANGREF.md")
        for opcode in ALL_OPCODES:
            assert opcode in text, opcode

    def test_vabi_lists_every_intrinsic(self):
        from repro.ir.intrinsics import INTRINSICS

        text = self._read("VABI.md")
        for name in INTRINSICS:
            assert name in text, name

    def test_vabi_lists_every_runtime_routine(self):
        from repro.execution.runtime import RUNTIME_SIGNATURES

        text = self._read("VABI.md")
        for name in RUNTIME_SIGNATURES:
            assert name in text, name

    def test_trap_numbers_documented(self):
        from repro.execution.events import TrapKind

        langref = self._read("LANGREF.md")
        vabi = self._read("VABI.md")
        for number, name in TrapKind.NAMES.items():
            assert name in langref, name
            assert name in vabi, name
