"""CLI observability: --trace / --metrics exports, the stats
subcommand, the unified --stats line, and program-argument parsing."""

import json

import pytest

from repro import observe
from repro.tools import _parse_program_args, main

PROGRAM = """
int square(int x) { return x * x; }
int main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 10; i = i + 1) acc = acc + square(i);
    print_int(acc);
    print_newline();
    return acc % 100;
}
"""


@pytest.fixture()
def prog_bc(tmp_path, capsys):
    source = tmp_path / "prog.c"
    source.write_text(PROGRAM)
    bc = tmp_path / "prog.bc"
    assert main(["cc", str(source), "-o", str(bc)]) == 0
    capsys.readouterr()
    return bc


def _capture(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestProgramArgs:
    def test_mixed_types(self):
        assert _parse_program_args(["3", "2.5", "hello", "-7"]) == \
            [3, 2.5, "hello", -7]

    def test_string_arg_does_not_raise(self, prog_bc, capsys):
        # Regression: this used to die with an uncaught ValueError
        # from float("hello") before reaching the engine.
        code, _out, err = _capture(
            ["run", str(prog_bc), "hello"], capsys)
        # The engine reports a clean argument-count trap instead.
        assert code == 128 + 6
        assert "trap" in err

    def test_string_arg_for_int_parameter_rejected(self, tmp_path,
                                                   capsys):
        source = tmp_path / "takesint.c"
        source.write_text("int main(int n) { return n; }")
        bc = tmp_path / "takesint.bc"
        assert main(["cc", str(source), "-o", str(bc)]) == 0
        capsys.readouterr()
        code, _out, err = _capture(["run", str(bc), "oops"], capsys)
        assert code == 2
        assert "'oops'" in err and "is not a number" in err
        # Same guard on the stats subcommand.
        code, _out, err = _capture(["stats", str(bc), "oops"], capsys)
        assert code == 2
        assert "is not a number" in err

    def test_unwritable_trace_path_is_a_clean_error(self, tmp_path,
                                                    capsys):
        source = tmp_path / "ok.c"
        source.write_text("int main() { return 0; }")
        bc = tmp_path / "ok.bc"
        assert main(["cc", str(source), "-o", str(bc)]) == 0
        capsys.readouterr()
        code, _out, err = _capture(
            ["run", str(bc),
             "--trace", "/nonexistent/dir/trace.json"], capsys)
        assert code == 1
        assert "cannot write observability export" in err
        assert not observe.enabled()


class TestUnifiedStats:
    def test_interpreter_and_jit_share_one_format(self, prog_bc,
                                                  capsys):
        _code, _out, interp_err = _capture(
            ["run", str(prog_bc), "--stats"], capsys)
        _code, _out, jit_err = _capture(
            ["run", str(prog_bc), "--target", "x86", "--stats"],
            capsys)
        assert interp_err.startswith("[interp] result=85 ")
        assert jit_err.startswith("[x86] result=85 ")
        # One shape: space-separated key=value registry metrics.
        for line in (interp_err, jit_err):
            body = line.split("] ", 1)[1]
            for token in body.split():
                assert "=" in token, line
        assert "run.steps=" in interp_err
        assert "run.cycles=" in jit_err
        assert "jit.functions_translated=" in jit_err

    def test_observability_off_after_run(self, prog_bc, capsys):
        _capture(["run", str(prog_bc), "--stats"], capsys)
        assert not observe.enabled()


class TestTraceExport:
    def test_chrome_trace_spans_translate_and_execute(self, prog_bc,
                                                      tmp_path,
                                                      capsys):
        trace = tmp_path / "t.json"
        code, out, _err = _capture(
            ["run", str(prog_bc), "--target", "x86",
             "--trace", str(trace)], capsys)
        assert out.strip() == "285" and code == 85
        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        by_name = {}
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            by_name.setdefault(event["name"], []).append(event)
        assert "jit.translate" in by_name
        assert "native.run" in by_name
        assert "cli.run" in by_name
        # Nesting: execution happens inside the cli.run span, and the
        # on-demand translations happen while the program runs.
        cli = by_name["cli.run"][0]
        native = by_name["native.run"][0]
        assert cli["ts"] <= native["ts"]
        assert native["ts"] + native["dur"] <= cli["ts"] + cli["dur"] \
            + 1.0
        assert any(e["args"].get("parent_span") for e in events)

    def test_jsonl_trace(self, prog_bc, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        _capture(["run", str(prog_bc), "--trace", str(trace)], capsys)
        records = [json.loads(line)
                   for line in trace.read_text().splitlines()]
        assert any(r["name"] == "interp.run" for r in records)
        assert all({"span_id", "start", "end", "attrs"} <= set(r)
                   for r in records)

    def test_cc_trace_covers_frontend(self, tmp_path, capsys):
        source = tmp_path / "p.c"
        source.write_text(PROGRAM)
        trace = tmp_path / "cc.json"
        metrics = tmp_path / "cc-metrics.json"
        code, _o, _e = _capture(
            ["cc", str(source), "-o", str(tmp_path / "p.bc"),
             "-O", "2", "--trace", str(trace),
             "--metrics", str(metrics)], capsys)
        assert code == 0
        names = {event["name"] for event
                 in json.loads(trace.read_text())["traceEvents"]}
        assert {"minic.lex", "minic.parse", "minic.sema",
                "minic.codegen", "pass.run"} <= names
        snapshot = json.loads(metrics.read_text())
        pass_runs = [c for c in snapshot["counters"]
                     if c["name"] == "pass.runs"]
        assert pass_runs and all("pass" in c["labels"]
                                 for c in pass_runs)


class TestStatsCommand:
    def test_interpreter_report(self, prog_bc, capsys):
        code, out, _err = _capture(
            ["stats", str(prog_bc)], capsys)
        assert code == 0
        assert "== execution ==" in out
        assert "result=85" in out
        assert "run.steps" in out
        assert "top opcodes:" in out
        assert "== hottest blocks ==" in out
        assert "== llee cache ==" in out

    def test_jit_report_with_cache(self, prog_bc, tmp_path, capsys):
        cache = str(tmp_path / "llee-cache")
        code, out, _err = _capture(
            ["stats", str(prog_bc), "-O", "2", "--target", "x86",
             "--cache", cache], capsys)
        assert code == 0
        assert "== optimization passes ==" in out
        assert "mem2reg" in out
        assert "== translation (Table 2 style) ==" in out
        assert "expansion=" in out
        assert "expansion histogram" in out
        assert "misses=1" in out
        # Second run hits the offline cache (Figure 3 behaviour).
        code, out, _err = _capture(
            ["stats", str(prog_bc), "-O", "2", "--target", "x86",
             "--cache", cache], capsys)
        assert code == 0
        assert "hits=1" in out

    def test_load_pretty_prints_exported_metrics(self, prog_bc,
                                                 tmp_path, capsys):
        metrics = tmp_path / "m.json"
        _capture(["run", str(prog_bc), "--metrics", str(metrics)],
                 capsys)
        code, out, _err = _capture(
            ["stats", "--load", str(metrics)], capsys)
        assert code == 0
        assert "run.steps{engine=interp}" in out

    def test_stats_requires_input(self, capsys):
        code, _out, err = _capture(["stats"], capsys)
        assert code == 2
        assert "required" in err

    def test_stats_json(self, prog_bc, capsys):
        code, out, err = _capture(
            ["stats", str(prog_bc), "--json"], capsys)
        assert code == 0
        document = json.loads(out)          # stdout is pure JSON...
        assert "285" in err                 # ...program output moved
        assert document["command"] == "stats"
        assert document["result"] == 85
        names = {c["name"] for c in document["metrics"]["counters"]}
        assert "run.steps" in names
        assert document["hottest_blocks"]


class TestProfileCommand:
    def test_default_report_covers_tiers_and_lifecycle(self, prog_bc,
                                                       capsys):
        code, out, _err = _capture(
            ["profile", str(prog_bc), "--tier2-threshold", "2"],
            capsys)
        assert code == 0
        assert "== run ==" in out
        assert "tier1_steps=" in out and "tier2_steps=" in out
        assert "== tiers ==" in out
        assert "== hottest functions ==" in out
        assert "square" in out
        assert "== jit lifecycle ==" in out
        assert "compile_seconds=" in out
        assert not observe.enabled()

    def test_json_totals_match_engine_accounting(self, prog_bc,
                                                 capsys):
        code, out, _err = _capture(
            ["profile", str(prog_bc), "--tier2-threshold", "2",
             "--json"], capsys)
        assert code == 0
        document = json.loads(out)
        assert document["command"] == "profile"
        # The acceptance contract: profiler attribution reconciles
        # exactly with the engine's own step accounting.
        assert document["tier2_steps"] == \
            document["engine_tier2_steps"]
        assert document["tier1_steps"] + document["tier2_steps"] == \
            document["steps"]
        assert sum(t["steps"] for t in document["tiers"].values()) \
            == document["steps"]
        assert document["flight_events"]["run.begin"] == 1

    def test_no_tier2_profiles_pure_tier1(self, prog_bc, capsys):
        code, out, _err = _capture(
            ["profile", str(prog_bc), "--no-tier2", "--json"], capsys)
        assert code == 0
        document = json.loads(out)
        assert document["tier2_steps"] == 0
        assert document["tier1_steps"] == document["steps"] > 0
        assert "tier2" not in document

    def test_speedscope_export(self, prog_bc, tmp_path, capsys):
        scope = tmp_path / "profile.speedscope.json"
        code, _out, _err = _capture(
            ["profile", str(prog_bc), "--tier2-threshold", "2",
             "--speedscope", str(scope)], capsys)
        assert code == 0
        document = json.loads(scope.read_text())
        assert document["$schema"].endswith(
            "file-format-schema.json")
        profile_entry = document["profiles"][0]
        assert profile_entry["type"] == "evented"
        opens = sum(1 for e in profile_entry["events"]
                    if e["type"] == "O")
        closes = sum(1 for e in profile_entry["events"]
                     if e["type"] == "C")
        assert opens == closes > 0
        assert document["shared"]["frames"]


class TestFlightRecordExport:
    def test_run_writes_validated_jsonl(self, prog_bc, tmp_path,
                                        capsys):
        from repro.observe import validate_event

        flight = tmp_path / "flight.jsonl"
        code, _out, _err = _capture(
            ["run", str(prog_bc), "--tier2", "--superblocks", "--osr",
             "--tier2-threshold", "2", "--flight-record", str(flight)],
            capsys)
        assert code == 85
        lines = [json.loads(line)
                 for line in flight.read_text().splitlines()]
        header, events = lines[0], lines[1:]
        assert header["flight"] == 5
        assert header["recorded"] == len(events) + header["dropped"]
        for event in events:
            assert validate_event(event) == [], event
        types = {e["type"] for e in events}
        assert {"run.begin", "run.end", "tier2.promote",
                "tier2.compile.begin", "tier2.compile.end"} <= types

    def test_flight_off_by_default(self, prog_bc, capsys):
        _capture(["run", str(prog_bc), "--stats"], capsys)
        assert observe.flight() is None
