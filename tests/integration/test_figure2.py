"""Figure 2 golden test: compiling the paper's C function must produce
the paper's LLVA structure, and the object code must be portable across
pointer sizes (Section 3.2)."""

from repro.execution import Interpreter
from repro.ir import print_function, types, verify_module
from repro.minic import compile_source

FIGURE2_C = r"""
struct QuadTree {
    double Data;
    struct QuadTree* Children[4];
};

void Sum3rdChildren(struct QuadTree* T, double* Result) {
    double Ret;
    if (T == null) {
        Ret = 0.0;
    } else {
        struct QuadTree* Child3 = T->Children[3];
        double V;
        Sum3rdChildren(Child3, &V);
        Ret = V + T->Data;
    }
    *Result = Ret;
}
"""

HARNESS = r"""
struct QuadTree* make(int depth, double base) {
    if (depth == 0) return null;
    struct QuadTree* t = (struct QuadTree*) malloc(sizeof(struct QuadTree));
    t->Data = base;
    int i;
    for (i = 0; i < 4; i++) t->Children[i] = null;
    t->Children[3] = make(depth - 1, base + 1.0);
    return t;
}
int main() {
    struct QuadTree* root = make(5, 1.0);
    double out;
    Sum3rdChildren(root, &out);
    return (int) out;       // 1+2+3+4+5 = 15
}
"""


class TestFigure2:
    def test_generated_llva_matches_paper_structure(self):
        # -O1 (mem2reg + simplification) produces the paper's exact
        # compiled form; the raw front-end output is the alloca-heavy
        # precursor, also as described.
        module = compile_source(FIGURE2_C, "fig2", optimization_level=1)
        verify_module(module)
        text = print_function(module.get_function("Sum3rdChildren"))
        # The paper's landmarks, in order of appearance in Fig. 2(b):
        assert "alloca double" in text                       # %V
        assert "seteq %struct.QuadTree* %T, null" in text
        assert ("getelementptr %struct.QuadTree* %T, long 0, "
                "ubyte 1, long 3") in text                   # &Children[3]
        assert "load %struct.QuadTree**" in text             # Child3
        # The recursive call (register names are compiler-chosen).
        assert "call void %Sum3rdChildren(%struct.QuadTree* %tmp" in text
        assert "double* %V)" in text
        assert "ubyte 0" in text                             # &T->Data
        assert "add double" in text
        assert "store double" in text
        assert "ret void" in text
        # And the phi that merges %Ret at the join, as in the paper:
        assert "phi double" in text and "[ 0.0, %entry ]" in text

    def test_gep_offsets_match_paper(self):
        """'On systems with 32-bit and 64-bit pointers, the offset from
        the %T pointer would be 20 bytes and 32 bytes respectively.'"""
        module = compile_source(FIGURE2_C, "fig2")
        quadtree = module.named_types["struct.QuadTree"]
        assert types.TargetData(4).gep_offset(quadtree, [0, 1, 3]) == 20
        assert types.TargetData(8).gep_offset(quadtree, [0, 1, 3]) == 32

    def test_instruction_mix_is_pure_table1(self):
        module = compile_source(FIGURE2_C + HARNESS, "fig2")
        from repro.ir.instructions import ALL_OPCODES
        for function in module.functions.values():
            for inst in function.instructions():
                assert inst.opcode in ALL_OPCODES

    def test_runs_on_every_engine_and_layout(self):
        """The same virtual object code executes identically under the
        interpreter and both translators, and under both pointer
        sizes — the portability the V-ABI flags exist for."""
        from repro.execution.machine_sim import MachineSimulator
        from repro.targets import make_target, translate_module

        for pointer_size in (4, 8):
            module = compile_source(FIGURE2_C + HARNESS, "fig2",
                                    pointer_size=pointer_size)
            verify_module(module)
            result = Interpreter(module).run("main")
            assert result.return_value == 15, pointer_size
            for target_name in ("x86", "sparc"):
                target = make_target(target_name)
                if target.pointer_size != pointer_size:
                    continue  # object code carries its V-ABI config
                native = translate_module(module, target)
                simulator = MachineSimulator(native, module)
                assert simulator.run("main")[0] == 15
