"""The command-line toolchain, driven through its public main()."""

import io
import os
import sys

import pytest

from repro.tools import main

PROGRAM = """
int square(int x) { return x * x; }
int main() {
    print_int(square(6));
    print_newline();
    return square(6) % 100;
}
"""

ASSEMBLY = """
int %main() {
entry:
        %v = add int 40, 2
        ret int %v
}
"""


@pytest.fixture()
def workdir(tmp_path, monkeypatch):
    source = tmp_path / "prog.c"
    source.write_text(PROGRAM)
    assembly = tmp_path / "prog.ll"
    assembly.write_text(ASSEMBLY)
    return tmp_path


def _capture(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestToolchain:
    def test_cc_run_interpreter(self, workdir, capsys):
        bc = str(workdir / "prog.bc")
        code, _out, _err = _capture(
            ["cc", str(workdir / "prog.c"), "-o", bc, "-O", "2"],
            capsys)
        assert code == 0 and os.path.getsize(bc) > 0
        code, out, err = _capture(["run", bc, "--stats"], capsys)
        assert out.strip() == "36"
        assert code == 36
        assert "steps=" in err

    def test_run_native_targets(self, workdir, capsys):
        bc = str(workdir / "prog.bc")
        _capture(["cc", str(workdir / "prog.c"), "-o", bc], capsys)
        for target in ("x86", "sparc"):
            code, out, err = _capture(
                ["run", bc, "--target", target, "--stats"], capsys)
            assert out.strip() == "36"
            assert code == 36
            assert "cycles=" in err

    def test_as_dis_round_trip(self, workdir, capsys):
        bc = str(workdir / "asm.bc")
        code, _o, _e = _capture(
            ["as", str(workdir / "prog.ll"), "-o", bc], capsys)
        assert code == 0
        ll = str(workdir / "back.ll")
        code, _o, _e = _capture(["dis", bc, "-o", ll], capsys)
        assert code == 0
        text = open(ll).read()
        assert "add int 40, 2" in text
        code, _out, _err = _capture(["run", bc], capsys)
        assert code == 42

    def test_opt_shrinks(self, workdir, capsys):
        bc = str(workdir / "prog.bc")
        opt = str(workdir / "prog-opt.bc")
        _capture(["cc", str(workdir / "prog.c"), "-o", bc], capsys)
        code, _o, _e = _capture(["opt", bc, "-o", opt, "--link-time"],
                                capsys)
        assert code == 0
        assert os.path.getsize(opt) < os.path.getsize(bc)
        code, out, _err = _capture(["run", opt], capsys)
        assert out.strip() == "36" and code == 36

    def test_llc_listing(self, workdir, capsys):
        bc = str(workdir / "prog.bc")
        _capture(["cc", str(workdir / "prog.c"), "-o", bc], capsys)
        code, out, err = _capture(["llc", bc, "--target", "sparc"],
                                  capsys)
        assert code == 0
        assert ".entry" in out or "main:" in out
        assert "sparc instructions" in err

    def test_link(self, workdir, capsys):
        a = workdir / "a.ll"
        a.write_text("""
        declare int %helper(int)
        int %main() {
        entry:
                %r = call int %helper(int 5)
                ret int %r
        }
        """)
        b = workdir / "b.ll"
        b.write_text("""
        int %helper(int %x) {
        entry:
                %r = mul int %x, 9
                ret int %r
        }
        """)
        out_bc = str(workdir / "linked.bc")
        code, _o, _e = _capture(
            ["link", str(a), str(b), "-o", out_bc], capsys)
        assert code == 0
        code, _out, _err = _capture(["run", out_bc], capsys)
        assert code == 45

    def test_trap_exit_code(self, workdir, capsys):
        bad = workdir / "bad.ll"
        bad.write_text("""
        int %main() {
        entry:
                %q = div int 1, 0
                ret int %q
        }
        """)
        code, _out, err = _capture(["run", str(bad)], capsys)
        assert code == 128 + 2  # divide-by-zero
        assert "trap" in err


class TestTierFlagNormalization:
    """Flag implications resolve before mutual-exclusion validation:
    an implied --tier2 (from --superblocks/--osr/--async-compile/
    --tier3) must hit the same rejections an explicit one does, for
    run, stats, and profile alike."""

    IMPLYING_FLAGS = ("--tier2", "--superblocks", "--osr",
                      "--async-compile", "--tier3")

    @pytest.fixture()
    def prog(self, workdir, capsys):
        bc = str(workdir / "prog.bc")
        assert main(["cc", str(workdir / "prog.c"), "-o", bc]) == 0
        capsys.readouterr()
        return bc

    @pytest.mark.parametrize("flag", IMPLYING_FLAGS)
    def test_run_rejects_tiered_with_target(self, prog, capsys, flag):
        code, _out, err = _capture(
            ["run", prog, flag, "--target", "x86"], capsys)
        assert code == 2
        assert "--tier2" in err and "--target" in err

    @pytest.mark.parametrize("flag", IMPLYING_FLAGS)
    def test_run_rejects_tiered_with_sanitize(self, prog, capsys,
                                              flag):
        code, _out, err = _capture(
            ["run", prog, flag, "--sanitize"], capsys)
        assert code == 2
        assert "--sanitize" in err

    @pytest.mark.parametrize("flag", IMPLYING_FLAGS)
    def test_stats_rejects_tiered_with_target(self, prog, capsys,
                                              flag):
        code, _out, err = _capture(
            ["stats", prog, flag, "--target", "sparc"], capsys)
        assert code == 2
        assert "--tier2" in err

    @pytest.mark.parametrize("flag", IMPLYING_FLAGS)
    def test_stats_rejects_tiered_with_sanitize(self, prog, capsys,
                                                flag):
        code, _out, err = _capture(
            ["stats", prog, flag, "--sanitize"], capsys)
        assert code == 2

    @pytest.mark.parametrize("flag", IMPLYING_FLAGS)
    def test_run_implied_tier2_overrides_reference_engine(
            self, prog, capsys, flag):
        argv = ["run", prog, flag, "--engine", "reference", "--stats"]
        if flag == "--tier3":
            argv += ["--tier2-threshold", "0", "--tier3-threshold", "0"]
        code, out, err = _capture(argv, capsys)
        assert out.strip() == "36"
        assert code == 36
        assert "tier2.steps=" in err or "tier3.steps=" in err

    def test_run_tier3_forced_reports_native_execution(self, prog,
                                                       capsys):
        code, out, err = _capture(
            ["run", prog, "--tier3", "--tier2-threshold", "0",
             "--tier3-threshold", "0", "--stats"], capsys)
        assert out.strip() == "36"
        assert code == 36
        assert "[tier3]" in err
        assert "tier3.functions_compiled=" in err

    def test_stats_tier3_report_section(self, prog, capsys):
        code, out, _err = _capture(
            ["stats", prog, "--tier3", "--tier2-threshold", "0",
             "--tier3-threshold", "0"], capsys)
        assert code == 0
        assert "tiered translation (tier 3)" in out
        assert "tier3.functions_compiled" in out

    def test_profile_reports_tier3_row(self, prog, capsys):
        code, out, _err = _capture(
            ["profile", prog, "--tier3", "--tier2-threshold", "0",
             "--tier3-threshold", "0"], capsys)
        assert code == 0
        assert "tier3_steps=" in out
        assert "tier3" in out.split("== tiers ==", 1)[1]
        assert "== tier-3 lifecycle ==" in out

    def test_profile_tier3_off_by_default(self, prog, capsys):
        code, out, _err = _capture(
            ["profile", prog, "--tier2-threshold", "0"], capsys)
        assert code == 0
        assert "tier3_steps=0" in out
        assert "== tier-3 lifecycle ==" not in out
