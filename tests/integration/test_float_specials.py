"""Floating-point specials survive every representation and engine:
infinities, NaN, signed zero, subnormals, and single-precision
rounding."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm import parse_module
from repro.bitcode import read_module, write_module
from repro.execution import Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.ir import (
    IRBuilder,
    Module,
    print_module,
    types,
    verify_module,
)
from repro.ir.values import const_fp
from repro.targets import make_target, translate_module


def _constant_return(value: float) -> Module:
    module = Module("fp")
    f = module.create_function("main",
                               types.function_of(types.DOUBLE, []))
    entry = f.add_block("entry")
    builder = IRBuilder(entry)
    builder.ret(const_fp(types.DOUBLE, value))
    verify_module(module)
    return module


def _same_float(a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)


SPECIALS = [0.0, -0.0, float("inf"), float("-inf"), float("nan"),
            5e-324, -5e-324, 1.7976931348623157e308, 0.1, -2.5]


class TestSpecialsRoundTrip:
    @pytest.mark.parametrize("value", SPECIALS,
                             ids=[repr(v) for v in SPECIALS])
    def test_assembly_round_trip(self, value):
        module = _constant_return(value)
        text = print_module(module)
        module2 = parse_module(text)
        result = Interpreter(module2).run("main").return_value
        assert _same_float(result, value)

    @pytest.mark.parametrize("value", SPECIALS,
                             ids=[repr(v) for v in SPECIALS])
    def test_bitcode_round_trip(self, value):
        module = _constant_return(value)
        module2 = read_module(write_module(module))
        result = Interpreter(module2).run("main").return_value
        assert _same_float(result, value)

    @pytest.mark.parametrize("value",
                             [0.0, -0.0, float("inf"), 0.1, -2.5])
    @pytest.mark.parametrize("target_name", ["x86", "sparc"])
    def test_native_engines(self, value, target_name):
        module = _constant_return(value)
        native = translate_module(module, make_target(target_name))
        result, _ = MachineSimulator(native, module).run("main")
        assert _same_float(result, value)


class TestIEEESemantics:
    def test_nan_compares_unequal_to_itself(self):
        module = parse_module("""
        bool %main() {
        entry:
                %n = div double 0.0, 0.0
                %r = seteq double %n, %n
                ret bool %r
        }
        """)
        assert Interpreter(module).run("main").return_value is False

    def test_infinity_arithmetic(self):
        module = parse_module("""
        bool %main() {
        entry:
                %inf = div double 1.0, 0.0
                %bigger = add double %inf, 1.0
                %r = seteq double %inf, %bigger
                ret bool %r
        }
        """)
        assert Interpreter(module).run("main").return_value is True

    def test_signed_zero_division(self):
        module = parse_module("""
        bool %main() {
        entry:
                %neg = div double -1.0, 0.0
                %zero = div double 1.0, %neg
                %test = setlt double %neg, 0.0
                ret bool %test
        }
        """)
        assert Interpreter(module).run("main").return_value is True


@given(st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_double_constants_survive_bitcode(value):
    module = _constant_return(value)
    module2 = read_module(write_module(module))
    result = Interpreter(module2).run("main").return_value
    assert _same_float(result, value)


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_float_memory_round_trip_both_endians(value):
    """Storing a float and reloading it preserves the single-precision
    value on both byte orders."""
    from repro.execution.memory import Memory
    from repro.ir.types import TargetData

    for endianness in ("little", "big"):
        memory = Memory(TargetData(8, endianness))
        address = memory.malloc(8)
        memory.write_typed(address, types.FLOAT, value)
        assert _same_float(memory.read_typed(address, types.FLOAT),
                           value)
