"""Assembly parser/printer round-trip and error tests."""

import pytest

from helpers import build_factorial, build_loop_sum, build_quadtree_module
from repro.asm import ParseError, parse_module, tokenize
from repro.asm.lexer import LexerError
from repro.ir import print_module, types, verify_module
from repro.ir.values import ConstantArray


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("%x = add int %y, -5 ; comment\n")
        kinds = [t.kind for t in tokens]
        assert kinds == ["local", "=", "word", "word", "local", ",",
                         "int", "eof"]

    def test_float_and_attrs(self):
        tokens = tokenize("0.5 -1.25e3 !ee(false) c\"hi\\00\"")
        assert [t.kind for t in tokens[:4]] == [
            "float", "float", "bang", "string"]

    def test_error_reports_line(self):
        with pytest.raises(LexerError) as info:
            tokenize("ok\n$bad")
        assert info.value.line == 2


def _round_trip(module):
    verify_module(module)
    text1 = print_module(module)
    module2 = parse_module(text1, module.name)
    verify_module(module2)
    text2 = print_module(module2)
    assert text1 == text2
    return module2


class TestRoundTrip:
    def test_factorial(self):
        _round_trip(build_factorial())

    def test_loop_with_phis_and_geps(self):
        _round_trip(build_loop_sum())

    def test_figure2(self):
        module, _f = build_quadtree_module()
        _round_trip(module)

    def test_all_instruction_kinds(self):
        source = """
        target pointersize = 64
        target endian = little
        %g = global int 7
        %tbl = constant [2 x sbyte] c"a\\00"
        declare void %print_int(int)
        int %callee(int %x) {
        entry:
                ret int %x
        }
        int %kitchen_sink(int %a, int %b, double %d, int* %p) {
        entry:
                %s1 = add int %a, %b
                %s2 = sub int %s1, 1
                %s3 = mul int %s2, %s2
                %s4 = div int %s3, 3
                %s5 = rem int %s4, 7
                %b1 = and int %s5, 255
                %b2 = or int %b1, 16
                %b3 = xor int %b2, %a
                %sh1 = shl int %b3, ubyte 2
                %sh2 = shr int %sh1, ubyte 1
                %c1 = seteq int %sh2, %a
                %c2 = setne int %sh2, %a
                %c3 = setlt int %sh2, %a
                %c4 = setgt int %sh2, %a
                %c5 = setle int %sh2, %a
                %c6 = setge int %sh2, %a
                %f1 = add double %d, 1.5
                %slot = alloca int
                store int %sh2, int* %slot
                %back = load int* %slot
                %arr = alloca int, uint 4
                %elem = getelementptr int* %arr, long 2
                store int %back, int* %elem
                %gv = load int* %g
                %cast1 = cast int %gv to long
                %cast2 = cast long %cast1 to int
                %cv = call int %callee(int %cast2)
                call void %print_int(int %cv)
                br bool %c1, label %two, label %three
        two:
                %mb = add int %cv, 1
                mbr int %mb, label %three, [ int 5, label %four ]
        three:
                %ph = phi int [ %cv, %entry ], [ %mb, %two ]
                ret int %ph
        four:
                %iv = invoke int %callee(int 9) to label %five
                       unwind label %six
        five:
                ret int %iv
        six:
                unwind
        }
        """
        module = parse_module(source)
        _round_trip(module)

    def test_mutual_recursion_forward_reference(self):
        source = """
        int %is_even(int %n) {
        entry:
                %z = seteq int %n, 0
                br bool %z, label %yes, label %no
        yes:
                ret int 1
        no:
                %m = sub int %n, 1
                %r = call int %is_odd(int %m)
                ret int %r
        }
        int %is_odd(int %n) {
        entry:
                %z = seteq int %n, 0
                br bool %z, label %yes, label %no
        yes:
                ret int 0
        no:
                %m = sub int %n, 1
                %r = call int %is_even(int %m)
                ret int %r
        }
        """
        module = _round_trip(parse_module(source))
        from repro.execution import Interpreter
        from repro.ir.values import const_int
        # Sanity: run it.
        interp = Interpreter(module)
        assert interp.run("is_even", [10]).return_value == 1
        interp2 = Interpreter(module)
        assert interp2.run("is_even", [7]).return_value == 0


class TestForwardReferences:
    def test_register_forward_reference_within_function(self):
        source = """
        int %f(bool %c) {
        entry:
                br bool %c, label %a, label %b
        a:
                %early = add int %late, 0
                ret int %early
        b:
                ret int 0
        }
        """
        # %late never defined: must be a parse error.
        with pytest.raises(ParseError) as info:
            parse_module(source)
        assert "undefined registers" in str(info.value)

    def test_string_constant_is_literal_bytes(self):
        module = parse_module(
            '%s = constant [3 x sbyte] c"ab\\00"\n')
        initializer = module.globals["s"].initializer
        assert isinstance(initializer, ConstantArray)
        assert [e.value for e in initializer.elements] == [97, 98, 0]


class TestErrors:
    def test_type_mismatch_detected(self):
        with pytest.raises(Exception):
            parse_module("""
            int %f() {
            entry:
                    %x = add int 1, 2
                    %y = add long %x, 3
                    ret int %x
            }
            """)

    def test_initializer_type_checked(self):
        with pytest.raises(types.LlvaTypeError):
            parse_module('%s = constant [2 x sbyte] c"abc"\n')

    def test_unknown_opcode(self):
        with pytest.raises(ParseError):
            parse_module("""
            int %f() {
            entry:
                    %x = frobnicate int 1, 2
                    ret int %x
            }
            """)

    def test_duplicate_block_label(self):
        with pytest.raises(ParseError):
            parse_module("""
            int %f() {
            entry:
                    br label %entry2
            entry2:
                    ret int 0
            entry2:
                    ret int 1
            }
            """)
