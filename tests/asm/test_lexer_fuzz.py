"""Lexer/parser robustness: arbitrary input must produce a clean,
typed error or a valid module — never an unhandled exception."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm import LexerError, ParseError, parse_module, tokenize
from repro.asm.lexer import Token
from repro.ir.types import LlvaTypeError
from repro.ir.verifier import VerificationError
from repro.minic import MiniCSyntaxError
from repro.minic.lexer import tokenize as minic_tokenize
from repro.minic.parser import parse_program

_CLEAN = (LexerError, ParseError, LlvaTypeError, VerificationError)


@given(st.text(alphabet=st.characters(min_codepoint=32,
                                      max_codepoint=126),
               max_size=120))
@settings(max_examples=200, deadline=None)
def test_llva_lexer_total(source):
    try:
        tokens = tokenize(source)
    except LexerError:
        return
    assert tokens[-1].kind == "eof"
    for token in tokens:
        assert isinstance(token, Token)


@given(st.text(alphabet=st.characters(min_codepoint=32,
                                      max_codepoint=126),
               max_size=120))
@settings(max_examples=150, deadline=None)
def test_llva_parser_fails_cleanly(source):
    try:
        parse_module(source)
    except _CLEAN:
        pass


@given(st.text(alphabet="%intbol adsrucejmp{}()[]*,;=<>0123456789.\n\"'",
               max_size=200))
@settings(max_examples=150, deadline=None)
def test_llva_parser_structured_noise(source):
    try:
        parse_module(source)
    except _CLEAN:
        pass


@given(st.text(alphabet=st.characters(min_codepoint=32,
                                      max_codepoint=126),
               max_size=120))
@settings(max_examples=150, deadline=None)
def test_minic_front_end_fails_cleanly(source):
    try:
        parse_program(source)
    except MiniCSyntaxError:
        pass


@given(st.text(alphabet="intcharfovwhileburdsg {}()[];=+-*/%<>!&|,0123456789'\"\n",
               max_size=200))
@settings(max_examples=150, deadline=None)
def test_minic_structured_noise(source):
    try:
        minic_tokenize(source)
        parse_program(source)
    except MiniCSyntaxError:
        pass
