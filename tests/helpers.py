"""Shared module-building helpers for the test suite."""

from __future__ import annotations

from typing import Tuple

from repro.ir import IRBuilder, Module, types
from repro.ir.module import Function
from repro.ir.values import const_fp, const_int, const_null


def build_factorial(module_name: str = "fact") -> Module:
    """``fac(n)``: recursive factorial, plus ``main`` returning fac(10)."""
    module = Module(module_name)
    int_t = types.INT
    fac = module.create_function(
        "fac", types.function_of(int_t, [int_t]), ["n"])
    entry = fac.add_block("entry")
    base = fac.add_block("base")
    rec = fac.add_block("rec")
    builder = IRBuilder(entry)
    is_base = builder.setle(fac.args[0], const_int(int_t, 1))
    builder.cond_br(is_base, base, rec)
    builder.set_block(base)
    builder.ret(const_int(int_t, 1))
    builder.set_block(rec)
    n_minus_1 = builder.sub(fac.args[0], const_int(int_t, 1))
    recursive = builder.call(fac, [n_minus_1])
    product = builder.mul(fac.args[0], recursive)
    builder.ret(product)

    main = module.create_function("main", types.function_of(int_t, []))
    main_entry = main.add_block("entry")
    builder.set_block(main_entry)
    result = builder.call(fac, [const_int(int_t, 10)])
    builder.ret(result)
    return module


def build_loop_sum(limit: int = 10, module_name: str = "loopsum") -> Module:
    """``main`` sums 0..limit-1 with a phi-carried loop and array stores."""
    module = Module(module_name)
    int_t = types.INT
    array_t = types.array_of(int_t, limit)
    main = module.create_function("main", types.function_of(int_t, []))
    entry = main.add_block("entry")
    loop = main.add_block("loop")
    done = main.add_block("done")
    builder = IRBuilder(entry)
    array = builder.alloca(array_t, name="a")
    builder.br(loop)
    builder.set_block(loop)
    index = builder.phi(int_t, name="i")
    total = builder.phi(int_t, name="s")
    index.add_incoming(const_int(int_t, 0), entry)
    total.add_incoming(const_int(int_t, 0), entry)
    index_long = builder.cast(index, types.LONG)
    slot = builder.gep(array, [const_int(types.LONG, 0), index_long])
    builder.store(index, slot)
    loaded = builder.load(slot)
    new_total = builder.add(total, loaded)
    new_index = builder.add(index, const_int(int_t, 1))
    index.add_incoming(new_index, loop)
    total.add_incoming(new_total, loop)
    more = builder.setlt(new_index, const_int(int_t, limit))
    builder.cond_br(more, loop, done)
    builder.set_block(done)
    builder.ret(new_total)
    return module


def build_quadtree_module() -> Tuple[Module, Function]:
    """The paper's Figure 2 function, built programmatically."""
    module = Module("fig2")
    quadtree = types.named_struct("struct.QuadTree")
    qt_ptr = types.pointer_to(quadtree)
    quadtree.set_body([types.DOUBLE, types.array_of(qt_ptr, 4)])
    module.add_named_type("struct.QuadTree", quadtree)
    double_ptr = types.pointer_to(types.DOUBLE)
    fn_type = types.function_of(types.VOID, [qt_ptr, double_ptr])
    function = module.create_function(
        "Sum3rdChildren", fn_type, ["T", "Result"])
    t_arg, result_arg = function.args

    entry = function.add_block("entry")
    else_block = function.add_block("else")
    endif = function.add_block("endif")
    builder = IRBuilder(entry)
    slot = builder.alloca(types.DOUBLE, name="V")
    is_null = builder.seteq(t_arg, const_null(qt_ptr))
    builder.cond_br(is_null, endif, else_block)

    builder.set_block(else_block)
    child_ptr = builder.gep_const(t_arg, 0, 1, 3, name="tmp.1")
    child = builder.load(child_ptr, name="Child3")
    builder.call(function, [child, slot])
    child_sum = builder.load(slot)
    data_ptr = builder.gep_const(t_arg, 0, 0, name="tmp.3")
    data = builder.load(data_ptr)
    total = builder.add(child_sum, data, name="Ret.0")
    builder.br(endif)

    builder.set_block(endif)
    merged = builder.phi(
        types.DOUBLE,
        [(total, else_block), (const_fp(types.DOUBLE, 0.0), entry)],
        name="Ret.1")
    builder.store(merged, result_arg)
    builder.ret()
    return module, function
