"""Tier-3 mechanics: promotion, deopt, SMC, persistence, pinning.

The differential suite proves tier-3 runs are observationally
identical to the oracle; this module pins down the *machinery* —
step-credit promotion, the deopt contract (a trap delivered inside a
native frame demotes the function all the way back to tier 1), SMC
invalidation of installed native units, the ``llee-tier3`` persistence
blob, background compilation, and the UnsupportedHosted fallback.
"""

import pytest

from repro.asm import parse_module
from repro.execution import ExecutionTrap, Interpreter
from repro.execution.machine_sim import (
    Tier3Unit,
    UnsupportedHosted,
    build_tier3_unit,
)
from repro.execution.tier2 import (
    TIER3_CACHE_NAME,
    Tier2Cache,
)
from repro.ir import verify_module
from repro.targets import make_target

HOT_LOOP = """
int %work(int %n) {
entry:
        br label %loop
loop:
        %i = phi int [0, %entry], [%next, %loop]
        %acc = phi int [0, %entry], [%sum, %loop]
        %tripled = mul int %i, 3
        %sum = add int %acc, %tripled
        %next = add int %i, 1
        %done = setge int %next, %n
        br bool %done, label %exit, label %loop
exit:
        ret int %sum
}
int %main() {
entry:
        br label %loop
loop:
        %i = phi int [0, %entry], [%next, %loop]
        %v = call int %work(int 30)
        %next = add int %i, 1
        %done = setge int %next, 20
        br bool %done, label %exit, label %loop
exit:
        ret int %v
}
"""


def _module(source=HOT_LOOP):
    module = parse_module(source)
    verify_module(module)
    return module


def _forced_cache(module, target_name="x86", **kwargs):
    return Tier2Cache(module, module.target_data, threshold=0,
                      tier3=True, tier3_threshold=0,
                      tier3_target=target_name, **kwargs)


class MemStorage:
    """Minimal in-memory LLEE storage for persistence round trips."""

    def __init__(self):
        self.blobs = {}

    def read(self, cache, key):
        return self.blobs.get((cache, key))

    def write(self, cache, key, data):
        self.blobs[(cache, key)] = data

    def timestamp(self, cache, key):
        return None


class TestPromotion:
    @pytest.mark.parametrize("target", ("x86", "sparc"))
    def test_forced_promotion_runs_native(self, target):
        module = _module()
        reference = Interpreter(_module()).run("main", [])
        cache = _forced_cache(module, target)
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        result = interpreter.run("main", [])
        assert result.return_value == reference.return_value
        assert result.steps == reference.steps
        assert interpreter.tier3_calls > 0
        assert interpreter.tier3_steps == result.steps
        assert cache.stats.tier3_compiled == 2
        assert cache.stats.tier3_deopts == 0

    def test_high_threshold_never_promotes(self):
        module = _module()
        cache = Tier2Cache(module, module.target_data, threshold=0,
                           tier3=True, tier3_threshold=10**9)
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        interpreter.run("main", [])
        assert cache.stats.tier3_compiled == 0
        assert interpreter.tier3_calls == 0
        assert interpreter.tier2_calls > 0

    def test_step_credit_promotes_hot_tier2_function(self):
        # %work burns ~250 steps per invocation in tier 2; a small
        # tier-3 step-credit threshold must promote it mid-run while
        # the cold entry function stays in tier 2.
        module = _module()
        cache = Tier2Cache(module, module.target_data, threshold=0,
                           tier3=True, tier3_threshold=500)
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        result = interpreter.run("main", [])
        assert result.return_value == Interpreter(
            _module()).run("main", []).return_value
        assert cache.stats.tier3_compiled >= 1
        assert interpreter.tier3_calls > 0
        assert 0 < interpreter.tier3_steps < result.steps

    def test_tier3_without_explicit_tier2_flag(self):
        # tier3=True alone must light up the whole ladder.
        module = _module()
        interpreter = Interpreter(module, engine="fast", tier3=True,
                                  tier2_threshold=0, tier3_threshold=0)
        result = interpreter.run("main", [])
        assert interpreter.tier2 is not None
        assert interpreter.tier2.tier3
        assert result.return_value == Interpreter(
            _module()).run("main", []).return_value

    def test_reference_engine_rejects_tier3(self):
        with pytest.raises(ValueError):
            Interpreter(_module(), engine="reference", tier3=True)


class TestDeopt:
    TRAP_LOOP = """
    int %divloop(int %n) {
    entry:
            br label %loop
    loop:
            %i = phi int [0, %entry], [%next, %loop]
            %acc = phi int [0, %entry], [%sum, %loop]
            %den = sub int %n, %i
            %den2 = sub int %den, 10
            %q = div int 100, %den2
            %sum = add int %acc, %q
            %next = add int %i, 1
            %done = setge int %next, %n
            br bool %done, label %exit, label %loop
    exit:
            ret int %sum
    }
    int %main() {
    entry:
            %r = call int %divloop(int 20)
            ret int %r
    }
    """

    @pytest.mark.parametrize("target", ("x86", "sparc"))
    def test_trap_mid_native_frame_deopts_to_tier1(self, target):
        """An unmasked divide-by-zero fires on iteration 10, deep in a
        native frame: the trap must surface with the oracle's trap
        number and step count, and the function must be demoted."""
        reference_interp = Interpreter(_module(self.TRAP_LOOP))
        try:
            reference_interp.run("main", [])
            reference = ("ok",)
        except ExecutionTrap as trap:
            reference = ("trap", trap.trap_number,
                         reference_interp.steps)
        assert reference[0] == "trap"

        module = _module(self.TRAP_LOOP)
        cache = _forced_cache(module, target)
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        try:
            interpreter.run("main", [])
            raised = None
        except ExecutionTrap as trap:
            raised = trap
        assert raised is not None
        assert ("trap", raised.trap_number,
                interpreter.steps) == reference
        assert cache.stats.tier3_deopts == 1
        divloop = module.get_function("divloop")
        assert "deopt" in cache.pinned3_reason(divloop)

    def test_handled_trap_resumes_after_deopt(self):
        """A registered handler absorbs the fault: the run completes,
        with the faulting function finishing the invocation in tier 1
        and later calls staying off tier 3."""
        source = """
        %log = global int 0
        declare void %llva.trap.register(uint, sbyte*)
        void %handler(uint %trapno, sbyte* %info) {
        entry:
                %old = load int* %log
                %n = cast uint %trapno to int
                %new = add int %old, %n
                store int %new, int* %log
                ret void
        }
        int %faulty(int %x) {
        entry:
                %q = div int %x, 0
                ret int %q
        }
        int %main() {
        entry:
                %h = cast void (uint, sbyte*)* %handler to sbyte*
                call void %llva.trap.register(uint 2, sbyte* %h)
                %a = call int %faulty(int 9)
                %b = call int %faulty(int 7)
                %v = load int* %log
                %r = add int %v, %a
                %s = add int %r, %b
                ret int %s
        }
        """
        reference = Interpreter(_module(source),
                                privileged=True).run("main", [])
        module = _module(source)
        cache = _forced_cache(module)
        interpreter = Interpreter(module, engine="fast",
                                  privileged=True, tier2=cache)
        result = interpreter.run("main", [])
        assert (result.return_value, result.steps) == \
            (reference.return_value, reference.steps)
        assert cache.stats.tier3_deopts == 1


class TestSMCInvalidation:
    SMC = """
    declare void %llva.smc.replace(sbyte*, sbyte*)
    int %f(int %x) {
    entry:
            %r = add int %x, 1
            ret int %r
    }
    int %g(int %x) {
    entry:
            %r = mul int %x, 100
            ret int %r
    }
    int %main() {
    entry:
            %before = call int %f(int 5)
            %old = cast int (int)* %f to sbyte*
            %new = cast int (int)* %g to sbyte*
            call void %llva.smc.replace(sbyte* %old, sbyte* %new)
            %after = call int %f(int 5)
            %r = sub int %after, %before
            ret int %r
    }
    """

    @pytest.mark.parametrize("target", ("x86", "sparc"))
    def test_smc_invalidates_installed_native_unit(self, target):
        module = _module(self.SMC)
        cache = _forced_cache(module, target)
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        result = interpreter.run("main", [])
        assert result.return_value == 494
        assert cache.stats.tier3_invalidations >= 1
        # The replacement body recompiles at the new smc version and
        # the second call still runs native.
        assert cache.stats.tier3_compiled >= 2


class TestPinning:
    def test_invoke_unwind_body_pins_not_crashes(self):
        source = """
        int %thrower() {
        entry:
                unwind
        }
        int %main() {
        entry:
                %v = invoke int %thrower() to label %ok
                      unwind label %caught
        ok:
                ret int %v
        caught:
                ret int 77
        }
        """
        module = _module(source)
        cache = _forced_cache(module)
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        result = interpreter.run("main", [])
        assert result.return_value == 77
        assert cache.stats.tier3_pins >= 1
        assert cache.pinned3_reason(
            module.get_function("main")) is not None

    def test_build_rejects_unwind_directly(self):
        source = """
        int %main() {
        entry:
                unwind
        }
        """
        module = _module(source)
        with pytest.raises(UnsupportedHosted):
            build_tier3_unit(module.get_function("main"), module,
                             make_target("x86"))


class TestPersistence:
    def test_round_trip_warm_start(self):
        storage = MemStorage()
        module = _module()
        cache = _forced_cache(module)
        cache.attach_storage(storage, "k1")
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        cold = interpreter.run("main", [])
        assert cache.flush_storage()
        assert (TIER3_CACHE_NAME, "k1") in storage.blobs

        module2 = _module()
        cache2 = _forced_cache(module2)
        cache2.attach_storage(storage, "k1")
        interpreter2 = Interpreter(module2, engine="fast",
                                   tier2=cache2)
        warm = interpreter2.run("main", [])
        assert cache2.tier3_cache_hit
        assert cache2.stats.tier3_warm == 2
        assert (warm.return_value, warm.output, warm.steps) == \
            (cold.return_value, cold.output, cold.steps)

    def test_corrupt_blob_falls_back_to_cold_compile(self):
        storage = MemStorage()
        module = _module()
        cache = _forced_cache(module)
        cache.attach_storage(storage, "k1")
        Interpreter(module, engine="fast", tier2=cache).run("main", [])
        cache.flush_storage()
        storage.blobs[(TIER3_CACHE_NAME, "k1")] = b"not json"

        module2 = _module()
        cache2 = _forced_cache(module2)
        cache2.attach_storage(storage, "k1")
        result = Interpreter(module2, engine="fast",
                             tier2=cache2).run("main", [])
        assert not cache2.tier3_cache_hit
        assert cache2.stats.tier3_warm == 0
        assert cache2.stats.tier3_compiled == 2
        assert result.return_value == Interpreter(
            _module()).run("main", []).return_value

    def test_target_mismatch_rejected(self):
        storage = MemStorage()
        module = _module()
        cache = _forced_cache(module, "x86")
        cache.attach_storage(storage, "k1")
        Interpreter(module, engine="fast", tier2=cache).run("main", [])
        cache.flush_storage()

        module2 = _module()
        cache2 = _forced_cache(module2, "sparc")
        cache2.attach_storage(storage, "k1")
        result = Interpreter(module2, engine="fast",
                             tier2=cache2).run("main", [])
        assert not cache2.tier3_cache_hit
        assert result.return_value == Interpreter(
            _module()).run("main", []).return_value


class TestAsyncTier3:
    def test_background_compiles_swap_in(self):
        module = _module()
        reference = Interpreter(_module()).run("main", [])
        cache = _forced_cache(module, async_compile=True,
                              escalate_step_threshold=64)
        try:
            interpreter = Interpreter(module, engine="fast",
                                      tier2=cache)
            result = interpreter.run("main", [])
            assert (result.return_value, result.output,
                    result.steps) == (reference.return_value,
                                      reference.output,
                                      reference.steps)
            assert cache.drain(timeout=30.0)
            assert cache.pending_compiles == 0
            assert cache.stats.tier3_compiled > 0
        finally:
            cache.close()


class TestThreadedBackend:
    """The block-compiled direct-threaded backend: selection,
    trap-report parity with the step oracle, SMC invalidation of
    compiled blocks, per-function degradation, and warm-load
    regeneration under the bumped persistence version."""

    def _trap_outcome(self, backend, target="x86"):
        module = _module(TestDeopt.TRAP_LOOP)
        cache = _forced_cache(module, target, tier3_backend=backend)
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        try:
            interpreter.run("main", [])
            outcome = ("ok",)
        except ExecutionTrap as trap:
            outcome = ("trap", trap.trap_number, trap.detail,
                       interpreter.steps)
        return outcome, cache

    def test_default_backend_is_threaded(self):
        module = _module()
        cache = _forced_cache(module)
        assert cache.tier3_backend == "threaded"
        Interpreter(module, engine="fast", tier2=cache).run("main", [])
        assert cache.stats.tier3_threaded_units == 2
        assert cache.stats.tier3_step_units == 0
        assert cache.stats.tier3_degraded == 0

    def test_unknown_backend_rejected(self):
        module = _module()
        with pytest.raises(ValueError):
            _forced_cache(module, tier3_backend="turbo")
        with pytest.raises(ValueError):
            build_tier3_unit(module.get_function("work"), module,
                             make_target("x86"), backend="turbo")

    def test_threaded_unit_carries_compiled_source(self):
        module = _module()
        unit = build_tier3_unit(module.get_function("work"), module,
                                make_target("x86"))
        assert unit.backend == "threaded"
        assert not unit.degraded
        source = unit._threaded._source
        # Block-threaded shape: a dispatch local, batched per-edge
        # step charging, and no per-instruction dispatch loop.
        assert "__blk" in source
        assert "__steps +=" in source

    @pytest.mark.parametrize("target", ("x86", "sparc"))
    def test_mid_block_trap_report_matches_step_backend(self, target):
        """The divide fault fires mid-block, deep in a threaded body:
        the side exit must produce a byte-identical trap report (trap
        number, detail, architectural step count) to the step oracle,
        and deopt exactly like it."""
        threaded, threaded_cache = self._trap_outcome("threaded",
                                                      target)
        step, step_cache = self._trap_outcome("step", target)
        assert threaded[0] == "trap"
        assert threaded == step
        assert threaded_cache.stats.tier3_deopts == 1
        assert step_cache.stats.tier3_deopts == 1
        assert threaded_cache.stats.tier3_threaded_units > 0
        assert step_cache.stats.tier3_step_units > 0

    def test_smc_invalidates_compiled_blocks(self):
        """llva.smc.replace must drop the installed threaded unit —
        compiled block code and all — and the replacement body must
        recompile threaded at the new SMC version."""
        module = _module(TestSMCInvalidation.SMC)
        cache = _forced_cache(module, tier3_backend="threaded")
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        result = interpreter.run("main", [])
        assert result.return_value == 494
        assert cache.stats.tier3_invalidations >= 1
        assert cache.stats.tier3_compiled >= 2
        assert cache.stats.tier3_threaded_units \
            == cache.stats.tier3_compiled
        assert cache.stats.tier3_degraded == 0

    def test_unsupported_instruction_degrades_per_function(self):
        """A machine body the block compiler cannot express (here: a
        virtual-register operand the step executor ignores) must
        degrade that one unit to the step backend — counted, not
        pinned — and still run correctly."""
        from repro.ir import types as irtypes
        from repro.targets.machine import (
            MachineInstr,
            Semantics,
            VirtualReg,
        )

        module = _module()
        unit = build_tier3_unit(module.get_function("work"), module,
                                make_target("x86"))
        assert unit.backend == "threaded"
        machine = unit.machine
        machine.blocks[0].instructions.insert(0, MachineInstr(
            "nop", Semantics.NOP, [VirtualReg(0, irtypes.INT)]))
        degraded = Tier3Unit(unit.name, machine, 0, unit.num_args,
                             unit.num_slots, unit.block_steps,
                             unit.slot_by_site, backend="threaded")
        assert degraded.degraded
        assert degraded.backend == "step"
        assert degraded._threaded is None
        # The degraded unit still executes — via the step oracle.
        interpreter = Interpreter(_module(), engine="fast")
        generator = degraded.factory(interpreter, 30)
        try:
            next(generator)
            pytest.fail("leaf unit should not yield")
        except StopIteration as stop:
            assert stop.value == sum(3 * i for i in range(30))

    def test_requested_step_backend_is_not_degradation(self):
        module = _module()
        cache = _forced_cache(module, tier3_backend="step")
        Interpreter(module, engine="fast", tier2=cache).run("main", [])
        assert cache.stats.tier3_step_units == 2
        assert cache.stats.tier3_threaded_units == 0
        assert cache.stats.tier3_degraded == 0

    def test_warm_load_rebuilds_threaded_bodies(self):
        """llee-tier3 blobs persist machine code only (version 2):
        a warm start must deserialize the machine functions and
        regenerate their block-compiled bodies, matching the cold
        run exactly."""
        from repro.execution.tier2 import TIER3_VERSION

        assert TIER3_VERSION == 2
        storage = MemStorage()
        module = _module()
        cache = _forced_cache(module, tier3_backend="threaded")
        cache.attach_storage(storage, "k1")
        cold = Interpreter(module, engine="fast",
                           tier2=cache).run("main", [])
        assert cache.flush_storage()

        module2 = _module()
        cache2 = _forced_cache(module2, tier3_backend="threaded")
        cache2.attach_storage(storage, "k1")
        interpreter2 = Interpreter(module2, engine="fast",
                                   tier2=cache2)
        warm = interpreter2.run("main", [])
        assert cache2.tier3_cache_hit
        assert cache2.stats.tier3_warm == 2
        assert cache2.stats.tier3_threaded_units == 2
        assert cache2.stats.tier3_degraded == 0
        assert interpreter2.tier3_steps == warm.steps
        assert (warm.return_value, warm.output, warm.steps) == \
            (cold.return_value, cold.output, cold.steps)


class TestTier3Unit:
    def test_unit_kind_and_cycle_totals(self):
        module = _module()
        unit = build_tier3_unit(module.get_function("work"), module,
                                make_target("x86"))
        assert isinstance(unit, Tier3Unit)
        assert unit.kind == "tier3"
        assert unit.num_args == 1
        assert set(unit.block_steps) == {"entry", "loop", "exit"}
        # Per-block native cycle totals reconcile with the simulator's
        # deterministic cost model: every block costs something.
        assert all(cycles > 0
                   for cycles in unit.block_cycles.values())

    def test_profiler_reports_tier3_rows(self):
        from repro.observe.profiler import StepProfiler

        module = _module()
        cache = _forced_cache(module)
        profiler = StepProfiler()
        interpreter = Interpreter(module, engine="fast", tier2=cache,
                                  profiler=profiler)
        result = interpreter.run("main", [])
        data = profiler.to_dict()
        assert data["tier3_steps"] == result.steps
        assert "tier3" in data["tiers"]
        assert data["tiers"]["tier3"]["steps"] == result.steps
