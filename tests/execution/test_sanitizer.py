"""llva-san unit tests: shadow metadata, quarantine, fault reports."""

import pytest

from repro.asm import parse_module
from repro.execution import (
    DecodeCache,
    Interpreter,
    SanitizedMemory,
    SanitizerFault,
)
from repro.execution.events import TrapKind
from repro.execution.memory import HEAP_BASE, Memory
from repro.execution.sanitizer import REDZONE, format_site
from repro.ir.types import TargetData


def _memory() -> SanitizedMemory:
    return SanitizedMemory(TargetData(8, "little"))


class TestHeapChecks:
    def test_clean_round_trip(self):
        memory = _memory()
        a = memory.malloc(32)
        memory.write_bytes(a, b"x" * 32)
        assert memory.read_bytes(a, 32) == b"x" * 32
        assert memory.san.fault_count == 0

    def test_use_after_free(self):
        memory = _memory()
        a = memory.malloc(32)
        memory.free(a)
        with pytest.raises(SanitizerFault) as info:
            memory.read_bytes(a, 1)
        fault = info.value
        assert fault.trap_number == TrapKind.MEMORY_FAULT
        assert fault.unmaskable
        assert fault.report.kind == "heap-use-after-free"
        assert fault.address == a
        assert "offset 0 into 32-byte block" in fault.detail
        assert "allocated at" in fault.detail
        assert "freed at" in fault.detail

    def test_buffer_overflow(self):
        memory = _memory()
        a = memory.malloc(16)
        with pytest.raises(SanitizerFault) as info:
            memory.read_bytes(a + 16, 4)  # first redzone byte
        assert info.value.report.kind == "heap-buffer-overflow"
        assert "offset 16 into 16-byte block" in info.value.detail

    def test_overflow_straddling_the_edge(self):
        memory = _memory()
        a = memory.malloc(16)
        with pytest.raises(SanitizerFault) as info:
            memory.write_bytes(a + 14, b"1234")  # last 2 bytes spill
        assert info.value.report.kind == "heap-buffer-overflow"
        assert info.value.report.access == "write"

    def test_buffer_underflow(self):
        memory = _memory()
        a = memory.malloc(16)
        with pytest.raises(SanitizerFault) as info:
            memory.read_bytes(a - 1, 1)  # left redzone
        assert info.value.report.kind == "heap-buffer-underflow"
        assert "offset -1" in info.value.detail

    def test_exact_size_not_rounded(self):
        # The sanitized allocator keeps the *requested* size so an
        # access inside the 16-byte alignment slack still faults.
        memory = _memory()
        a = memory.malloc(5)
        assert memory.read_bytes(a, 5) == b"\x00" * 5
        with pytest.raises(SanitizerFault) as info:
            memory.read_bytes(a + 5, 1)
        assert info.value.report.kind == "heap-buffer-overflow"

    def test_wild_check_with_no_allocations(self):
        memory = _memory()
        with pytest.raises(SanitizerFault) as info:
            memory.san.check_heap(HEAP_BASE + 8, 1, "read")
        assert info.value.report.kind == "heap-wild-access"


class TestFreeChecks:
    def test_double_free(self):
        memory = _memory()
        a = memory.malloc(8)
        memory.free(a)
        with pytest.raises(SanitizerFault) as info:
            memory.free(a)
        assert info.value.report.kind == "double-free"
        assert "8-byte block" in info.value.detail
        assert "freed at" in info.value.detail

    def test_invalid_free_interior_pointer(self):
        memory = _memory()
        a = memory.malloc(32)
        with pytest.raises(SanitizerFault) as info:
            memory.free(a + 8)
        assert info.value.report.kind == "invalid-free"
        assert "offset 8 into 32-byte block" in info.value.detail

    def test_invalid_free_wild_pointer(self):
        memory = _memory()
        with pytest.raises(SanitizerFault) as info:
            memory.free(0x1234)
        assert info.value.report.kind == "invalid-free"
        assert "not the start of any heap allocation" in info.value.detail

    def test_free_null_is_noop(self):
        memory = _memory()
        memory.free(0)
        assert memory.san.frees == 0


class TestQuarantine:
    def test_freed_addresses_never_reused(self):
        memory = _memory()
        seen = set()
        for _ in range(8):
            a = memory.malloc(16)
            assert a not in seen
            seen.add(a)
            memory.free(a)

    def test_quarantine_and_redzone_stats(self):
        memory = _memory()
        a = memory.malloc(24)
        san = memory.san
        assert san.allocations == 1
        record = san.record_for(a)
        assert record.size == 24
        assert record.chunk_start == a - REDZONE
        assert san.redzone_bytes == (record.chunk_end
                                     - record.chunk_start) - 24
        memory.free(a)
        assert san.frees == 1
        assert san.quarantine_bytes == 24
        assert memory.heap_live == 0
        assert memory.heap_allocated == 24

    def test_fault_kind_counters(self):
        memory = _memory()
        a = memory.malloc(8)
        memory.free(a)
        for _ in range(2):
            with pytest.raises(SanitizerFault):
                memory.read_bytes(a, 1)
        assert memory.san.fault_count == 2
        assert memory.san.fault_kinds == {"heap-use-after-free": 2}


class TestStack:
    def test_pop_frame_scrubs_and_below_sp_faults(self):
        memory = _memory()
        top = memory.stack_pointer
        frame = memory.push_frame(64)
        memory.write_bytes(frame, b"\xee" * 64)
        memory.pop_frame(top)
        assert memory.san.stack_scrubbed_bytes >= 64
        with pytest.raises(SanitizerFault) as info:
            memory.read_bytes(frame, 4)
        assert info.value.report.kind == "stack-below-sp"
        assert "below the live stack pointer" in info.value.detail
        # A fresh frame over the same range starts zeroed.
        frame2 = memory.push_frame(64)
        assert memory.read_bytes(frame2, 64) == b"\x00" * 64

    def test_live_stack_unaffected(self):
        memory = _memory()
        frame = memory.push_frame(32)
        memory.write_bytes(frame, b"y" * 32)
        assert memory.read_bytes(frame, 32) == b"y" * 32


class TestSites:
    def test_site_threading(self):
        memory = _memory()
        memory.san.set_site(format_site("main", "entry", 3, "call"))
        a = memory.malloc(16)
        memory.san.set_site(format_site("main", "entry", 7, "call"))
        memory.free(a)
        record = memory.san.record_for(a)
        assert record.alloc_site == "%main:entry:#3 (call)"
        assert record.free_site == "%main:entry:#7 (call)"

    def test_site_defaults_to_runtime(self):
        memory = _memory()
        a = memory.malloc(16)
        assert memory.san.record_for(a).alloc_site == "<runtime>"


class TestEngineWiring:
    SOURCE = """
    int %main() {
    entry:
            ret int 0
    }
    """

    def test_plain_interpreter_has_no_sanitizer(self):
        module = parse_module(self.SOURCE)
        interpreter = Interpreter(module)
        assert interpreter.memory.san is None
        assert type(interpreter.memory) is Memory

    def test_sanitized_interpreter_uses_sanitized_memory(self):
        module = parse_module(self.SOURCE)
        interpreter = Interpreter(module, sanitize=True)
        assert isinstance(interpreter.memory, SanitizedMemory)

    def test_decode_cache_mode_mismatch_rejected(self):
        module = parse_module(self.SOURCE)
        plain_cache = DecodeCache(module.target_data)
        with pytest.raises(ValueError):
            Interpreter(module, engine="fast", decode_cache=plain_cache,
                        sanitize=True)
