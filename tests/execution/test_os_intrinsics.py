"""Kernel-facing intrinsics: page tables, device I/O, stack walking."""

import pytest

from repro.asm import parse_module
from repro.execution import ExecutionTrap, Interpreter, TrapKind
from repro.ir import verify_module


def _kernel(source: str) -> Interpreter:
    module = parse_module(source)
    verify_module(module)
    return Interpreter(module, privileged=True)


class TestPageTables:
    SOURCE = """
    declare void %llva.pagetable.map(ulong, ulong, uint)
    declare void %llva.pagetable.unmap(ulong)
    int %main() {
    entry:
            ; Map a page at 3 GiB and use it as ordinary memory.
            call void %llva.pagetable.map(ulong 3221225472,
                                          ulong 1234, uint 7)
            %p = cast ulong 3221225472 to int*
            store int 77, int* %p
            %v = load int* %p
            ret int %v
    }
    """

    def test_mapped_page_is_usable(self):
        result = _kernel(self.SOURCE).run("main")
        assert result.return_value == 77

    def test_unmapped_high_address_faults(self):
        interp = _kernel("""
        int %main() {
        entry:
                %p = cast ulong 3221225472 to int*
                %v = load int* %p
                ret int %v
        }
        """)
        with pytest.raises(ExecutionTrap) as info:
            interp.run("main")
        assert info.value.trap_number == TrapKind.MEMORY_FAULT

    def test_map_requires_privilege(self):
        module = parse_module(self.SOURCE)
        with pytest.raises(ExecutionTrap) as info:
            Interpreter(module, privileged=False).run("main")
        assert info.value.trap_number == TrapKind.PRIVILEGE_VIOLATION


class TestDeviceIO:
    def test_write_then_read_channel(self):
        interp = _kernel("""
        declare void %llva.io.write(uint, ulong)
        declare ulong %llva.io.read(uint)
        int %main() {
        entry:
                call void %llva.io.write(uint 1, ulong 111)
                call void %llva.io.write(uint 1, ulong 222)
                call void %llva.io.write(uint 2, ulong 999)
                %a = call ulong %llva.io.read(uint 1)
                %b = call ulong %llva.io.read(uint 1)
                %c = call ulong %llva.io.read(uint 1)
                %sum0 = add ulong %a, %b
                %sum1 = add ulong %sum0, %c
                %r = cast ulong %sum1 to int
                ret int %r
        }
        """)
        # FIFO per channel; empty channel reads 0.
        assert interp.run("main").return_value == 111 + 222 + 0

    def test_host_can_preload_channels(self):
        interp = _kernel("""
        declare ulong %llva.io.read(uint)
        int %main() {
        entry:
                %a = call ulong %llva.io.read(uint 5)
                %r = cast ulong %a to int
                ret int %r
        }
        """)
        interp.io_channels[5] = [4242]
        assert interp.run("main").return_value == 4242


class TestPrivilegeTransitions:
    def test_kernel_can_drop_privilege(self):
        interp = _kernel("""
        declare void %llva.priv.set(bool)
        declare bool %llva.priv.enabled()
        declare void %llva.pagetable.unmap(ulong)
        int %main() {
        entry:
                %was = call bool %llva.priv.enabled()
                call void %llva.priv.set(bool false)
                %now = call bool %llva.priv.enabled()
                %w = cast bool %was to int
                %n = cast bool %now to int
                %r = sub int %w, %n
                ret int %r
        }
        """)
        assert interp.run("main").return_value == 1
        assert not interp.privileged

    def test_unprivileged_cannot_raise_privilege(self):
        module = parse_module("""
        declare void %llva.priv.set(bool)
        int %main() {
        entry:
                call void %llva.priv.set(bool true)
                ret int 0
        }
        """)
        with pytest.raises(ExecutionTrap) as info:
            Interpreter(module, privileged=False).run("main")
        assert info.value.trap_number == TrapKind.PRIVILEGE_VIOLATION


class TestStackCaller:
    def test_caller_addresses_walk_the_stack(self):
        interp = _kernel("""
        declare sbyte* %llva.stack.caller(uint)
        %probe0 = global ulong 0
        %probe1 = global ulong 0
        void %inner() {
        entry:
                %own = call sbyte* %llva.stack.caller(uint 0)
                %up = call sbyte* %llva.stack.caller(uint 1)
                %a = cast sbyte* %own to ulong
                %b = cast sbyte* %up to ulong
                store ulong %a, ulong* %probe0
                store ulong %b, ulong* %probe1
                ret void
        }
        int %main() {
        entry:
                call void %inner()
                %a = load ulong* %probe0
                %b = load ulong* %probe1
                %same = seteq ulong %a, %b
                %r = cast bool %same to int
                ret int %r
        }
        """)
        result = interp.run("main")
        assert result.return_value == 0  # inner != main
        from repro.ir import types

        inner_address = interp.image.address_of("inner")
        probe0 = interp.memory.read_typed(
            interp.image.address_of("probe0"), types.ULONG)
        assert probe0 == inner_address
