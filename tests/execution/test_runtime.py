"""Runtime library tests: output, allocation, pools, process control."""

import pytest

from repro.execution import ExecutionTrap, Interpreter
from repro.execution.memory import Memory
from repro.execution.runtime import (
    RUNTIME_SIGNATURES,
    RuntimeLibrary,
    is_runtime_name,
)
from repro.ir.types import TargetData
from repro.minic import compile_source


def _runtime():
    memory = Memory(TargetData(8))
    return RuntimeLibrary(memory), memory


class TestOutput:
    def test_print_formats(self):
        runtime, memory = _runtime()
        runtime.call("print_int", [-42])
        runtime.call("print_char", [32])
        runtime.call("print_double", [2.5])
        runtime.call("print_newline", [])
        assert runtime.output_text() == "-42 2.500000\n"

    def test_print_str_reads_simulated_memory(self):
        runtime, memory = _runtime()
        address = memory.malloc(16)
        memory.write_bytes(address, b"hey\x00")
        runtime.call("print_str", [address])
        assert runtime.output_text() == "hey"

    def test_unknown_external_traps(self):
        runtime, _memory = _runtime()
        with pytest.raises(ExecutionTrap):
            runtime.call("print_int", [1]) or runtime.call("nope", [])


class TestAllocationCounters:
    def test_malloc_free_counted(self):
        runtime, _memory = _runtime()
        address = runtime.call("malloc", [64])
        runtime.call("free", [address])
        assert runtime.malloc_calls == 1
        assert runtime.free_calls == 1


class TestPoolRuntime:
    def test_pool_lifecycle(self):
        runtime, memory = _runtime()
        descriptor = memory.malloc(64)
        runtime.call("poolinit", [descriptor, 16])
        chunks = [runtime.call("poolalloc", [descriptor, 16])
                  for _ in range(10)]
        assert len(set(chunks)) == 10
        for chunk in chunks:
            memory.write_typed(chunk, TargetData(8).pointer_int_type, 1)
        runtime.call("poolfree", [descriptor, chunks[0]])
        runtime.call("pooldestroy", [descriptor])
        assert runtime.pool_allocs == 10
        assert runtime.pool_slab_mallocs == 1  # all fit one slab

    def test_pool_grows_new_slabs(self):
        runtime, memory = _runtime()
        descriptor = memory.malloc(64)
        runtime.call("poolinit", [descriptor, 16])
        for _ in range(5):
            runtime.call("poolalloc", [descriptor, 2048])
        assert runtime.pool_slab_mallocs >= 3

    def test_uninitialized_pool_traps(self):
        runtime, memory = _runtime()
        with pytest.raises(ExecutionTrap):
            runtime.call("poolalloc", [12345, 16])

    def test_double_destroy_tolerated(self):
        runtime, memory = _runtime()
        descriptor = memory.malloc(64)
        runtime.call("poolinit", [descriptor, 16])
        runtime.call("pooldestroy", [descriptor])
        runtime.call("pooldestroy", [descriptor])


class TestSignatures:
    def test_every_signature_declared(self):
        for name, signature in RUNTIME_SIGNATURES.items():
            assert is_runtime_name(name)
            assert signature.is_function

    def test_clock_ticks_is_deterministic(self):
        source = """
        int main() {
            ulong a = clock_ticks();
            int i;
            int x = 0;
            for (i = 0; i < 10; i++) x += i;
            ulong b = clock_ticks();
            return (b > a) ? x : -1;
        }
        """
        module = compile_source(source, "clock")
        first = Interpreter(module).run("main")
        second = Interpreter(module).run("main")
        assert first.return_value == second.return_value == 45
        assert first.steps == second.steps
