"""Differential equivalence: the fast engine against the oracle.

The fast engine (:mod:`repro.execution.fastpath`) must be
observationally identical to the reference interpreter — same return
value, same output, same exit status, same architectural step count,
and the same trap behaviour.  This module drives every benchsuite
program plus hand-written programs exercising the exception model
(masked/unmasked faults, trap handlers, register snapshots, unwind,
self-modifying code) through both engines and compares outcomes.

Every ``run_both`` scenario additionally runs a third configuration —
the fast engine with the tier-2 translator *forced* (promotion
threshold 0) — so the whole differential corpus doubles as the tier-2
conformance suite: traps delivered inside compiled code, deopt, SMC
invalidation, unwind pinning, and register snapshots all compare
against the oracle byte-for-byte.

A fourth configuration forces the superblock+OSR mode on top: trace-
guided superblock emission with aggressively low thresholds (so the
profiling stage, the mid-activation OSR upgrade, side-exit deopt, and
tier-1 on-stack replacement all fire inside even small scenarios),
compared against the oracle exactly like the others.

A fifth configuration forces *asynchronous* compilation on top of
that: promotions submit background jobs and the engine swaps units in
at call boundaries and back-edge checks, with the escalation bar set
low enough that deferred builds, mid-run swap-ins, and inline
escalations all occur inside small scenarios.  Whatever mix of tier-1,
deferred, escalated, and OSR execution a timing happens to produce,
the observations must still match the oracle byte for byte.

Two more configurations force tier 3 (hosted native execution) on
each simulated back end: every function is translated to x86 or SPARC
machine code on its first lookup and run by the hosted executor, with
traps delivered mid-native-frame deopting back to tier 1.  Functions
the hosted lowering cannot take (invoke/unwind bodies) pin and fall
back down the ladder, which is itself part of the contract under
test: the observations must stay identical either way.  These
configurations execute under the default block-compiled
direct-threaded backend; a dedicated workload parity test
additionally forces the one-instruction step oracle on both targets
and requires identical observations from the two backends.
"""

import pytest

from repro.asm import parse_module
from repro.benchsuite import SUITE_ORDER, load_workload
from repro.execution import (
    DecodeCache,
    ExecutionTrap,
    FastInterpreter,
    Interpreter,
    StepLimitExceeded,
)
from repro.execution.fastpath import FUSE_MIN
from repro.ir import verify_module
from repro.llee.tracecache import SoftwareTraceCache
from repro.minic import compile_source

SCALE = 0.05

ENGINES = ("reference", "fast")

#: (label, engine, tier2 mode) triples every scenario runs under; the
#: mode is False (off), True (forced plain tier 2), "superblock"
#: (forced tier 2 with superblocks and OSR), or "async" (superblocks
#: plus background compilation with deterministic-outcome swap-in).
CONFIGS = (
    ("reference", "reference", False),
    ("fast", "fast", False),
    ("tier2", "fast", True),
    ("superblock", "fast", "superblock"),
    ("async", "fast", "async"),
    ("tier3-x86", "fast", "tier3-x86"),
    ("tier3-sparc", "fast", "tier3-sparc"),
)


def _superblock_cache(module):
    """A Tier2Cache with superblocks+OSR forced hard enough that the
    profiling stage, mid-activation upgrades, and tier-1 OSR all fire
    inside small test scenarios."""
    from repro.execution.tier2 import Tier2Cache

    return Tier2Cache(module, module.target_data, threshold=0,
                      superblocks=True, osr=True,
                      superblock_threshold=8, osr_step_threshold=50)


def _async_cache(module):
    """The superblock configuration with background compilation on and
    the escalation bar low, so deferred builds, swap-ins, and inline
    escalations all happen inside small test scenarios."""
    from repro.execution.tier2 import Tier2Cache

    return Tier2Cache(module, module.target_data, threshold=0,
                      superblocks=True, osr=True,
                      superblock_threshold=8, osr_step_threshold=50,
                      async_compile=True, escalate_step_threshold=64)


def _tier3_cache(module, target_name, backend="threaded"):
    """A Tier2Cache with tier-3 promotion forced: every function is
    translated to native code on first lookup and run by the hosted
    executor (unsupported bodies pin and fall back to tier 2/1).
    ``backend`` picks the hosted execution backend — the
    block-compiled threaded units (default) or the one-instruction
    step oracle they are pinned to."""
    from repro.execution.tier2 import Tier2Cache

    return Tier2Cache(module, module.target_data, threshold=0,
                      tier3=True, tier3_threshold=0,
                      tier3_target=target_name,
                      tier3_backend=backend)


def _make_interpreter(module, engine, tier2, privileged=False,
                      sanitize=False):
    if tier2 == "superblock":
        cache = _superblock_cache(module)
    elif tier2 == "async":
        cache = _async_cache(module)
    elif tier2 in ("tier3-x86", "tier3-sparc"):
        cache = _tier3_cache(module, tier2.split("-", 1)[1])
    else:
        return Interpreter(module, privileged=privileged, engine=engine,
                           sanitize=sanitize, tier2=tier2,
                           tier2_threshold=0 if tier2 else None)
    return Interpreter(module, privileged=privileged, engine=engine,
                       sanitize=sanitize, tier2=cache)


def _close_tier2(interpreter, cache_mode):
    """Stop a private compile service so workers never outlive their
    scenario (a no-op for synchronous configurations)."""
    if cache_mode == "async" and interpreter.tier2 is not None:
        interpreter.tier2.close()


def _outcome(module, entry="main", args=(), privileged=False,
             engine="reference", tier2=False):
    """Run and capture (kind, ...) so trap runs compare structurally."""
    interpreter = _make_interpreter(module, engine, tier2,
                                    privileged=privileged)
    try:
        result = interpreter.run(entry, list(args))
    except ExecutionTrap as trap:
        return ("trap", trap.trap_number, interpreter.steps)
    finally:
        _close_tier2(interpreter, tier2)
    return ("ok", result.return_value, result.output, result.steps,
            result.exit_status)


def run_both(source, entry="main", args=(), privileged=False):
    """Assemble *source* per configuration (reference, fast, and
    tier-2-forced fast) and assert identical outcomes."""
    outcomes = {}
    for label, engine, tier2 in CONFIGS:
        module = parse_module(source)
        verify_module(module)
        outcomes[label] = _outcome(module, entry, args, privileged,
                                   engine, tier2)
    assert outcomes["reference"] == outcomes["fast"]
    assert outcomes["reference"] == outcomes["tier2"]
    assert outcomes["reference"] == outcomes["superblock"]
    assert outcomes["reference"] == outcomes["async"]
    assert outcomes["reference"] == outcomes["tier3-x86"]
    assert outcomes["reference"] == outcomes["tier3-sparc"]
    return outcomes["reference"]


def _outcome_sanitized(module, engine, tier2=False):
    """Sanitized outcome, with the full fault report in the tuple so a
    differing diagnosis (not just a differing trap number) fails."""
    interpreter = _make_interpreter(module, engine, tier2,
                                    sanitize=True)
    if tier2:
        # Documented behaviour: llva-san pins execution to tier 1 —
        # shadow-memory checking needs per-instruction sites.
        assert interpreter.tier2 is None
    try:
        result = interpreter.run("main", [])
    except ExecutionTrap as trap:
        return ("trap", trap.trap_number, trap.detail, interpreter.steps)
    return ("ok", result.return_value, result.output, result.steps,
            result.exit_status)


def run_both_sanitized(source):
    """Run under llva-san on both engines; reports must be identical.
    The tier-2 configuration participates too, verifying the sanitizer
    pins it back to tier 1 without changing observations."""
    outcomes = {}
    for label, engine, tier2 in CONFIGS:
        module = parse_module(source)
        verify_module(module)
        outcomes[label] = _outcome_sanitized(module, engine, tier2)
    assert outcomes["reference"] == outcomes["fast"]
    assert outcomes["reference"] == outcomes["tier2"]
    assert outcomes["reference"] == outcomes["superblock"]
    assert outcomes["reference"] == outcomes["async"]
    assert outcomes["reference"] == outcomes["tier3-x86"]
    assert outcomes["reference"] == outcomes["tier3-sparc"]
    return outcomes["reference"]


class TestBenchsuiteDifferential:
    """Every Table 2 workload, both engines, identical observations."""

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_workload(self, name):
        workload = load_workload(name, SCALE)
        # Both engines share one compiled module: nothing in the suite
        # self-modifies, and each interpreter builds its own memory.
        module = compile_source(workload.source, name,
                                optimization_level=2)
        reference = _outcome(module, engine="reference")
        fast = _outcome(module, engine="fast")
        assert reference == fast
        assert reference[0] == "ok"

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_workload_tier2_forced(self, name):
        """All 17 programs, tier-2 promotion forced (threshold 0),
        against the oracle: identical observations, every architectural
        step executed by compiled code, nothing pinned."""
        workload = load_workload(name, SCALE)
        module = compile_source(workload.source, name,
                                optimization_level=2)
        reference = _outcome(module, engine="reference")
        interpreter = Interpreter(module, engine="fast", tier2=True,
                                  tier2_threshold=0)
        result = interpreter.run("main", [])
        tiered = ("ok", result.return_value, result.output,
                  result.steps, result.exit_status)
        assert reference == tiered
        assert interpreter.tier2_steps == result.steps
        assert interpreter.tier2.stats.pins == 0
        assert interpreter.tier2.stats.functions_compiled > 0

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_workload_superblock_osr_forced(self, name):
        """All 17 programs again with superblocks and OSR forced at
        low thresholds: the profiling stage, mid-activation upgrades,
        side exits, and tier-1 OSR all run against the oracle."""
        workload = load_workload(name, SCALE)
        module = compile_source(workload.source, name,
                                optimization_level=2)
        reference = _outcome(module, engine="reference")
        cache = _superblock_cache(module)
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        result = interpreter.run("main", [])
        forced = ("ok", result.return_value, result.output,
                  result.steps, result.exit_status)
        assert reference == forced
        assert interpreter.tier2_steps == result.steps
        assert cache.stats.pins == 0

    @pytest.mark.parametrize("target", ("x86", "sparc"))
    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_workload_tier3_forced(self, name, target):
        """All 17 programs with tier-3 promotion forced (threshold 0)
        on each simulated back end: every supported function runs as
        native code through the hosted executor, against the oracle.
        Workloads whose functions all lower must execute every
        architectural step in tier 3 with nothing pinned or deopted."""
        workload = load_workload(name, SCALE)
        module = compile_source(workload.source, name,
                                optimization_level=2)
        reference = _outcome(module, engine="reference")
        cache = _tier3_cache(module, target)
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        result = interpreter.run("main", [])
        forced = ("ok", result.return_value, result.output,
                  result.steps, result.exit_status)
        assert reference == forced
        assert cache.stats.tier3_compiled > 0
        if cache.stats.tier3_pins == 0:
            assert interpreter.tier3_steps == result.steps
            assert cache.stats.tier3_deopts == 0

    @pytest.mark.parametrize("target", ("x86", "sparc"))
    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_workload_tier3_backend_parity(self, name, target):
        """All 17 programs on each back end under BOTH tier-3
        execution backends: the block-compiled threaded units and the
        one-instruction step oracle must produce identical
        observations — and both must match the reference engine.  On
        suite code nothing may degrade: every unit the threaded
        configuration builds must actually run threaded."""
        workload = load_workload(name, SCALE)
        module = compile_source(workload.source, name,
                                optimization_level=2)
        reference = _outcome(module, engine="reference")
        outcomes = {}
        for backend in ("threaded", "step"):
            cache = _tier3_cache(module, target, backend=backend)
            interpreter = Interpreter(module, engine="fast",
                                      tier2=cache)
            result = interpreter.run("main", [])
            outcomes[backend] = ("ok", result.return_value,
                                 result.output, result.steps,
                                 result.exit_status)
            assert cache.stats.tier3_degraded == 0
            if backend == "threaded":
                assert cache.stats.tier3_step_units == 0
                assert cache.stats.tier3_threaded_units \
                    == cache.stats.tier3_compiled
            else:
                assert cache.stats.tier3_threaded_units == 0
        assert outcomes["threaded"] == reference
        assert outcomes["step"] == reference

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_workload_async_compile_forced(self, name):
        """All 17 programs with background compilation forced on top
        of superblocks+OSR: deferred builds, safe-point swap-ins, and
        inline escalations all run against the oracle, and a drain
        after the run must leave nothing pending."""
        workload = load_workload(name, SCALE)
        module = compile_source(workload.source, name,
                                optimization_level=2)
        reference = _outcome(module, engine="reference")
        cache = _async_cache(module)
        try:
            interpreter = Interpreter(module, engine="fast", tier2=cache)
            result = interpreter.run("main", [])
            forced = ("ok", result.return_value, result.output,
                      result.steps, result.exit_status)
            assert reference == forced
            assert cache.stats.pins == 0
            assert cache.drain(timeout=30.0)
            assert cache.pending_compiles == 0
        finally:
            cache.close()


class TestExceptionModelDifferential:
    def test_masked_division_yields_zero(self):
        assert run_both("""
        int %main() {
        entry:
                %r = div int 5, 0 !ee(false)
                ret int %r
        }
        """)[1] == 0

    def test_unmasked_division_traps(self):
        outcome = run_both("""
        int %main() {
        entry:
                %r = div int 5, 0
                ret int %r
        }
        """)
        assert outcome[0] == "trap"

    def test_masked_load_fault_inside_fused_run(self):
        # The faulting load sits in a straight-line run long enough to
        # fuse; the masked fault must resume at the next fused op.
        outcome = run_both("""
        int %main() {
        entry:
                %p = cast ulong 64 to int*
                %a = add int 3, 4
                %v = load int* %p !ee(false)
                %b = add int %a, %v
                %c = mul int %b, 10
                ret int %c
        }
        """)
        assert outcome[1] == 70

    def test_overflow_wraps_silently_by_default(self):
        assert run_both("""
        int %main() {
        entry:
                %r = add int 2147483647, 1
                ret int %r
        }
        """)[1] == -2147483648

    def test_overflow_traps_when_enabled(self):
        assert run_both("""
        int %main() {
        entry:
                %r = add int 2147483647, 1 !ee(true)
                ret int %r
        }
        """)[0] == "trap"

    def test_dynamic_masking_intrinsic(self):
        assert run_both("""
        declare void %llva.exceptions.set(bool)
        int %main() {
        entry:
                call void %llva.exceptions.set(bool false)
                %r = div int 5, 0
                call void %llva.exceptions.set(bool true)
                ret int %r
        }
        """)[1] == 0

    def test_trap_handler_runs_and_resumes(self):
        assert run_both("""
        %log = global int 0
        declare void %llva.trap.register(uint, sbyte*)
        void %handler(uint %trapno, sbyte* %info) {
        entry:
                %old = load int* %log
                %n = cast uint %trapno to int
                %new = add int %old, %n
                store int %new, int* %log
                ret void
        }
        int %main() {
        entry:
                %h = cast void (uint, sbyte*)* %handler to sbyte*
                call void %llva.trap.register(uint 2, sbyte* %h)
                %q = div int 9, 0
                %v = load int* %log
                %r = add int %v, %q
                ret int %r
        }
        """, privileged=True)[1] == 2

    def test_trap_handler_register_snapshot(self):
        # The handler observes the faulting frame through the V-ABI
        # register numbering; slot numbering must match the oracle's.
        assert run_both("""
        %seen_arg = global long 0
        %seen_tmp = global long 0
        declare void %llva.trap.register(uint, sbyte*)
        declare ulong %llva.register.read(uint)
        void %handler(uint %trapno, sbyte* %info) {
        entry:
                %r0 = call ulong %llva.register.read(uint 0)
                %v0 = cast ulong %r0 to long
                store long %v0, long* %seen_arg
                %r1 = call ulong %llva.register.read(uint 1)
                %v1 = cast ulong %r1 to long
                store long %v1, long* %seen_tmp
                ret void
        }
        int %faulty(int %n) {
        entry:
                %doubled = add int %n, %n
                %q = div int %doubled, 0
                ret int %q
        }
        int %main() {
        entry:
                %h = cast void (uint, sbyte*)* %handler to sbyte*
                call void %llva.trap.register(uint 2, sbyte* %h)
                %r = call int %faulty(int 21)
                %a = load long* %seen_arg
                %t = load long* %seen_tmp
                %a32 = cast long %a to int
                %t32 = cast long %t to int
                %combined = mul int %a32, 1000
                %result = add int %combined, %t32
                ret int %result
        }
        """, privileged=True)[1] == 21 * 1000 + 42

    def test_software_trap_raise_payload(self):
        assert run_both("""
        %seen = global int 0
        declare void %llva.trap.register(uint, sbyte*)
        declare void %llva.trap.raise(uint, sbyte*)
        void %handler(uint %trapno, sbyte* %info) {
        entry:
                %v = cast sbyte* %info to ulong
                %i = cast ulong %v to int
                store int %i, int* %seen
                ret void
        }
        int %main() {
        entry:
                %h = cast void (uint, sbyte*)* %handler to sbyte*
                call void %llva.trap.register(uint 6, sbyte* %h)
                %payload = cast ulong 777 to sbyte*
                call void %llva.trap.raise(uint 6, sbyte* %payload)
                %r = load int* %seen
                ret int %r
        }
        """, privileged=True)[1] == 777

    def test_privilege_violation_parity(self):
        assert run_both("""
        declare void %llva.trap.register(uint, sbyte*)
        int %main() {
        entry:
                %z = cast ulong 0 to sbyte*
                call void %llva.trap.register(uint 2, sbyte* %z)
                ret int 0
        }
        """, privileged=False)[0] == "trap"


class TestSanitizerDifferential:
    """llva-san faults must be byte-identical across engines: same trap
    number, same step count, same rendered report (sites included)."""

    HEAP_DECLS = """
    declare sbyte* %malloc(uint)
    declare void %free(sbyte*)
    """

    def test_use_after_free(self):
        outcome = run_both_sanitized(self.HEAP_DECLS + """
        int %main() {
        entry:
                %p = call sbyte* %malloc(uint 32)
                call void %free(sbyte* %p)
                %v = load sbyte* %p
                %r = cast sbyte %v to int
                ret int %r
        }
        """)
        assert outcome[0] == "trap"
        detail = outcome[2]
        assert detail.startswith("heap-use-after-free: read of 1 byte")
        assert "offset 0 into 32-byte block" in detail
        assert "at %main:entry:#2 (load)" in detail
        assert "allocated at %main:entry:#0 (call)" in detail
        assert "freed at %main:entry:#1 (call)" in detail

    def test_heap_buffer_overflow(self):
        outcome = run_both_sanitized(self.HEAP_DECLS + """
        int %main() {
        entry:
                %p = call sbyte* %malloc(uint 16)
                %ip = cast sbyte* %p to int*
                %q = getelementptr int* %ip, long 4
                %v = load int* %q
                ret int %v
        }
        """)
        assert outcome[0] == "trap"
        detail = outcome[2]
        assert detail.startswith("heap-buffer-overflow: read of 4 bytes")
        assert "offset 16 into 16-byte block" in detail
        assert "at %main:entry:#3 (load)" in detail
        assert "allocated at %main:entry:#0 (call)" in detail

    def test_double_free(self):
        # `call` is masked by default (not in DEFAULT_EXCEPTIONS_ENABLED)
        # — the sanitizer fault must surface anyway, on both engines.
        outcome = run_both_sanitized(self.HEAP_DECLS + """
        int %main() {
        entry:
                %p = call sbyte* %malloc(uint 8)
                call void %free(sbyte* %p)
                call void %free(sbyte* %p)
                ret int 0
        }
        """)
        assert outcome[0] == "trap"
        detail = outcome[2]
        assert detail.startswith("double-free: free of 0x")
        assert "(8-byte block) at %main:entry:#2 (call)" in detail
        assert "freed at %main:entry:#1 (call)" in detail

    def test_below_stack_pointer_access(self):
        outcome = run_both_sanitized("""
        int %main() {
        entry:
                %a = alloca int
                store int 7, int* %a
                %pl = cast int* %a to long
                %ql = sub long %pl, 64
                %q = cast long %ql to int*
                %v = load int* %q
                ret int %v
        }
        """)
        assert outcome[0] == "trap"
        detail = outcome[2]
        assert detail.startswith("stack-below-sp: read of 4 bytes")
        assert "below the live stack pointer" in detail
        assert "at %main:entry:#5 (load)" in detail

    def test_fault_inside_fused_run_names_right_site(self):
        # The faulting load sits in a straight-line run long enough to
        # fuse in the fast engine; the decode-time site instrumentation
        # must still report the individual instruction.
        outcome = run_both_sanitized(self.HEAP_DECLS + """
        int %main() {
        entry:
                %p = call sbyte* %malloc(uint 16)
                call void %free(sbyte* %p)
                %a = add int 1, 2
                %b = add int %a, 3
                %c = add int %b, 4
                %d = add int %c, 5
                %v = load sbyte* %p
                %w = cast sbyte %v to int
                %r = add int %d, %w
                ret int %r
        }
        """)
        assert outcome[0] == "trap"
        assert "at %main:entry:#6 (load)" in outcome[2]

    def test_clean_program_identical_and_faultless(self):
        outcome = run_both_sanitized(self.HEAP_DECLS + """
        int %main() {
        entry:
                %p = call sbyte* %malloc(uint 32)
                %ip = cast sbyte* %p to int*
                store int 41, int* %ip
                %v = load int* %ip
                call void %free(sbyte* %p)
                %r = add int %v, 1
                ret int %r
        }
        """)
        assert outcome[0] == "ok"
        assert outcome[1] == 42

    @pytest.mark.parametrize("name", ["ft", "ks", "anagram"])
    def test_benchsuite_clean_under_sanitizer(self, name):
        workload = load_workload(name, SCALE)
        module = compile_source(workload.source, name,
                                optimization_level=2)
        outcomes = {}
        for engine in ENGINES:
            interpreter = Interpreter(module, engine=engine,
                                      sanitize=True)
            result = interpreter.run("main", [])
            assert interpreter.memory.san.fault_count == 0
            outcomes[engine] = (result.return_value, result.output,
                                result.steps, result.exit_status)
        assert outcomes["reference"] == outcomes["fast"]


class TestUnwindDifferential:
    INVOKE = """
    int %may_throw(int %x) {
    entry:
            %bad = setgt int %x, 10
            br bool %bad, label %throw, label %fine
    throw:
            unwind
    fine:
            %r = mul int %x, 2
            ret int %r
    }
    int %middle(int %x) {
    entry:
            %r = call int %may_throw(int %x)
            %s = add int %r, 1
            ret int %s
    }
    int %main(int %x) {
    entry:
            %v = invoke int %middle(int %x) to label %ok
                  unwind label %handler
    ok:
            ret int %v
    handler:
            ret int -1
    }
    """

    def test_invoke_normal_path(self):
        assert run_both(self.INVOKE, args=[4])[1] == 9

    def test_unwind_skips_intermediate_frames(self):
        assert run_both(self.INVOKE, args=[50])[1] == -1

    def test_unwind_without_invoke_traps(self):
        assert run_both("""
        int %main() {
        entry:
                unwind
        }
        """)[0] == "trap"

    def test_nested_invokes_catch_at_nearest(self):
        assert run_both("""
        int %thrower() {
        entry:
                unwind
        }
        int %inner() {
        entry:
                %v = invoke int %thrower() to label %ok
                      unwind label %caught
        ok:
                ret int %v
        caught:
                ret int 100
        }
        int %main() {
        entry:
                %v = invoke int %inner() to label %ok
                      unwind label %outer_caught
        ok:
                ret int %v
        outer_caught:
                ret int 200
        }
        """)[1] == 100


class TestSelfModifyingCodeDifferential:
    def test_future_invocations_see_new_body(self):
        assert run_both("""
        declare void %llva.smc.replace(sbyte*, sbyte*)
        int %f(int %x) {
        entry:
                %r = add int %x, 1
                ret int %r
        }
        int %g(int %x) {
        entry:
                %r = mul int %x, 100
                ret int %r
        }
        int %main() {
        entry:
                %before = call int %f(int 5)
                %old = cast int (int)* %f to sbyte*
                %new = cast int (int)* %g to sbyte*
                call void %llva.smc.replace(sbyte* %old, sbyte* %new)
                %after = call int %f(int 5)
                %r = sub int %after, %before
                ret int %r
        }
        """)[1] == 494

    def test_active_invocation_keeps_old_body(self):
        assert run_both("""
        declare void %llva.smc.replace(sbyte*, sbyte*)
        int %target(int %depth) {
        entry:
                %stop = seteq int %depth, 0
                br bool %stop, label %leaf, label %recurse
        leaf:
                ret int 1
        recurse:
                %is_first = seteq int %depth, 3
                br bool %is_first, label %patch, label %continue
        patch:
                %old = cast int (int)* %target to sbyte*
                %new = cast int (int)* %replacement to sbyte*
                call void %llva.smc.replace(sbyte* %old, sbyte* %new)
                br label %continue
        continue:
                %m = sub int %depth, 1
                %r = call int %target(int %m)
                %s = add int %r, 10
                ret int %s
        }
        int %replacement(int %depth) {
        entry:
                ret int 1000
        }
        int %main() {
        entry:
                %r = call int %target(int 3)
                ret int %r
        }
        """)[1] == 1010


class TestEngineSelection:
    SRC = """
    int %main() {
    entry:
            br label %loop
    loop:
            %i = phi int [0, %entry], [%n, %loop]
            %a = mul int %i, 3
            %b = add int %a, 1
            %s = sub int %b, %a
            %n = add int %i, %s
            %done = setge int %n, 50
            br bool %done, label %exit, label %loop
    exit:
            ret int %n
    }
    """

    def _module(self):
        module = parse_module(self.SRC)
        verify_module(module)
        return module

    def test_constructor_dispatch(self):
        assert type(Interpreter(self._module())) is Interpreter
        fast = Interpreter(self._module(), engine="fast")
        assert isinstance(fast, FastInterpreter)
        assert fast.engine == "fast"
        assert Interpreter(self._module()).engine == "reference"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Interpreter(self._module(), engine="turbo")

    def test_fused_runs_counted(self):
        fast = FastInterpreter(self._module())
        fast.run("main")
        assert fast.fused_runs >= 50 // FUSE_MIN
        assert fast.fused_instructions >= fast.fused_runs * FUSE_MIN

    def test_step_limit_enforced(self):
        with pytest.raises(StepLimitExceeded):
            FastInterpreter(self._module(), max_steps=20).run("main")

    def test_decode_cache_shared_across_runs(self):
        module = self._module()
        cache = DecodeCache(module.target_data)
        FastInterpreter(module, decode_cache=cache).run("main")
        assert cache.stats.functions_decoded == 1
        FastInterpreter(module, decode_cache=cache).run("main")
        assert cache.stats.functions_decoded == 1  # reused, not re-decoded

    def test_smc_invalidates_decode_cache(self):
        source = """
        declare void %llva.smc.replace(sbyte*, sbyte*)
        int %f(int %x) {
        entry:
                %r = add int %x, 1
                ret int %r
        }
        int %g(int %x) {
        entry:
                %r = mul int %x, 100
                ret int %r
        }
        int %main() {
        entry:
                %before = call int %f(int 5)
                %old = cast int (int)* %f to sbyte*
                %new = cast int (int)* %g to sbyte*
                call void %llva.smc.replace(sbyte* %old, sbyte* %new)
                %after = call int %f(int 5)
                %r = sub int %after, %before
                ret int %r
        }
        """
        module = parse_module(source)
        verify_module(module)
        cache = DecodeCache(module.target_data)
        result = FastInterpreter(module, decode_cache=cache).run("main")
        assert result.return_value == 494
        assert cache.stats.invalidations == 1

    def test_trace_cache_relayout_invalidates_decode(self):
        module = self._module()
        cache = DecodeCache(module.target_data)
        FastInterpreter(module, decode_cache=cache).run("main")
        trace_cache = SoftwareTraceCache(module)
        trace_cache.relayout_listeners.append(cache.listener())
        function = module.get_function("main")
        invalidated = []
        trace_cache.relayout_listeners.append(invalidated.append)
        # Force a relayout by hand: reverse the non-entry blocks.
        blocks = function.blocks
        function.blocks = [blocks[0]] + list(reversed(blocks[1:]))
        for listener in trace_cache.relayout_listeners:
            listener(function)
        assert invalidated == [function]
        assert cache.stats.invalidations == 1


class TestTier2Behaviour:
    """Tier-2 mechanics: promotion policy, deopt, pinning, SMC."""

    CALLEE_LOOP = """
    int %work(int %n) {
    entry:
            br label %loop
    loop:
            %i = phi int [0, %entry], [%next, %loop]
            %next = add int %i, 1
            %done = setge int %next, %n
            br bool %done, label %exit, label %loop
    exit:
            ret int %next
    }
    int %main() {
    entry:
            br label %loop
    loop:
            %i = phi int [0, %entry], [%next, %loop]
            %v = call int %work(int 5)
            %next = add int %i, %v
            %done = setge int %next, 100
            br bool %done, label %exit, label %loop
    exit:
            ret int %next
    }
    """

    def _module(self, source=None):
        module = parse_module(source or self.CALLEE_LOOP)
        verify_module(module)
        return module

    def test_promotion_after_threshold_invocations(self):
        module = self._module()
        interpreter = Interpreter(module, engine="fast", tier2=True,
                                  tier2_threshold=5)
        result = interpreter.run("main", [])
        assert result.return_value == 100
        # %work runs 20 times; it must cross the threshold and finish
        # the run in compiled form, with tier-1 covering the first 5.
        assert interpreter.tier2.stats.functions_compiled >= 1
        assert 0 < interpreter.tier2_steps < result.steps
        assert interpreter.tier2_calls >= 1

    def test_threshold_zero_promotes_first_call(self):
        module = self._module()
        interpreter = Interpreter(module, engine="fast", tier2=True,
                                  tier2_threshold=0)
        result = interpreter.run("main", [])
        assert result.return_value == 100
        assert interpreter.tier2_steps == result.steps

    def test_tier2_off_by_default(self):
        module = self._module()
        interpreter = Interpreter(module, engine="fast")
        result = interpreter.run("main", [])
        assert result.return_value == 100
        assert interpreter.tier2 is None
        assert interpreter.tier2_steps == 0

    def test_step_credit_promotes_hot_loop(self):
        # One long-running invocation accumulates enough architectural
        # steps to promote even though the invocation count stays 1.
        from repro.execution.tier2 import Tier2Cache

        source = """
        int %hot(int %n) {
        entry:
                br label %loop
        loop:
                %i = phi int [0, %entry], [%next, %loop]
                %next = add int %i, 1
                %done = setge int %next, %n
                br bool %done, label %exit, label %loop
        exit:
                ret int %next
        }
        int %main() {
        entry:
                %a = call int %hot(int 2000)
                %b = call int %hot(int 2000)
                %r = add int %a, %b
                ret int %r
        }
        """
        module = self._module(source)
        cache = Tier2Cache(module, module.target_data,
                           threshold=1000, step_threshold=500)
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        result = interpreter.run("main", [])
        assert result.return_value == 4000
        assert cache.stats.promotions_by_steps >= 1
        assert interpreter.tier2_steps > 0

    def test_profile_guided_priming(self):
        # The offline reoptimization loop: a collected profile seeds
        # the promotion counters, so a profiled-hot function compiles
        # on its first call of the next run.
        from repro.llee.profile import instrument_module, read_profile

        module = self._module()
        profile_map = instrument_module(module)
        profiling = Interpreter(module, engine="fast")
        profiling.run("main", [])
        profile = read_profile(profile_map, profiling)
        assert profile.function_entry_count(
            module.get_function("work")) >= 20

        cache = __import__(
            "repro.execution.tier2", fromlist=["Tier2Cache"]
        ).Tier2Cache(module, module.target_data, threshold=10)
        cache.prime_from_profile(profile)
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        result = interpreter.run("main", [])
        assert result.return_value == 100
        # %work was primed past the threshold, so every one of its 20
        # invocations ran tier 2; %main (one profiled entry) stays
        # tier 1 — priming is per-function, not per-module.
        assert interpreter.tier2_calls == 20
        assert 0 < interpreter.tier2_steps < result.steps
        assert cache.stats.functions_compiled == 1

    def test_trap_inside_tier2_deopts_function(self):
        source = """
        %log = global int 0
        declare void %llva.trap.register(uint, sbyte*)
        void %handler(uint %trapno, sbyte* %info) {
        entry:
                %old = load int* %log
                %n = cast uint %trapno to int
                %new = add int %old, %n
                store int %new, int* %log
                ret void
        }
        int %faulty(int %x) {
        entry:
                %q = div int %x, 0
                ret int %q
        }
        int %main() {
        entry:
                %h = cast void (uint, sbyte*)* %handler to sbyte*
                call void %llva.trap.register(uint 2, sbyte* %h)
                %a = call int %faulty(int 9)
                %b = call int %faulty(int 7)
                %v = load int* %log
                %r = add int %v, %a
                %s = add int %r, %b
                ret int %s
        }
        """
        ref = _outcome(self._module(source), privileged=True)
        module = self._module(source)
        interpreter = Interpreter(module, engine="fast",
                                  privileged=True,
                                  tier2=True, tier2_threshold=0)
        result = interpreter.run("main", [])
        assert ("ok", result.return_value, result.output, result.steps,
                result.exit_status) == ref
        # The first trap delivered mid-tier-2 demotes %faulty; the
        # second call runs tier 1 and the answers stay identical.
        faulty = module.get_function("faulty")
        assert interpreter.tier2.stats.deopts == 1
        assert "deopt" in interpreter.tier2.pinned_reason(faulty)

    def test_unwind_body_pins_to_tier1(self):
        module = self._module(TestUnwindDifferential.INVOKE)
        interpreter = Interpreter(module, engine="fast", tier2=True,
                                  tier2_threshold=0)
        result = interpreter.run("main", [50])
        assert result.return_value == -1
        assert interpreter.tier2.stats.pins >= 1
        reason = interpreter.tier2.pinned_reason(
            module.get_function("main"))
        assert reason is not None

    def test_smc_invalidates_compiled_unit(self):
        source = """
        declare void %llva.smc.replace(sbyte*, sbyte*)
        int %f(int %x) {
        entry:
                %r = add int %x, 1
                ret int %r
        }
        int %g(int %x) {
        entry:
                %r = mul int %x, 100
                ret int %r
        }
        int %main() {
        entry:
                %before = call int %f(int 5)
                %old = cast int (int)* %f to sbyte*
                %new = cast int (int)* %g to sbyte*
                call void %llva.smc.replace(sbyte* %old, sbyte* %new)
                %after = call int %f(int 5)
                %r = sub int %after, %before
                ret int %r
        }
        """
        module = self._module(source)
        interpreter = Interpreter(module, engine="fast", tier2=True,
                                  tier2_threshold=0)
        result = interpreter.run("main", [])
        assert result.return_value == 494
        assert interpreter.tier2.stats.invalidations >= 1

    def test_reference_engine_rejects_tier2(self):
        with pytest.raises(ValueError):
            Interpreter(self._module(), engine="reference", tier2=True)

    def test_sanitize_disables_tier2(self):
        interpreter = Interpreter(self._module(), engine="fast",
                                  sanitize=True, tier2=True)
        assert interpreter.tier2 is None

    def test_register_snapshot_inside_tier2_frame(self):
        # A trap fired while a tier-2 generator is suspended must
        # expose the same V-ABI register numbering as the oracle.
        source = """
        %seen = global long 0
        declare void %llva.trap.register(uint, sbyte*)
        declare ulong %llva.register.read(uint)
        void %handler(uint %trapno, sbyte* %info) {
        entry:
                %r1 = call ulong %llva.register.read(uint 1)
                %v1 = cast ulong %r1 to long
                store long %v1, long* %seen
                ret void
        }
        int %faulty(int %n) {
        entry:
                %doubled = add int %n, %n
                %q = div int %doubled, 0
                ret int %q
        }
        int %main() {
        entry:
                %h = cast void (uint, sbyte*)* %handler to sbyte*
                call void %llva.trap.register(uint 2, sbyte* %h)
                %r = call int %faulty(int 21)
                %t = load long* %seen
                %t32 = cast long %t to int
                %result = add int %t32, %r
                ret int %result
        }
        """
        ref = _outcome(self._module(source), privileged=True)
        tiered = _outcome(self._module(source), privileged=True,
                          engine="fast", tier2=True)
        assert ref == tiered
        assert ref[1] == 42
