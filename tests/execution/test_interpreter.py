"""Interpreter semantics: arithmetic, memory, control flow."""

import pytest

from helpers import build_factorial, build_loop_sum, build_quadtree_module
from repro.asm import parse_module
from repro.execution import ExecutionTrap, Interpreter, StepLimitExceeded
from repro.ir import IRBuilder, Module, types, verify_module
from repro.ir.values import const_fp, const_int


def _run_expr(body: str, return_type: str = "int"):
    """Run a one-function module whose body computes %r."""
    module = parse_module("""
    {0} %main() {{
    entry:
    {1}
            ret {0} %r
    }}
    """.format(return_type, body))
    verify_module(module)
    return Interpreter(module).run("main").return_value


class TestArithmetic:
    def test_wraparound(self):
        assert _run_expr("        %r = add int 2147483647, 1") \
            == -2147483648
        assert _run_expr("        %r = mul int 65536, 65536") == 0
        assert _run_expr("        %r = sub int -2147483648, 1") \
            == 2147483647

    def test_c_style_division(self):
        assert _run_expr("        %r = div int 7, 2") == 3
        assert _run_expr("        %r = div int -7, 2") == -3
        assert _run_expr("        %r = div int 7, -2") == -3
        assert _run_expr("        %r = rem int -7, 2") == -1
        assert _run_expr("        %r = rem int 7, -2") == 1

    def test_unsigned_division(self):
        module = parse_module("""
        uint %main() {
        entry:
                %big = cast int -1 to uint
                %r = div uint %big, 2
                ret uint %r
        }
        """)
        assert Interpreter(module).run("main").return_value \
            == (2**32 - 1) // 2

    def test_shift_semantics(self):
        assert _run_expr("        %r = shl int 1, ubyte 10") == 1024
        assert _run_expr("        %r = shr int -16, ubyte 2") == -4
        module = parse_module("""
        uint %main() {
        entry:
                %x = cast int -16 to uint
                %r = shr uint %x, ubyte 2
                ret uint %r
        }
        """)
        assert Interpreter(module).run("main").return_value \
            == (2**32 - 16) >> 2

    def test_float_arithmetic(self):
        assert _run_expr("        %r = add double 1.5, 2.25",
                         "double") == 3.75
        assert _run_expr("        %r = div double 1.0, 0.0",
                         "double") == float("inf")

    def test_float_single_precision_rounds(self):
        module = parse_module("""
        bool %main() {
        entry:
                %a = cast double 0.1 to float
                %b = cast float %a to double
                %r = seteq double %b, 0.1
                ret bool %r
        }
        """)
        assert Interpreter(module).run("main").return_value is False

    def test_comparisons(self):
        assert _run_expr("""
                %c = setlt int -1, 1
                %r = cast bool %c to int""") == 1
        assert _run_expr("""
                %c = setge double 2.0, 2.0
                %r = cast bool %c to int""") == 1


class TestCasts:
    def test_narrowing_wraps(self):
        assert _run_expr("""
                %w = cast int 300 to ubyte
                %r = cast ubyte %w to int""") == 44

    def test_sign_extension(self):
        assert _run_expr("""
                %b = cast int -1 to sbyte
                %r = cast sbyte %b to int""") == -1

    def test_float_to_int_truncates(self):
        assert _run_expr("        %r = cast double 2.9 to int") == 2
        assert _run_expr("        %r = cast double -2.9 to int") == -2

    def test_bool_conversions(self):
        assert _run_expr("""
                %b = cast int 42 to bool
                %r = cast bool %b to int""") == 1

    def test_int_pointer_round_trip(self):
        module = parse_module("""
        bool %main() {
        entry:
                %slot = alloca int
                %addr = cast int* %slot to ulong
                %back = cast ulong %addr to int*
                store int 77, int* %back
                %v = load int* %slot
                %r = seteq int %v, 77
                ret bool %r
        }
        """)
        assert Interpreter(module).run("main").return_value is True


class TestMemoryAndControl:
    def test_factorial(self):
        result = Interpreter(build_factorial()).run("main")
        assert result.return_value == 3628800

    def test_loop_sum_with_arrays(self):
        result = Interpreter(build_loop_sum(25)).run("main")
        assert result.return_value == sum(range(25))

    def test_quadtree_fig2(self):
        module, function = build_quadtree_module()
        # Build a 3-level chain in simulated memory by hand.
        interp = Interpreter(module)
        node_size = interp.target.size_of(
            module.named_types["struct.QuadTree"])
        nodes = [interp.memory.malloc(node_size) for _ in range(3)]
        for depth, address in enumerate(nodes):
            interp.memory.write_typed(address, types.DOUBLE,
                                      float(depth + 1))
            child = nodes[depth + 1] if depth + 1 < len(nodes) else 0
            # Children[3] is at offset 8 + 3*8 = 32 on the 64-bit layout.
            interp.memory.write_typed(address + 32,
                                      types.pointer_to(types.SBYTE),
                                      child)
        result_slot = interp.memory.malloc(8)
        interp.run("Sum3rdChildren", [nodes[0], result_slot])
        total = interp.memory.read_typed(result_slot, types.DOUBLE)
        assert total == 6.0

    def test_global_initializers(self):
        module = parse_module("""
        %counter = global int 5
        %vec = constant [3 x int] [ int 10, int 20, int 30 ]
        int %main() {
        entry:
                %c = load int* %counter
                %p = getelementptr [3 x int]* %vec, long 0, long 2
                %v = load int* %p
                %r = add int %c, %v
                ret int %r
        }
        """)
        assert Interpreter(module).run("main").return_value == 35

    def test_endianness_visible_through_casts(self):
        source = """
        int %main() {
        entry:
                %slot = alloca uint
                store uint 305419896, uint* %slot   ; 0x12345678
                %bytes = cast uint* %slot to ubyte*
                %b0 = load ubyte* %bytes
                %r = cast ubyte %b0 to int
                ret int %r
        }
        """
        little = parse_module(source)
        assert Interpreter(little).run("main").return_value == 0x78
        big = parse_module("target endian = big\n" + source)
        assert Interpreter(big).run("main").return_value == 0x12

    def test_pointer_size_flag_changes_layout(self):
        module, _f = build_quadtree_module()
        qt = module.named_types["struct.QuadTree"]
        assert types.TargetData(4).size_of(qt) == 24
        assert types.TargetData(8).size_of(qt) == 40

    def test_mbr_dispatch(self):
        module = parse_module("""
        int %pick(int %x) {
        entry:
                mbr int %x, label %other, [ int 1, label %one ],
                    [ int 2, label %two ]
        one:
                ret int 100
        two:
                ret int 200
        other:
                ret int -1
        }
        """)
        interp = Interpreter(module)
        assert interp.run("pick", [1]).return_value == 100
        assert Interpreter(module).run("pick", [2]).return_value == 200
        assert Interpreter(module).run("pick", [9]).return_value == -1

    def test_deep_recursion_no_host_limit(self):
        """The explicit frame stack must survive recursion far beyond
        Python's own recursion limit."""
        module = parse_module("""
        int %down(int %n) {
        entry:
                %z = seteq int %n, 0
                br bool %z, label %stop, label %go
        stop:
                ret int 0
        go:
                %m = sub int %n, 1
                %r = call int %down(int %m)
                %s = add int %r, 1
                ret int %s
        }
        """)
        result = Interpreter(module).run("down", [5000])
        assert result.return_value == 5000

    def test_step_limit(self):
        module = parse_module("""
        int %main() {
        entry:
                br label %entry2
        entry2:
                br label %entry2
        }
        """)
        with pytest.raises(StepLimitExceeded):
            Interpreter(module, max_steps=1000).run("main")

    def test_exit_request(self):
        module = parse_module("""
        declare void %exit(int)
        int %main() {
        entry:
                call void %exit(int 3)
                ret int 0
        }
        """)
        result = Interpreter(module).run("main")
        assert result.exit_status == 3
