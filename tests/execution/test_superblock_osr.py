"""Superblock tier-2 codegen, on-stack replacement, and the satellite
optimizations around them.

Edge cases the differential corpus does not isolate on its own:

* OSR promotion mid-loop with live phi values at the header — the
  tier-1 register file (including header phis) must map onto tier-2
  locals exactly.
* A trap delivered in the very first superblock step after an OSR
  entry — precise delivery with nothing but OSR-transferred state.
* llva-san still pins execution to tier 1 even when a superblock+OSR
  cache is supplied.
* Constant-nonzero-divisor div/rem skip the zero-check suffix and
  constant in-range shift amounts drop the mask (tier-2 source level
  plus fast-engine differential including INT_MIN).
* Cross-run block-profile persistence: snapshots stored next to the
  translation blob, warm starts compile superblocks without
  re-profiling, corruption degrades gracefully.
* Persisted superblocks from a different trace layout are rejected
  (``llee.cache.invalid`` with reason ``layout``) and recompiled
  online.
"""

import re

import pytest

from repro import observe
from repro.asm import parse_module
from repro.bitcode import read_module, write_module
from repro.execution import ExecutionTrap, Interpreter
from repro.execution.tier2 import (
    PROFILE_CACHE_NAME,
    Tier2Cache,
    generate_source,
)
from repro.ir import verify_module
from repro.llee import LLEE, InMemoryStorage
from repro.llee.profile import Profile
from repro.minic import compile_source
from repro.targets import make_target

KEY = "sb-test-module"


def _module(source):
    module = parse_module(source)
    verify_module(module)
    return module


def _sb_cache(module, **kwargs):
    """Superblock+OSR cache with thresholds low enough that the
    profiling stage, mid-activation upgrades, and tier-1 OSR all fire
    inside small test programs.  Call promotion is disabled by default
    so OSR is the only road into tier 2."""
    kwargs.setdefault("threshold", 10 ** 9)
    kwargs.setdefault("step_threshold", 0)
    kwargs.setdefault("superblocks", True)
    kwargs.setdefault("osr", True)
    kwargs.setdefault("superblock_threshold", 8)
    kwargs.setdefault("osr_step_threshold", 50)
    return Tier2Cache(module, module.target_data, **kwargs)


def _reference_outcome(source):
    interpreter = Interpreter(_module(source))
    try:
        result = interpreter.run("main", [])
    except ExecutionTrap as trap:
        return ("trap", trap.trap_number, interpreter.steps)
    return ("ok", result.return_value, result.output, result.steps,
            result.exit_status)


def _fast_outcome(source, cache_factory=None, **interp_kwargs):
    module = _module(source)
    cache = cache_factory(module) if cache_factory is not None else False
    interpreter = Interpreter(module, engine="fast", tier2=cache,
                              **interp_kwargs)
    try:
        result = interpreter.run("main", [])
    except ExecutionTrap as trap:
        return ("trap", trap.trap_number, interpreter.steps), interpreter
    return ("ok", result.return_value, result.output, result.steps,
            result.exit_status), interpreter


# A multi-block loop whose header carries three live phi values; main
# is called exactly once, so only OSR can move the activation to
# tier 2 mid-loop.
PHI_LOOP = """
int %main() {
entry:
        br label %head
head:
        %i = phi int [0, %entry], [%next, %latch]
        %acc = phi int [1, %entry], [%anext, %latch]
        %alt = phi int [7, %entry], [%bnext, %latch]
        %odd = and int %i, 1
        %c = seteq int %odd, 0
        br bool %c, label %even, label %oddb
even:
        %ae = add int %acc, %alt
        br label %latch
oddb:
        %ao = mul int %acc, 3
        br label %latch
latch:
        %anext = phi int [%ae, %even], [%ao, %oddb]
        %bnext = add int %alt, %i
        %next = add int %i, 1
        %cmp = setlt int %next, 400
        br bool %cmp, label %head, label %exit
exit:
        ret int %anext
}
"""


def _primed_profile():
    """A profile that makes the PHI_LOOP/TRAP_LOOP shape hot enough
    for trace formation (head -> even -> latch)."""
    profile = Profile()
    profile.record("main", "head", 400)
    profile.record("main", "even", 260)
    profile.record("main", "oddb", 140)
    profile.record("main", "latch", 400)
    return profile


class TestOSRPromotionMidLoop:
    def test_osr_into_profiling_unit_then_upgrade(self):
        """No profile yet: OSR lands in the profiling-stage unit, whose
        counters trigger the mid-activation superblock upgrade — all
        while three phi values stay live at the header."""
        reference = _reference_outcome(PHI_LOOP)
        outcome, interpreter = _fast_outcome(PHI_LOOP, _sb_cache)
        assert outcome == reference
        cache = interpreter.tier2
        assert cache.stats.osr_entries == 1
        assert cache.stats.profiling_compiled == 1
        assert cache.stats.osr_upgrades == 1
        assert cache.stats.superblocks_compiled >= 1
        assert interpreter.tier2_steps > 0

    def test_osr_straight_into_superblock_with_primed_profile(self):
        """With a primed profile the OSR entry compiles a superblock
        directly — the tier-1 frame (phis included) maps onto the
        superblock's locals and the loop finishes in straight-line
        code."""
        reference = _reference_outcome(PHI_LOOP)

        def factory(module):
            cache = _sb_cache(module)
            cache.prime_from_profile(_primed_profile())
            return cache

        outcome, interpreter = _fast_outcome(PHI_LOOP, factory)
        assert outcome == reference
        cache = interpreter.tier2
        assert cache.stats.osr_entries == 1
        assert cache.stats.profiling_compiled == 0
        assert cache.stats.superblocks_compiled == 1
        unit = next(iter(cache._units.values()))
        assert unit.kind == "superblock"


# The %d phi runs 1, 0, ... — the unmasked div in the header's first
# non-phi instruction faults on the second iteration.  With
# osr_step_threshold=1 the activation OSR-enters the superblock on the
# first back edge, so the trap lands in the first superblock step
# executed after the OSR transfer.
TRAP_LOOP = """
int %main() {
entry:
        br label %head
head:
        %i = phi int [0, %entry], [%next, %latch]
        %d = phi int [1, %entry], [%dnext, %latch]
        %acc = phi int [0, %entry], [%anext, %latch]
        %q = div int 100, %d
        %odd = and int %i, 1
        %c = seteq int %odd, 0
        br bool %c, label %even, label %oddb
even:
        %ae = add int %acc, %q
        br label %latch
oddb:
        %ao = sub int %acc, %q
        br label %latch
latch:
        %anext = phi int [%ae, %even], [%ao, %oddb]
        %dnext = sub int %d, 1
        %next = add int %i, 1
        %cmp = setlt int %next, 20
        br bool %cmp, label %head, label %exit
exit:
        ret int %anext
}
"""


class TestTrapAfterOSREntry:
    def test_trap_in_first_superblock_step(self):
        reference = _reference_outcome(TRAP_LOOP)
        assert reference[0] == "trap"

        def factory(module):
            cache = _sb_cache(module, osr_step_threshold=1)
            cache.prime_from_profile(_primed_profile())
            return cache

        outcome, interpreter = _fast_outcome(TRAP_LOOP, factory)
        # Same trap number AND the same architectural step count: the
        # fault was delivered precisely from state the OSR transfer
        # carried over.
        assert outcome == reference
        cache = interpreter.tier2
        assert cache.stats.osr_entries == 1
        assert cache.stats.superblocks_compiled == 1


class TestSanitizePinsTier1:
    def test_sanitize_ignores_superblock_osr_cache(self):
        module = _module(PHI_LOOP)
        cache = _sb_cache(module)
        interpreter = Interpreter(module, engine="fast", sanitize=True,
                                  tier2=cache)
        # llva-san needs per-instruction sites: no tier 2, and the
        # decode cache must not carry OSR-instrumented closures.
        assert interpreter.tier2 is None
        assert interpreter.decode_cache.osr is False
        assert interpreter.decode_cache.sanitize is True
        result = interpreter.run("main", [])
        plain = Interpreter(_module(PHI_LOOP), sanitize=True).run(
            "main", [])
        assert result.return_value == plain.return_value
        assert result.steps == plain.steps
        assert cache.stats.osr_entries == 0
        assert cache.stats.functions_compiled == 0


def _tier2_source(asm):
    module = _module(asm)
    source, _refs, _slots, _exits = generate_source(
        module.functions["main"], module.target_data)
    return source


def _zero_checks(source):
    """Count emitted divisor zero checks.  The checked division path
    tests a value temp (``if __tN == 0:``); block dispatch arms also
    contain ``== 0`` (``if __blk == 0:``), so a plain substring match
    would misfire."""
    return len(re.findall(r"__t\d+ == 0", source))


class TestConstDivisorCodegen:
    """Satellite micro-opts at the tier-2 source level: a constant
    nonzero divisor needs no zero check (and unsigned forms are plain
    ``//``/``%``); a constant in-range shift amount needs no mask."""

    def test_unsigned_const_div_is_plain_floordiv(self):
        source = _tier2_source("""
        uint %main() {
        entry:
                %x = add uint 1234, 0
                %r = div uint %x, 7
                ret uint %r
        }
        """)
        assert "// 7" in source
        assert "('trap'" not in source

    def test_unsigned_const_rem_is_plain_mod(self):
        source = _tier2_source("""
        uint %main() {
        entry:
                %x = add uint 1234, 0
                %r = rem uint %x, 7
                ret uint %r
        }
        """)
        assert "% 7" in source
        assert "('trap'" not in source

    def test_signed_const_div_skips_zero_check(self):
        source = _tier2_source("""
        int %main() {
        entry:
                %x = add int -1234, 0
                %r = div int %x, 7
                ret int %r
        }
        """)
        assert _zero_checks(source) == 0
        assert "('trap'" not in source
        assert "abs(" in source

    def test_signed_div_by_minus_one_keeps_checked_path(self):
        # INT_MIN / -1 is the one overflowing division; the generic
        # checked path must survive.
        source = _tier2_source("""
        int %main() {
        entry:
                %x = add int -1234, 0
                %r = div int %x, -1
                ret int %r
        }
        """)
        assert _zero_checks(source) == 1

    def test_signed_rem_by_minus_one_takes_const_path(self):
        # rem by -1 cannot overflow (the result is always 0-ish small)
        # so it does qualify for the unchecked path.
        source = _tier2_source("""
        int %main() {
        entry:
                %x = add int -1234, 0
                %r = rem int %x, -1
                ret int %r
        }
        """)
        assert "('trap'" not in source

    def test_div_by_const_zero_keeps_checked_path(self):
        source = _tier2_source("""
        int %main() {
        entry:
                %x = add int 5, 0
                %r = div int %x, 0 !ee(false)
                ret int %r
        }
        """)
        assert _zero_checks(source) == 1

    def test_const_shift_amount_drops_mask(self):
        source = _tier2_source("""
        int %main() {
        entry:
                %x = add int 5, 0
                %r = shl int %x, ubyte 3
                ret int %r
        }
        """)
        assert "<< 3" in source
        assert "& 31" not in source

    def test_variable_shift_amount_keeps_mask(self):
        source = _tier2_source("""
        int %main() {
        entry:
                %x = add int 5, 0
                %amt = add ubyte 3, 0
                %r = shl int %x, ubyte %amt
                ret int %r
        }
        """)
        assert "& 31" in source


# Every signed/unsigned const-divisor shape over a range of dividends
# that includes INT_MIN and INT_MAX, differenced against the oracle on
# both the fast engine and the tier-2 translator.
CONST_DIVREM_DIFF = """
int %divsum(int %a) {
entry:
        %q1 = div int %a, 7
        %q2 = div int %a, -7
        %q3 = div int %a, -1 !ee(false)
        %r1 = rem int %a, 7
        %r2 = rem int %a, -3
        %r3 = rem int %a, -1
        %u = cast int %a to uint
        %qu = div uint %u, 7
        %ru = rem uint %u, 9
        %s1 = add int %q1, %q2
        %s2 = add int %r1, %r2
        %s3 = add int %s1, %s2
        %s4 = add int %s3, %r3
        %su = add uint %qu, %ru
        %si = cast uint %su to int
        %s5 = add int %s4, %si
        ret int %s5
}
int %main() {
entry:
        %vmin = call int %divsum(int -2147483648)
        %vmax = call int %divsum(int 2147483647)
        %seed = add int %vmin, %vmax
        br label %loop
loop:
        %i = phi int [-12, %entry], [%next, %loop]
        %acc = phi int [%seed, %entry], [%accn, %loop]
        %v = call int %divsum(int %i)
        %accn = add int %acc, %v
        %next = add int %i, 1
        %cmp = setlt int %next, 13
        br bool %cmp, label %loop, label %exit
exit:
        ret int %accn
}
"""


class TestConstDivremDifferential:
    def test_fast_engine_matches_reference(self):
        reference = _reference_outcome(CONST_DIVREM_DIFF)
        assert reference[0] == "ok"
        fast, _interp = _fast_outcome(CONST_DIVREM_DIFF)
        assert fast == reference

    def test_tier2_forced_matches_reference(self):
        reference = _reference_outcome(CONST_DIVREM_DIFF)
        fast, interpreter = _fast_outcome(
            CONST_DIVREM_DIFF,
            lambda m: Tier2Cache(m, m.target_data, threshold=0))
        assert fast == reference
        assert interpreter.tier2.stats.functions_compiled > 0

    def test_divsum_tier2_source_has_single_checked_division(self):
        # Only div by -1 (INT_MIN overflow) should keep the checked
        # path; the other seven divisions all use the unchecked
        # constant path.
        module = _module(CONST_DIVREM_DIFF)
        source, _refs, _slots, _exits = generate_source(
            module.functions["divsum"], module.target_data)
        assert _zero_checks(source) == 1


# -- cross-run profile persistence and layout invalidation ------------------

HOT_PROGRAM = r"""
int helper(int x) {
    int s = 0;
    int j;
    for (j = 0; j < 30; j++) {
        if (j & 1) { s += x; } else { s -= j; }
    }
    return s;
}
int main() {
    int total = 0;
    int i;
    for (i = 0; i < 30; i++) {
        total += helper(i);
        if (total > 100000) { total -= 100000; }
    }
    print_int(total);
    return total & 32767;
}
"""


@pytest.fixture(scope="module")
def hot_object_code():
    module = compile_source(HOT_PROGRAM, "sb-test", optimization_level=2)
    return write_module(module)


def _forced_sb_cache(module):
    """Call promotion forced (threshold 0) so every function compiles,
    with the superblock thresholds still low."""
    return Tier2Cache(module, module.target_data, threshold=0,
                      superblocks=True, osr=True,
                      superblock_threshold=8, osr_step_threshold=50)


def _run_forced(module, cache):
    interpreter = Interpreter(module, engine="fast", tier2=cache,
                              tier2_threshold=0)
    result = interpreter.run("main", [])
    return (result.return_value, result.output, result.steps,
            result.exit_status)


def _populated_storage(object_code):
    """One cold superblock run, translation + profile flushed."""
    storage = InMemoryStorage()
    module = read_module(object_code)
    cache = _forced_sb_cache(module)
    cache.attach_storage(storage, KEY)
    outcome = _run_forced(module, cache)
    assert cache.stats.osr_upgrades > 0
    assert cache.flush_storage()
    return storage, outcome


class TestProfilePersistence:
    def test_profile_blob_written_on_flush(self, hot_object_code):
        storage, _ = _populated_storage(hot_object_code)
        blob = storage.read(PROFILE_CACHE_NAME, KEY)
        assert blob is not None
        profile = Profile.from_json(blob)
        assert profile.counts

    def test_warm_start_compiles_superblocks_without_profiling(
            self, hot_object_code):
        storage, cold_outcome = _populated_storage(hot_object_code)
        module = read_module(hot_object_code)
        warm = _forced_sb_cache(module)
        warm.attach_storage(storage, KEY)
        assert warm.profile_cache_hit
        assert _run_forced(module, warm) == cold_outcome
        # The persisted profile seeded trace layouts up front: no
        # profiling stage, straight to superblocks.
        assert warm.stats.profiling_compiled == 0
        assert warm.stats.superblocks_compiled > 0
        assert warm.stats.osr_upgrades == 0

    def test_corrupt_profile_blob_degrades_gracefully(
            self, hot_object_code):
        storage, cold_outcome = _populated_storage(hot_object_code)
        storage.write(PROFILE_CACHE_NAME, KEY, b"{not a profile")
        module = read_module(hot_object_code)
        cache = _forced_sb_cache(module)
        observe.configure()
        try:
            cache.attach_storage(storage, KEY)
            invalid = list(observe.registry().counters(
                "llee.profile.invalid"))
            assert invalid, "llee.profile.invalid was not recorded"
        finally:
            observe.disable()
        assert not cache.profile_cache_hit
        # Execution still works (the run re-profiles online).
        assert _run_forced(module, cache) == cold_outcome


class TestLayoutInvalidation:
    def test_changed_profile_invalidates_persisted_superblocks(
            self, hot_object_code):
        """A persisted superblock generated from one trace layout must
        not be resurrected under a different profile: the layout hash
        mismatch logs ``llee.cache.invalid`` with reason ``layout`` and
        translation happens online."""
        storage, cold_outcome = _populated_storage(hot_object_code)
        # Replace the block profile with a valid-but-empty snapshot:
        # trace formation now yields no layout, so every persisted
        # superblock's layout hash is stale.
        storage.write(PROFILE_CACHE_NAME, KEY, Profile().to_json())
        module = read_module(hot_object_code)
        cache = _forced_sb_cache(module)
        observe.configure()
        try:
            cache.attach_storage(storage, KEY)
            outcome = _run_forced(module, cache)
            invalid = [(labels, value) for _name, labels, value
                       in observe.registry().counters(
                           "llee.cache.invalid")]
            reasons = [dict(labels).get("reason", "")
                       for labels, _v in invalid]
            assert "layout" in reasons, reasons
        finally:
            observe.disable()
        assert outcome == cold_outcome
        # Nothing warm-started from the stale superblock entries; the
        # profiling stage ran again online.
        assert cache.stats.profiling_compiled > 0


class TestManagerIntegration:
    def _object_code(self):
        source = r"""
        int main() {
            int total = 0;
            int i;
            for (i = 0; i < 3000; i++) {
                if (i & 1) { total += i; } else { total -= 1; }
                if (total > 1000000) { total -= 1000000; }
            }
            print_int(total);
            return total & 32767;
        }
        """
        module = compile_source(source, "sb-manager", optimization_level=2)
        return write_module(module)

    def test_report_carries_superblock_and_profile_fields(self):
        object_code = self._object_code()
        storage = InMemoryStorage()
        llee = LLEE(make_target("x86"), storage)
        report = llee.run_interpreted(object_code, tier2=True,
                                      tier2_threshold=0,
                                      superblocks=True, osr=True)
        assert report.tier2_superblocks >= 1
        assert report.tier2_osr_upgrades >= 1
        assert not report.profile_cache_hit

        # A fresh manager over the same storage warm-starts both the
        # translation and the block profile.
        warm_llee = LLEE(make_target("x86"), storage)
        warm = warm_llee.run_interpreted(object_code, tier2=True,
                                         tier2_threshold=0,
                                         superblocks=True, osr=True)
        assert warm.profile_cache_hit
        assert warm.tier2_superblocks >= 1
        assert warm.tier2_osr_upgrades == 0
        assert (warm.return_value, warm.output, warm.steps) == \
            (report.return_value, report.output, report.steps)

    def test_superblock_report_matches_plain_run(self):
        object_code = self._object_code()
        llee = LLEE(make_target("x86"))
        plain = llee.run_interpreted(object_code)
        sb = llee.run_interpreted(object_code, tier2=True,
                                  tier2_threshold=0,
                                  superblocks=True, osr=True)
        assert (sb.return_value, sb.output, sb.steps,
                sb.exit_status) == (plain.return_value, plain.output,
                                    plain.steps, plain.exit_status)
