"""The Section 3.3 exception model and Section 3.5 OS mechanisms."""

import pytest

from repro.asm import parse_module
from repro.execution import (
    ExecutionTrap,
    Interpreter,
    TrapKind,
)
from repro.ir import verify_module


def _interp(source: str, privileged: bool = False) -> Interpreter:
    module = parse_module(source)
    verify_module(module)
    return Interpreter(module, privileged=privileged)


class TestExceptionsEnabled:
    DIV = """
    int %main() {{
    entry:
            %r = div int 5, 0 {0}
            ret int %r
    }}
    """

    def test_enabled_division_traps(self):
        with pytest.raises(ExecutionTrap) as info:
            _interp(self.DIV.format("")).run("main")
        assert info.value.trap_number == TrapKind.DIVIDE_BY_ZERO

    def test_masked_division_yields_zero(self):
        result = _interp(self.DIV.format("!ee(false)")).run("main")
        assert result.return_value == 0

    def test_masked_load_fault_yields_zero(self):
        result = _interp("""
        int %main() {
        entry:
                %p = cast ulong 64 to int*
                %v = load int* %p !ee(false)
                ret int %v
        }
        """).run("main")
        assert result.return_value == 0

    def test_enabled_load_fault_traps(self):
        with pytest.raises(ExecutionTrap) as info:
            _interp("""
            int %main() {
            entry:
                    %p = cast ulong 64 to int*
                    %v = load int* %p
                    ret int %v
            }
            """).run("main")
        assert info.value.trap_number == TrapKind.MEMORY_FAULT

    def test_null_store_traps(self):
        with pytest.raises(ExecutionTrap):
            _interp("""
            int %main() {
            entry:
                    %p = cast ulong 0 to int*
                    store int 1, int* %p
                    ret int 0
            }
            """).run("main")

    def test_overflow_silent_by_default(self):
        """Arithmetic exceptions are off by default (Section 3.3),
        so overflow wraps silently."""
        result = _interp("""
        int %main() {
        entry:
                %r = add int 2147483647, 1
                ret int %r
        }
        """).run("main")
        assert result.return_value == -2147483648

    def test_overflow_traps_when_enabled(self):
        with pytest.raises(ExecutionTrap) as info:
            _interp("""
            int %main() {
            entry:
                    %r = add int 2147483647, 1 !ee(true)
                    ret int %r
            }
            """).run("main")
        assert info.value.trap_number == TrapKind.INTEGER_OVERFLOW

    def test_dynamic_masking_via_intrinsic(self):
        """llva.exceptions.set disables delivery at runtime — 'provided
        in addition to other mechanisms ... to disable exceptions
        dynamically at runtime (e.g. for use in trap handlers)'."""
        result = _interp("""
        declare void %llva.exceptions.set(bool)
        int %main() {
        entry:
                call void %llva.exceptions.set(bool false)
                %r = div int 5, 0
                call void %llva.exceptions.set(bool true)
                ret int %r
        }
        """).run("main")
        assert result.return_value == 0


class TestTrapHandlers:
    KERNEL = """
    %log = global int 0
    declare void %llva.trap.register(uint, sbyte*)
    void %handler(uint %trapno, sbyte* %info) {
    entry:
            %old = load int* %log
            %n = cast uint %trapno to int
            %new = add int %old, %n
            store int %new, int* %log
            ret void
    }
    int %main() {
    entry:
            %h = cast void (uint, sbyte*)* %handler to sbyte*
            call void %llva.trap.register(uint 2, sbyte* %h)
            %q = div int 9, 0
            %v = load int* %log
            %r = add int %v, %q
            ret int %r
    }
    """

    def test_handler_runs_and_execution_resumes(self):
        result = _interp(self.KERNEL, privileged=True).run("main")
        # handler added trap number 2 to the log; faulting div yields 0.
        assert result.return_value == 2

    def test_registration_requires_privilege(self):
        with pytest.raises(ExecutionTrap) as info:
            _interp(self.KERNEL, privileged=False).run("main")
        assert info.value.trap_number == TrapKind.PRIVILEGE_VIOLATION

    def test_software_trap_raise(self):
        result = _interp("""
        %seen = global int 0
        declare void %llva.trap.register(uint, sbyte*)
        declare void %llva.trap.raise(uint, sbyte*)
        void %handler(uint %trapno, sbyte* %info) {
        entry:
                %v = cast sbyte* %info to ulong
                %i = cast ulong %v to int
                store int %i, int* %seen
                ret void
        }
        int %main() {
        entry:
                %h = cast void (uint, sbyte*)* %handler to sbyte*
                call void %llva.trap.register(uint 6, sbyte* %h)
                %payload = cast ulong 777 to sbyte*
                call void %llva.trap.raise(uint 6, sbyte* %payload)
                %r = load int* %seen
                ret int %r
        }
        """, privileged=True).run("main")
        assert result.return_value == 777

    def test_stack_walking_intrinsics(self):
        result = _interp("""
        declare uint %llva.stack.depth()
        int %inner() {
        entry:
                %d = call uint %llva.stack.depth()
                %r = cast uint %d to int
                ret int %r
        }
        int %outer() {
        entry:
                %r = call int %inner()
                ret int %r
        }
        int %main() {
        entry:
                %deep = call int %outer()
                %here = call uint %llva.stack.depth()
                %h = cast uint %here to int
                %diff = sub int %deep, %h
                ret int %diff
        }
        """).run("main")
        assert result.return_value == 2  # outer + inner above main


class TestInvokeUnwind:
    SOURCE = """
    int %may_throw(int %x) {
    entry:
            %bad = setgt int %x, 10
            br bool %bad, label %throw, label %fine
    throw:
            unwind
    fine:
            %r = mul int %x, 2
            ret int %r
    }
    int %middle(int %x) {
    entry:
            %r = call int %may_throw(int %x)
            %s = add int %r, 1
            ret int %s
    }
    int %main(int %x) {
    entry:
            %v = invoke int %middle(int %x) to label %ok
                  unwind label %handler
    ok:
            ret int %v
    handler:
            ret int -1
    }
    """

    def test_normal_path(self):
        result = _interp(self.SOURCE).run("main", [4])
        assert result.return_value == 9

    def test_unwind_skips_intermediate_frames(self):
        result = _interp(self.SOURCE).run("main", [50])
        assert result.return_value == -1

    def test_unwind_without_invoke_traps(self):
        with pytest.raises(ExecutionTrap):
            _interp("""
            int %main() {
            entry:
                    unwind
            }
            """).run("main")

    def test_nested_invokes_catch_at_nearest(self):
        result = _interp("""
        int %thrower() {
        entry:
                unwind
        }
        int %inner() {
        entry:
                %v = invoke int %thrower() to label %ok
                      unwind label %caught
        ok:
                ret int %v
        caught:
                ret int 100
        }
        int %main() {
        entry:
                %v = invoke int %inner() to label %ok
                      unwind label %outer_caught
        ok:
                ret int %v
        outer_caught:
                ret int 200
        }
        """).run("main")
        assert result.return_value == 100  # nearest invoke wins


class TestSelfModifyingCode:
    SOURCE = """
    declare void %llva.smc.replace(sbyte*, sbyte*)
    int %f(int %x) {
    entry:
            %r = add int %x, 1
            ret int %r
    }
    int %g(int %x) {
    entry:
            %r = mul int %x, 100
            ret int %r
    }
    int %main() {
    entry:
            %before = call int %f(int 5)
            %old = cast int (int)* %f to sbyte*
            %new = cast int (int)* %g to sbyte*
            call void %llva.smc.replace(sbyte* %old, sbyte* %new)
            %after = call int %f(int 5)
            %r = sub int %after, %before
            ret int %r
    }
    """

    def test_future_invocations_see_new_body(self):
        result = _interp(self.SOURCE).run("main")
        assert result.return_value == 500 - 6

    def test_active_invocation_unaffected(self):
        """Section 3.4: 'such a change only affects future invocations
        of that function, not any currently active invocations.'"""
        result = _interp("""
        declare void %llva.smc.replace(sbyte*, sbyte*)
        int %target(int %depth) {
        entry:
                %stop = seteq int %depth, 0
                br bool %stop, label %leaf, label %recurse
        leaf:
                ret int 1
        recurse:
                ; On the way down, the *first* call rewrites target;
                ; the active frames must keep their old bodies.
                %is_first = seteq int %depth, 3
                br bool %is_first, label %patch, label %continue
        patch:
                %old = cast int (int)* %target to sbyte*
                %new = cast int (int)* %replacement to sbyte*
                call void %llva.smc.replace(sbyte* %old, sbyte* %new)
                br label %continue
        continue:
                %m = sub int %depth, 1
                %r = call int %target(int %m)
                %s = add int %r, 10
                ret int %s
        }
        int %replacement(int %depth) {
        entry:
                ret int 1000
        }
        int %main() {
        entry:
                %r = call int %target(int 3)
                ret int %r
        }
        """).run("main")
        # Frame depth=3 is active when the patch happens, so it runs its
        # old body; the recursive call at depth 2 is a *future*
        # invocation and gets the replacement: 1000 + 10.
        assert result.return_value == 1010
