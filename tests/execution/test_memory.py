"""Memory model tests: regions, typed access, endianness, allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.execution.events import ExecutionTrap, TrapKind
from repro.execution.memory import (
    GLOBAL_BASE,
    HEAP_BASE,
    STACK_TOP,
    Memory,
    MemoryError_,
)
from repro.ir import types
from repro.ir.types import TargetData


def _memory(pointer_size=8, endianness="little", **kwargs) -> Memory:
    return Memory(TargetData(pointer_size, endianness), **kwargs)


class TestRegions:
    def test_unmapped_access_faults(self):
        memory = _memory()
        with pytest.raises(MemoryError_) as info:
            memory.read_bytes(0x40, 1)  # the null page
        assert info.value.trap_number == TrapKind.MEMORY_FAULT

    def test_globals_heap_stack_disjoint(self):
        memory = _memory()
        g = memory.allocate_global(64)
        h = memory.malloc(64)
        s = memory.push_frame(64)
        assert GLOBAL_BASE <= g < HEAP_BASE <= h < s < STACK_TOP
        memory.write_bytes(g, b"g" * 64)
        memory.write_bytes(h, b"h" * 64)
        memory.write_bytes(s, b"s" * 64)
        assert memory.read_bytes(g, 1) == b"g"
        assert memory.read_bytes(h, 1) == b"h"
        assert memory.read_bytes(s, 1) == b"s"

    def test_straddling_region_end_faults(self):
        memory = _memory()
        address = memory.allocate_global(8)
        last = address + memory._global_cursor - address  # cursor end
        with pytest.raises(MemoryError_):
            memory.read_bytes(memory._global_cursor - 2, 8)

    def test_explicit_regions(self):
        memory = _memory()
        memory.add_region(0x5000_0000, 4096)
        memory.write_typed(0x5000_0010, types.INT, -5)
        assert memory.read_typed(0x5000_0010, types.INT) == -5
        assert memory.is_mapped(0x5000_0000, 4096)
        assert not memory.is_mapped(0x5000_1000)


class TestTypedAccess:
    @pytest.mark.parametrize("type_,value", [
        (types.SBYTE, -7), (types.UBYTE, 200),
        (types.SHORT, -30000), (types.USHORT, 60000),
        (types.INT, -2**31), (types.UINT, 2**32 - 1),
        (types.LONG, -2**63), (types.ULONG, 2**64 - 1),
        (types.DOUBLE, 3.141592653589793),
        (types.BOOL, True),
    ])
    @pytest.mark.parametrize("endianness", ["little", "big"])
    def test_round_trip(self, type_, value, endianness):
        memory = _memory(endianness=endianness)
        address = memory.malloc(16)
        memory.write_typed(address, type_, value)
        assert memory.read_typed(address, type_) == value

    def test_pointer_width_by_target(self):
        for pointer_size in (4, 8):
            memory = _memory(pointer_size=pointer_size)
            address = memory.malloc(16)
            ptr_type = types.pointer_to(types.INT)
            memory.write_typed(address, ptr_type, HEAP_BASE + 8)
            raw = memory.read_bytes(address, pointer_size)
            assert int.from_bytes(raw, "little") == HEAP_BASE + 8

    def test_endianness_changes_byte_order(self):
        little = _memory(endianness="little")
        big = _memory(8, "big")
        a1 = little.malloc(8)
        a2 = big.malloc(8)
        little.write_typed(a1, types.UINT, 0x11223344)
        big.write_typed(a2, types.UINT, 0x11223344)
        assert little.read_bytes(a1, 4) == bytes.fromhex("44332211")
        assert big.read_bytes(a2, 4) == bytes.fromhex("11223344")

    def test_cstring(self):
        memory = _memory()
        address = memory.malloc(16)
        memory.write_bytes(address, b"hello\x00junk")
        assert memory.read_cstring(address) == b"hello"

    def test_cstring_nul_exactly_at_limit(self):
        # A terminator landing on the limit boundary is still a
        # well-formed string of `limit` bytes, not an error.
        memory = _memory()
        address = memory.malloc(16)
        memory.write_bytes(address, b"hello\x00")
        assert memory.read_cstring(address, limit=5) == b"hello"

    def test_cstring_unterminated_reports_overrun_cursor(self):
        memory = _memory()
        address = memory.malloc(16)
        memory.write_bytes(address, b"A" * 16)
        with pytest.raises(MemoryError_) as info:
            memory.read_cstring(address, limit=8)
        # The fault names the cursor that overran, not the start.
        assert info.value.address == address + 8
        assert "unterminated" in info.value.detail


class TestAllocator:
    def test_malloc_returns_distinct_zeroed_chunks(self):
        memory = _memory()
        a = memory.malloc(24)
        b = memory.malloc(24)
        assert a != b
        assert memory.read_bytes(a, 24) == b"\x00" * 24

    def test_free_then_reuse(self):
        memory = _memory()
        a = memory.malloc(32)
        memory.write_bytes(a, b"x" * 32)
        memory.free(a)
        b = memory.malloc(32)
        assert b == a  # freelist reuse
        assert memory.read_bytes(b, 32) == b"\x00" * 32  # re-zeroed

    def test_double_free_detected(self):
        memory = _memory()
        a = memory.malloc(8)
        memory.free(a)
        with pytest.raises(MemoryError_):
            memory.free(a)

    def test_free_null_is_noop(self):
        _memory().free(0)

    def test_heap_grows_across_chunks(self):
        memory = _memory()
        blocks = [memory.malloc(1 << 20) for _ in range(6)]  # > 4 MiB
        memory.write_typed(blocks[-1], types.INT, 9)
        assert memory.read_typed(blocks[-1], types.INT) == 9

    def test_freed_block_is_unmapped_until_reused(self):
        memory = _memory()
        a = memory.malloc(32)
        memory.free(a)
        assert not memory.is_mapped(a)
        with pytest.raises(MemoryError_) as info:
            memory.read_bytes(a, 4)
        assert "freed heap block" in info.value.detail
        with pytest.raises(MemoryError_):
            memory.write_bytes(a, b"oops")
        b = memory.malloc(32)  # freelist hands the block back
        assert b == a
        assert memory.is_mapped(b, 32)
        assert memory.read_bytes(b, 4) == b"\x00" * 4

    def test_access_spanning_freed_neighbour_faults(self):
        memory = _memory()
        a = memory.malloc(16)
        b = memory.malloc(16)
        memory.free(b)
        assert memory.read_bytes(a, 16) == b"\x00" * 16  # a still fine
        with pytest.raises(MemoryError_) as info:
            memory.read_bytes(a, 32)  # runs into the freed block
        assert "freed heap block" in info.value.detail

    def test_heap_live_vs_cumulative_accounting(self):
        memory = _memory()
        a = memory.malloc(32)
        memory.malloc(32)
        assert memory.heap_allocated == 64
        assert memory.heap_live == 64
        memory.free(a)
        assert memory.heap_allocated == 64  # cumulative never drops
        assert memory.heap_live == 32
        memory.malloc(32)  # freelist reuse still counts as traffic
        assert memory.heap_allocated == 96
        assert memory.heap_live == 64

    @given(st.lists(st.integers(min_value=1, max_value=512),
                    min_size=1, max_size=40))
    def test_allocations_never_overlap(self, sizes):
        memory = _memory()
        spans = []
        for size in sizes:
            address = memory.malloc(size)
            spans.append((address, address + size))
        spans.sort()
        for (a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:]):
            assert a_end <= b_start


class TestStack:
    def test_frames_grow_down_and_pop(self):
        memory = _memory()
        top = memory.stack_pointer
        frame1 = memory.push_frame(128)
        frame2 = memory.push_frame(64)
        assert frame2 < frame1 < top
        memory.pop_frame(frame1 + 0)  # restore to frame1's base
        assert memory.stack_pointer == frame1

    def test_stack_overflow_traps(self):
        memory = _memory(stack_limit=4096)
        with pytest.raises(ExecutionTrap) as info:
            memory.push_frame(8192)
        assert info.value.trap_number == TrapKind.STACK_OVERFLOW

    def test_alignment(self):
        memory = _memory()
        frame = memory.push_frame(100, align=16)
        assert frame % 16 == 0

    def test_popped_frame_is_below_live_stack_pointer(self):
        memory = _memory()
        top = memory.stack_pointer
        frame = memory.push_frame(64)
        memory.write_bytes(frame, b"x")
        memory.pop_frame(top)
        assert not memory.is_mapped(frame)
        with pytest.raises(MemoryError_) as info:
            memory.read_bytes(frame, 1)
        assert "below the live stack pointer" in info.value.detail

    def test_headroom_between_base_and_sp_is_unmapped(self):
        memory = _memory(stack_limit=4096)
        probe = memory.stack_pointer - 128  # unallocated headroom
        assert not memory.is_mapped(probe)
        frame = memory.push_frame(256)
        assert memory.is_mapped(frame)  # now above the live pointer
