"""Self-extending code (Section 3.4).

"LLVA allows arbitrary SEC" — new code may be added at run time (class
loading, function synthesis, dynamic code generation).  The host-side
surface is :meth:`ProgramImage.register_function`: a function added to
the module after loading gets a code address and becomes callable
through pointers; the JIT resolver translates it on first call.
"""

import pytest

from repro.asm import parse_module
from repro.execution import Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.ir import IRBuilder, types, verify_module
from repro.ir.values import const_int
from repro.llee.jit import FunctionJIT
from repro.targets import NativeModule, make_target

BASE = """
%hook = global ulong 0

int %call_hook(int %x) {
entry:
        %raw = load ulong* %hook
        %is_unset = seteq ulong %raw, 0
        br bool %is_unset, label %fallback, label %dispatch
fallback:
        ret int -1
dispatch:
        %fp = cast ulong %raw to int (int)*
        %r = call int %fp(int %x)
        ret int %r
}
"""


def _synthesize_tripler(module):
    """Dynamically generate a new LLVA function (the SEC payload)."""
    f = module.create_function(
        "generated.tripler",
        types.function_of(types.INT, [types.INT]), ["x"])
    entry = f.add_block("entry")
    builder = IRBuilder(entry)
    builder.ret(builder.mul(f.args[0], const_int(types.INT, 3)))
    verify_module(module)
    return f


class TestSelfExtendingCode:
    def test_interpreter_calls_generated_code(self):
        module = parse_module(BASE)
        interp = Interpreter(module)
        # Before extension: the hook is unset.
        assert interp.run("call_hook", [7]).return_value == -1

        generated = _synthesize_tripler(module)
        address = interp.image.register_function(generated)
        hook_address = interp.image.address_of("hook")
        interp.memory.write_typed(hook_address, types.ULONG, address)
        # Fresh frame stack, same engine state: the new code runs.
        assert interp.run("call_hook", [7]).return_value == 21

    def test_registration_is_idempotent(self):
        module = parse_module(BASE)
        interp = Interpreter(module)
        generated = _synthesize_tripler(module)
        first = interp.image.register_function(generated)
        second = interp.image.register_function(generated)
        assert first == second

    def test_native_engine_jits_generated_code(self):
        """At machine level, SEC exercises the lazy JIT: the generated
        function has no translation until the indirect call reaches
        it."""
        module = parse_module(BASE)
        target = make_target("x86")
        jit = FunctionJIT(module, target)
        native = NativeModule(target, module.name)
        simulator = MachineSimulator(native, module,
                                     resolver=jit.translate)
        assert simulator.run("call_hook", [7])[0] == -1
        translated_before = jit.stats.functions_translated

        generated = _synthesize_tripler(module)
        address = simulator.image.register_function(generated)
        hook = simulator.image.address_of("hook")
        simulator.memory.write_typed(hook, types.ULONG, address)
        assert simulator.run("call_hook", [7])[0] == 21
        assert jit.stats.functions_translated == translated_before + 1


class TestTrapRegisterNumbering:
    def test_handler_reads_interrupted_registers(self):
        """Section 3.5: handlers read the interrupted program's virtual
        registers via the standard numbering (args first, then
        value-producing instructions in block order)."""
        module = parse_module("""
        %seen_arg = global long 0
        %seen_tmp = global long 0
        declare void %llva.trap.register(uint, sbyte*)
        declare ulong %llva.register.read(uint)

        void %handler(uint %trapno, sbyte* %info) {
        entry:
                %r0 = call ulong %llva.register.read(uint 0)
                %v0 = cast ulong %r0 to long
                store long %v0, long* %seen_arg
                %r1 = call ulong %llva.register.read(uint 1)
                %v1 = cast ulong %r1 to long
                store long %v1, long* %seen_tmp
                ret void
        }

        int %faulty(int %n) {
        entry:
                %doubled = add int %n, %n
                %q = div int %doubled, 0
                ret int %q
        }

        int %main() {
        entry:
                %h = cast void (uint, sbyte*)* %handler to sbyte*
                call void %llva.trap.register(uint 2, sbyte* %h)
                %r = call int %faulty(int 21)
                %a = load long* %seen_arg
                %t = load long* %seen_tmp
                %a32 = cast long %a to int
                %t32 = cast long %t to int
                %combined = mul int %a32, 1000
                %result = add int %combined, %t32
                ret int %result
        }
        """)
        verify_module(module)
        result = Interpreter(module, privileged=True).run("main")
        # Register 0 = the argument n (21); register 1 = %doubled (42).
        assert result.return_value == 21 * 1000 + 42
