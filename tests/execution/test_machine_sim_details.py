"""Machine-simulator internals: cycle model, frames, argument slots."""

import pytest

from repro.asm import parse_module
from repro.execution import ExecutionTrap, Interpreter
from repro.execution.machine_sim import CYCLES, MachineSimulator
from repro.ir import verify_module
from repro.targets import make_target, translate_module
from repro.targets.machine import Semantics


def _simulate(source: str, target_name="x86", entry="main", args=()):
    module = parse_module(source)
    verify_module(module)
    native = translate_module(module, make_target(target_name))
    simulator = MachineSimulator(native, module)
    value, status = simulator.run(entry, args)
    return simulator, value


class TestCycleModel:
    def test_loads_cost_more_than_moves(self):
        assert CYCLES[Semantics.LOAD] > CYCLES[Semantics.MOV]
        assert CYCLES[Semantics.CALL] > CYCLES[Semantics.JMP]

    def test_cycles_scale_with_work(self):
        template = """
        int %main() {{
        entry:
                br label %loop
        loop:
                %i = phi int [ 0, %entry ], [ %i2, %loop ]
                %i2 = add int %i, 1
                %c = setlt int %i2, {0}
                br bool %c, label %loop, label %done
        done:
                ret int %i2
        }}
        """
        short_sim, _ = _simulate(template.format(10))
        long_sim, _ = _simulate(template.format(100))
        assert long_sim.cycles > short_sim.cycles * 5

    def test_division_is_expensive(self):
        div_sim, _ = _simulate("""
        int %main() {
        entry:
                %a = div int 1000, 7
                ret int %a
        }
        """)
        add_sim, _ = _simulate("""
        int %main() {
        entry:
                %a = add int 1000, 7
                ret int %a
        }
        """)
        assert div_sim.cycles > add_sim.cycles

    def test_deterministic_cycles(self):
        source = """
        int %main() {
        entry:
                %a = mul int 6, 7
                ret int %a
        }
        """
        first, _ = _simulate(source)
        second, _ = _simulate(source)
        assert first.cycles == second.cycles

    def test_cycle_budget(self):
        module = parse_module("""
        int %main() {
        entry:
                br label %spin
        spin:
                br label %spin
        }
        """)
        native = translate_module(module, make_target("x86"))
        simulator = MachineSimulator(native, module, max_cycles=5000)
        with pytest.raises(ExecutionTrap):
            simulator.run("main")

    def test_cycle_budget_exact_boundary(self):
        """A budget of N means N cycles may be *spent*: a run costing
        exactly N completes, a budget of N-1 traps, and the trapped
        simulator never charges past its budget."""
        source = """
        int %main() {
        entry:
                %a = mul int 6, 7
                %b = add int %a, 1
                ret int %b
        }
        """
        full, _ = _simulate(source)
        total = full.cycles

        module = parse_module(source)
        verify_module(module)
        native = translate_module(module, make_target("x86"))
        exact = MachineSimulator(native, module, max_cycles=total)
        value, _status = exact.run("main")
        assert value == 43
        assert exact.cycles == total

        short = MachineSimulator(native, module, max_cycles=total - 1)
        with pytest.raises(ExecutionTrap):
            short.run("main")
        assert short.cycles <= total - 1


class TestTrapDetailParity:
    """Simulator faults carry the same kind + detail strings as the
    interpreter engines, so trap reports are byte-identical whether a
    program faults in tier 1, tier 2, tier 3, or under --target."""

    DIV = """
    int %main() {
    entry:
            %q = div int 9, 0
            ret int %q
    }
    """
    OVERFLOW = """
    int %main() {
    entry:
            %r = add int 2147483647, 1 !ee(true)
            ret int %r
    }
    """

    def _interpreter_trap(self, source):
        module = parse_module(source)
        verify_module(module)
        with pytest.raises(ExecutionTrap) as info:
            Interpreter(module).run("main", [])
        return info.value

    def _simulator_trap(self, source, target_name):
        module = parse_module(source)
        verify_module(module)
        native = translate_module(module, make_target(target_name))
        simulator = MachineSimulator(native, module)
        with pytest.raises(ExecutionTrap) as info:
            simulator.run("main")
        return info.value

    @pytest.mark.parametrize("target", ("x86", "sparc"))
    @pytest.mark.parametrize("source", (DIV, OVERFLOW),
                             ids=("div", "overflow"))
    def test_fault_reports_identical(self, source, target):
        expected = self._interpreter_trap(source)
        got = self._simulator_trap(source, target)
        assert got.trap_number == expected.trap_number
        assert got.detail == expected.detail
        assert str(got) == str(expected)


class TestFramesAndArguments:
    def test_frame_isolation_across_recursion(self):
        """Each frame's slots are private: recursion over locals."""
        source = """
        int %sum_to(int %n) {
        entry:
                %slot = alloca int
                store int %n, int* %slot
                %z = seteq int %n, 0
                br bool %z, label %stop, label %rec
        stop:
                ret int 0
        rec:
                %m = sub int %n, 1
                %rest = call int %sum_to(int %m)
                %mine = load int* %slot
                %r = add int %mine, %rest
                ret int %r
        }
        """
        for target_name in ("x86", "sparc"):
            simulator, value = _simulate(source, target_name, "sum_to",
                                         [10])
            assert value == 55, target_name

    def test_run_arguments_cross_both_conventions(self):
        source = """
        int %pick(int %a, int %b, int %c, int %d, int %e, int %f,
                  int %g, int %h, int %i) {
        entry:
                %x = sub int %i, %a
                ret int %x
        }
        """
        args = [10, 0, 0, 0, 0, 0, 0, 0, 99]
        for target_name in ("x86", "sparc"):
            _sim, value = _simulate(source, target_name, "pick", args)
            assert value == 89, target_name

    def test_negative_arguments_through_stack_slots(self):
        """Stack argument slots are signed-widened consistently — the
        big-endian SPARC path is the regression risk here."""
        source = """
        long %tail(long %a, long %b, long %c, long %d, long %e,
                   long %f, long %g, long %h) {
        entry:
                %x = add long %g, %h
                ret long %x
        }
        """
        args = [0, 0, 0, 0, 0, 0, -1000000, 7]
        for target_name in ("x86", "sparc"):
            _sim, value = _simulate(source, target_name, "tail", args)
            assert value == -999993, target_name

    def test_instruction_counter(self):
        simulator, _ = _simulate("""
        int %main() {
        entry:
                ret int 0
        }
        """)
        assert simulator.instructions_executed >= 2  # mov + ret


class TestInstrCostMemo:
    def test_cost_memoized_on_instruction(self):
        """instr_cost fills the per-instruction memo on first use and
        serves it afterwards — no opcode re-dispatch per cycle."""
        from repro.execution.machine_sim import instr_cost
        from repro.targets.machine import MachineInstr

        instr = MachineInstr("addl", Semantics.ALU, [])
        first = instr_cost(instr)
        assert first > 0
        assert instr.cost == first
        # The memo is authoritative: a pre-set cost is returned as-is.
        instr.cost = 999
        assert instr_cost(instr) == 999

    def test_fresh_instruction_has_no_cost(self):
        from repro.targets.machine import MachineInstr

        assert MachineInstr("nop", Semantics.NOP).cost is None


class TestFrameEntryHoisting:
    """_MachineFrame hoists the machine-function attributes it needs
    at frame entry; the step loop must never chase
    ``frame.machine.<attr>`` per executed instruction."""

    LOOP = """
    int %spin(int %n) {
    entry:
            br label %loop
    loop:
            %i = phi int [0, %entry], [%next, %loop]
            %next = add int %i, 1
            %done = setge int %next, %n
            br bool %done, label %exit, label %loop
    exit:
            ret int %next
    }
    int %main() {
    entry:
            %a = call int %spin(int 200)
            %b = call int %spin(int 200)
            %r = add int %a, %b
            ret int %r
    }
    """

    class _CountingMachine:
        """Attribute-access-counting proxy around a MachineFunction."""

        def __init__(self, machine):
            object.__setattr__(self, "_machine", machine)
            object.__setattr__(self, "reads", {})

        def __getattr__(self, name):
            reads = object.__getattribute__(self, "reads")
            reads[name] = reads.get(name, 0) + 1
            return getattr(object.__getattribute__(self, "_machine"),
                           name)

    def test_no_per_step_machine_attribute_chasing(self):
        module = parse_module(self.LOOP)
        verify_module(module)
        native = translate_module(module, make_target("x86"))
        counting = self._CountingMachine(native.functions["spin"])
        native.functions["spin"] = counting
        simulator = MachineSimulator(native, module)
        value, _status = simulator.run("main")
        assert value == 400
        # %spin executes ~1200 instructions across two activations;
        # machine-function attribute reads must scale with the two
        # frame entries (plus the per-call SMC staleness check), not
        # with the step count.
        assert simulator.instructions_executed > 1000
        reads = counting.reads
        assert reads.get("blocks", 0) <= 6, reads
        assert reads.get("frame_size", 0) <= 6, reads


class TestStaleTranslationDetection:
    def test_smc_version_mismatch_forces_retranslation(self):
        module = parse_module("""
        int %f() {
        entry:
                ret int 1
        }
        int %g() {
        entry:
                ret int 2
        }
        int %main() {
        entry:
                %r = call int %f()
                ret int %r
        }
        """)
        from repro.llee.jit import FunctionJIT
        from repro.targets import NativeModule

        target = make_target("x86")
        jit = FunctionJIT(module, target)
        native = jit.translate_all()
        # Host-side SMC between runs.
        module.get_function("f").replace_body_from(
            module.get_function("g"))
        simulator = MachineSimulator(native, module,
                                     resolver=jit.translate)
        value, _ = simulator.run("main")
        assert value == 2  # stale translation detected, retranslated
