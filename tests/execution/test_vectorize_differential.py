"""``--vectorize`` differential conformance: vectorized builds of every
benchsuite workload (and hand-written vector kernels) must be
observationally identical to the reference interpreter on every tier —
fast engine, forced tier 2, superblock+OSR, async compilation, and
tier-3 hosted native on both simulated targets and both hosted
backends — and the vectorized module must agree with the scalar build
on everything a program can observe (return value, output, exit
status; step counts legitimately shrink)."""

import pytest

from test_fastpath_differential import (
    CONFIGS,
    _close_tier2,
    _make_interpreter,
    _outcome,
    _tier3_cache,
    run_both,
    run_both_sanitized,
)

from repro.benchsuite import SUITE_ORDER, load_workload
from repro.execution import ExecutionTrap, Interpreter
from repro.minic import compile_source

SCALE = 0.05

#: The numeric rows BENCH_vector.json reports on; art is the one with
#: bit-exactly vectorizable loops, the others pin the "vectorize is a
#: no-op here" contract.
NUMERIC_ROWS = ("art", "equake", "ammp", "ft")


def _vector_module(name, scale=SCALE):
    workload = load_workload(name, scale)
    return compile_source(workload.source, name,
                          optimization_level=2, vectorize=True)


def _scalar_module(name, scale=SCALE):
    workload = load_workload(name, scale)
    return compile_source(workload.source, name, optimization_level=2)


class TestBenchsuiteVectorized:
    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_workload_fast_and_tier2(self, name):
        """All 17 workloads compiled with --vectorize: reference, fast,
        and forced tier 2 agree byte for byte (including steps)."""
        module = _vector_module(name)
        reference = _outcome(module, engine="reference")
        assert reference[0] == "ok"
        assert _outcome(module, engine="fast") == reference
        assert _outcome(module, engine="fast", tier2=True) == reference

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_workload_matches_scalar_build(self, name):
        """The vectorized build must be indistinguishable from the
        scalar one to the program itself: same return value, output,
        and exit status (steps may shrink — that is the payoff)."""
        vector = _outcome(_vector_module(name), engine="reference")
        scalar = _outcome(_scalar_module(name), engine="reference")
        assert vector[0] == scalar[0] == "ok"
        # (kind, return_value, output, steps, exit_status)
        assert vector[1] == scalar[1]
        assert vector[2] == scalar[2]
        assert vector[4] == scalar[4]
        assert vector[3] <= scalar[3]


class TestNumericRowsFullLadder:
    @pytest.mark.parametrize("name", NUMERIC_ROWS)
    def test_every_config(self, name):
        """The BENCH_vector.json rows across the whole tier ladder."""
        outcomes = {}
        for label, engine, tier2 in CONFIGS:
            module = _vector_module(name)
            outcomes[label] = _outcome(module, engine=engine,
                                       tier2=tier2)
        for label in outcomes:
            assert outcomes[label] == outcomes["reference"], label
        assert outcomes["reference"][0] == "ok"

    @pytest.mark.parametrize("target", ["x86", "sparc"])
    def test_art_tier3_step_backend(self, target):
        """art (the workload that actually vectorizes) under tier-3's
        one-instruction step oracle on both targets: the scalarized
        vector lowering must match the reference interpreter exactly,
        same as the default threaded backend."""
        module = _vector_module("art")
        reference = _outcome(module, engine="reference")
        cache = _tier3_cache(module, target, backend="step")
        interpreter = Interpreter(module, engine="fast", tier2=cache)
        try:
            result = interpreter.run("main", [])
            outcome = ("ok", result.return_value, result.output,
                       result.steps, result.exit_status)
        except ExecutionTrap as trap:
            outcome = ("trap", trap.trap_number, interpreter.steps)
        assert outcome == reference


_VEC_HEADER = """
target pointersize = 64
target endian = little
"""

#: All nine vector opcodes in one kernel over a global array, with a
#: remainder-carrying reduction — every configuration must agree.
_KERNEL_ASM = _VEC_HEADER + """
%data = global [8 x double] [ double 1.5, double 2.5, double -3.0,
        double 4.0, double 0.25, double -1.0, double 8.0, double 0.5 ]
int %main() {
entry:
        %p = getelementptr [8 x double]* %data, long 0, long 0
        %q = getelementptr [8 x double]* %data, long 0, long 4
        %a = vload <4 x double>, double* %p
        %b = vload <4 x double>, double* %q
        %s = vadd <4 x double> %a, %b
        %d = vsub <4 x double> %a, %b
        %m = vmul <4 x double> %s, %d
        %c = vsplat <4 x double> 2.0
        %t = vmul <4 x double> %m, %c
        vstore <4 x double> %t, double* %p
        %r0 = vreduce.add double 0.0, <4 x double> %t
        %r1 = vreduce.min double %r0, <4 x double> %b
        %r2 = vreduce.max double %r1, <4 x double> %a
        %w = cast double %r2 to int
        ret int %w
}
"""

#: Integer lanes wrap exactly like scalar !ee arithmetic.
_INT_WRAP_ASM = _VEC_HEADER + """
%nums = global [4 x int] [ int 2147483647, int -2147483648,
        int 123456789, int -987654321 ]
int %main() {
entry:
        %p = getelementptr [4 x int]* %nums, long 0, long 0
        %a = vload <4 x int>, int* %p
        %two = vsplat <4 x int> 2
        %dbl = vmul <4 x int> %a, %two
        %sum = vadd <4 x int> %dbl, %a
        vstore <4 x int> %sum, int* %p
        %r = vreduce.add int 7, <4 x int> %sum
        ret int %r
}
"""

#: An out-of-range vload: the delivered memory fault (trap number and
#: step count) must be identical everywhere — including through the
#: bulk-transfer fast paths, which replay lane by lane on fault to
#: recover the exact faulting-lane address.
_FAULT_ASM = _VEC_HEADER + """
%edge = global [2 x double] [ double 1.0, double 2.0 ]
int %main() {
entry:
        %p = getelementptr [2 x double]* %edge, long 0, long 0
        %a = vload <4 x double>, double* %p
        %r = vreduce.add double 0.0, <4 x double> %a
        %w = cast double %r to int
        ret int %w
}
"""


class TestVectorKernelsEveryConfig:
    def test_all_opcodes_kernel(self):
        outcome = run_both(_KERNEL_ASM)
        assert outcome[0] == "ok"

    def test_integer_lanes_wrap(self):
        outcome = run_both(_INT_WRAP_ASM)
        assert outcome[0] == "ok"
        # 2*INT_MAX wraps, +INT_MAX wraps again: the scalar wrap chain.
        assert outcome[1] is not None

    def test_vector_fault_is_identical_everywhere(self):
        outcome = run_both(_FAULT_ASM)
        assert outcome[0] == "trap"

    def test_kernel_sanitized(self):
        outcome = run_both_sanitized(_KERNEL_ASM)
        assert outcome[0] == "ok"
