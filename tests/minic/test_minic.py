"""MiniC front-end tests: language semantics checked by execution."""

import pytest

from repro.execution import Interpreter
from repro.minic import MiniCSyntaxError, MiniCTypeError, compile_source
from repro.minic.lexer import tokenize
from repro.minic.parser import parse_program


def run(source: str, entry: str = "main", args=()):
    module = compile_source(source, "t")
    return Interpreter(module).run(entry, args)


def expr(expression: str, setup: str = "") -> object:
    return run("int main() { %s return %s; }"
               % (setup, expression)).return_value


class TestLexer:
    def test_numbers_and_suffixes(self):
        kinds = [(t.kind, t.text) for t in
                 tokenize("1 2u 3l 0x1F 2.5 1e3 7ul 'a' \"hi\\n\"")]
        assert kinds[:9] == [
            ("int", "1"), ("int", "2u"), ("int", "3l"),
            ("int", "0x1F"), ("float", "2.5"), ("float", "1e3"),
            ("int", "7ul"), ("char", "a"), ("string", "hi\n")]

    def test_comments(self):
        tokens = tokenize("a // line\n /* block\n */ b")
        assert [t.text for t in tokens[:2]] == ["a", "b"]

    def test_error_line(self):
        with pytest.raises(MiniCSyntaxError) as info:
            tokenize("ok\n`")
        assert info.value.line == 2


class TestExpressions:
    def test_precedence(self):
        assert expr("2 + 3 * 4") == 14
        assert expr("(2 + 3) * 4") == 20
        assert expr("10 - 4 - 3") == 3
        assert expr("1 << 3 | 1") == 9
        assert expr("6 & 3 ^ 1") == 3

    def test_c_division_and_modulo(self):
        assert expr("-7 / 2") == -3
        assert expr("-7 % 2") == -1

    def test_comparisons_and_logic(self):
        assert expr("(3 < 4) && (4 <= 4) ? 1 : 0") == 1
        assert expr("(1 > 2) || (2 != 2) ? 1 : 0") == 0
        assert expr("!0 ? 5 : 6") == 5

    def test_short_circuit_effects(self):
        result = run("""
        int calls = 0;
        int bump() { calls = calls + 1; return 1; }
        int main() {
            int a = 0 && bump();
            int b = 1 || bump();
            return calls * 10 + a + b;
        }
        """)
        assert result.return_value == 1  # bump never ran

    def test_ternary_types(self):
        assert expr("1 ? 2.5 : 0.0 > 1.0 ? 1 : 0") in (1, 0, 2)  # parses
        assert run("int main() { double d = 1 ? 2.5 : 1.0;"
                   " return (int) d; }").return_value == 2

    def test_compound_assignment(self):
        assert expr("x", "int x = 10; x += 5; x *= 2; x -= 3; "
                         "x /= 2; x %= 10;") == 3

    def test_increment_decrement(self):
        result = run("""
        int main() {
            int x = 5;
            int a = x++;
            int b = ++x;
            int c = x--;
            int d = --x;
            return a * 1000 + b * 100 + c * 10 + d;
        }
        """)
        assert result.return_value == 5 * 1000 + 7 * 100 + 7 * 10 + 5

    def test_char_and_string(self):
        result = run("""
        int main() {
            char c = 'A';
            char* s = "Bc";
            return c * 10000 + s[0] * 100 + s[1];
        }
        """)
        assert result.return_value == 65 * 10000 + 66 * 100 + 99

    def test_sizeof(self):
        assert expr("(int) sizeof(int)") == 4
        assert expr("(int) sizeof(double)") == 8
        assert run("""
        struct P { int a; double b; };
        int main() { return (int) sizeof(struct P); }
        """).return_value == 16

    def test_hex_and_suffix_literals(self):
        assert expr("0xFF") == 255
        result = run("long main() { return 1l << 40; }")
        assert result.return_value == 1 << 40

    def test_unsigned_wraparound(self):
        result = run("""
        int main() {
            uint x = 0u;
            x = x - 1u;
            return (x > 1000u) ? 1 : 0;
        }
        """)
        assert result.return_value == 1


class TestControlFlow:
    def test_nested_loops_break_continue(self):
        result = run("""
        int main() {
            int total = 0;
            int i;
            for (i = 0; i < 10; i++) {
                if (i == 7) break;
                if (i % 2 == 0) continue;
                int j = 0;
                while (j < i) {
                    total += j;
                    j++;
                }
            }
            return total;
        }
        """)
        expected = sum(sum(range(i)) for i in (1, 3, 5))
        assert result.return_value == expected

    def test_do_while(self):
        result = run("""
        int main() {
            int n = 0;
            do { n++; } while (n < 5);
            int m = 100;
            do { m++; } while (false);
            return n * 1000 + m;
        }
        """)
        assert result.return_value == 5 * 1000 + 101

    def test_switch_fallthrough_and_default(self):
        source = """
        int classify(int x) {
            int r = 0;
            switch (x) {
                case 1: r += 1;
                case 2: r += 2; break;
                case 3: r += 3; break;
                default: r = 99; break;
            }
            return r;
        }
        int main() { return classify(%d); }
        """
        assert run(source % 1).return_value == 3   # falls into case 2
        assert run(source % 2).return_value == 2
        assert run(source % 3).return_value == 3
        assert run(source % 8).return_value == 99

    def test_early_return_and_dead_code(self):
        result = run("""
        int main() {
            return 42;
            return 7;
        }
        """)
        assert result.return_value == 42


class TestPointersAndStructs:
    def test_pointer_arithmetic(self):
        result = run("""
        int main() {
            int data[5];
            int i;
            for (i = 0; i < 5; i++) data[i] = i * i;
            int* p = data;
            p = p + 2;
            int a = *p;           // 4
            p++;
            int b = *p;           // 9
            int* q = data;
            long gap = (long) (p - q);  // 3
            return a * 100 + b * 10 + (int) gap;
        }
        """)
        assert result.return_value == 4 * 100 + 9 * 10 + 3

    def test_address_of_and_out_params(self):
        result = run("""
        void divide(int a, int b, int* q, int* r) {
            *q = a / b;
            *r = a % b;
        }
        int main() {
            int q; int r;
            divide(17, 5, &q, &r);
            return q * 10 + r;
        }
        """)
        assert result.return_value == 32

    def test_struct_members_and_arrow(self):
        result = run("""
        struct Point { int x; int y; };
        struct Rect { struct Point min; struct Point max; };
        int area(struct Rect* r) {
            int w = r->max.x - r->min.x;
            int h = r->max.y - r->min.y;
            return w * h;
        }
        int main() {
            struct Rect r;
            r.min.x = 1; r.min.y = 2;
            r.max.x = 5; r.max.y = 8;
            return area(&r);
        }
        """)
        assert result.return_value == 24

    def test_struct_array_fields(self):
        result = run("""
        struct Row { int cells[4]; };
        int main() {
            struct Row rows[3];
            int i; int j;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    rows[i].cells[j] = i * 10 + j;
            return rows[2].cells[3];
        }
        """)
        assert result.return_value == 23

    def test_linked_list_on_heap(self):
        result = run("""
        struct N { int v; struct N* next; };
        int main() {
            struct N* head = null;
            int i;
            for (i = 1; i <= 4; i++) {
                struct N* n = (struct N*) malloc(sizeof(struct N));
                n->v = i;
                n->next = head;
                head = n;
            }
            int sum = 0;
            while (head != null) {
                sum = sum * 10 + head->v;
                struct N* d = head;
                head = head->next;
                free((char*) d);
            }
            return sum;
        }
        """)
        assert result.return_value == 4321

    def test_multidimensional_arrays(self):
        result = run("""
        int grid[3][4];
        int main() {
            int i; int j;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    grid[i][j] = i * 4 + j;
            int total = 0;
            for (i = 0; i < 3; i++)
                for (j = 0; j < 4; j++)
                    total += grid[i][j];
            return total;
        }
        """)
        assert result.return_value == sum(range(12))

    def test_array_parameters_decay(self):
        result = run("""
        int total(int values[4], int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) s += values[i];
            return s;
        }
        int main() {
            int data[4];
            data[0] = 1; data[1] = 2; data[2] = 3; data[3] = 4;
            return total(data, 4);
        }
        """)
        assert result.return_value == 10


class TestFloats:
    def test_double_math_and_casts(self):
        result = run("""
        int main() {
            double a = 7.0;
            double b = 2.0;
            double q = a / b;
            int truncated = (int) q;
            float narrow = (float) 0.1;
            double widened = (double) narrow;
            int differs = (widened != 0.1) ? 1 : 0;
            return truncated * 10 + differs;
        }
        """)
        assert result.return_value == 31  # trunc(3.5)*10 + differs(1)

    def test_int_double_promotion(self):
        result = run("""
        int main() {
            double r = 3 / 2.0;
            return (int) (r * 100.0);
        }
        """)
        assert result.return_value == 150


class TestDiagnostics:
    def test_undefined_variable(self):
        with pytest.raises(MiniCTypeError):
            compile_source("int main() { return nope; }")

    def test_undefined_function(self):
        with pytest.raises(MiniCTypeError):
            compile_source("int main() { return missing(1); }")

    def test_arity_mismatch(self):
        with pytest.raises(MiniCTypeError):
            compile_source("""
            int f(int a, int b) { return a + b; }
            int main() { return f(1); }
            """)

    def test_unknown_struct_field(self):
        with pytest.raises(MiniCTypeError):
            compile_source("""
            struct P { int x; };
            int main() { struct P p; return p.z; }
            """)

    def test_break_outside_loop(self):
        with pytest.raises(MiniCTypeError):
            compile_source("int main() { break; return 0; }")

    def test_return_type_checked(self):
        with pytest.raises(MiniCTypeError):
            compile_source("void f() { return 3; } int main() { return 0; }")

    def test_syntax_error_reports_line(self):
        with pytest.raises(MiniCSyntaxError) as info:
            parse_program("int main() {\n    int x = ;\n}")
        assert info.value.line == 2


class TestCompilerPatterns:
    def test_emits_alloca_per_local(self):
        """The paper's front-end pattern: locals are allocas."""
        module = compile_source("""
        int main() {
            int a = 1;
            double b = 2.0;
            return a;
        }
        """, "p")
        main = module.get_function("main")
        allocas = [i for i in main.instructions()
                   if i.opcode == "alloca"]
        assert len(allocas) == 2

    def test_member_access_is_typed_gep(self):
        module = compile_source("""
        struct P { int x; double y; };
        double get(struct P* p) { return p->y; }
        """, "p")
        get = module.get_function("get")
        geps = [i for i in get.instructions()
                if i.opcode == "getelementptr"]
        assert len(geps) == 1
        assert geps[0].constant_indices() == (0, 1)

    def test_no_implicit_coercion_casts_emitted(self):
        module = compile_source("""
        double mix(int a, double b) { return a + b; }
        """, "p")
        mix = module.get_function("mix")
        casts = [i for i in mix.instructions() if i.opcode == "cast"]
        assert casts  # the int operand is explicitly converted


class TestVABIFlags:
    """Section 3.2: pointer size and endianness exposed to source."""

    SOURCE = """
    int main() {
        if (__pointer_size == 8 && !__big_endian) return 1;
        if (__pointer_size == 4 && !__big_endian) return 2;
        return 3;
    }
    """

    def test_flags_reflect_target_config(self):
        for pointer_size, expected in ((8, 1), (4, 2)):
            module = compile_source(self.SOURCE, "abi",
                                    pointer_size=pointer_size)
            result = Interpreter(module).run("main")
            assert result.return_value == expected
        module = compile_source(self.SOURCE, "abi", pointer_size=8,
                                endianness="big")
        assert Interpreter(module).run("main").return_value == 3

    def test_flags_fold_to_constants(self):
        """The flags are compile-time constants: the dead arm folds
        away entirely at -O2."""
        module = compile_source(self.SOURCE, "abi", pointer_size=8,
                                optimization_level=2)
        main = module.get_function("main")
        assert len(main.blocks) == 1  # everything folded to `ret int 1`


class TestBraceInitializers:
    def test_global_array_with_zero_padding(self):
        result = run("""
        int weights[4] = {10, 20, 30};
        int main() {
            return weights[0] + weights[1] + weights[2] + weights[3];
        }
        """)
        assert result.return_value == 60

    def test_inferred_length(self):
        result = run("""
        int data[] = {1, 2, 3, 4, 5};
        int main() { return (int) sizeof(int) * 0 + data[4]; }
        """)
        assert result.return_value == 5

    def test_nested_global_arrays(self):
        result = run("""
        int table[2][3] = { {1, 2, 3}, {4, 5, 6} };
        int main() { return table[1][2] * 10 + table[0][0]; }
        """)
        assert result.return_value == 61

    def test_global_struct_initializer(self):
        result = run("""
        struct P { int x; double y; };
        struct P origin = { 7, 2.5 };
        int main() { return origin.x * 10 + (int) origin.y; }
        """)
        assert result.return_value == 72

    def test_local_array_tail_zeroed(self):
        result = run("""
        int main() {
            int local[5] = {9};
            return local[0] * 10 + local[1] + local[4];
        }
        """)
        assert result.return_value == 90

    def test_local_struct_and_nested(self):
        result = run("""
        struct P { int x; int y; };
        int main() {
            struct P p = { 3, 4 };
            int grid[2][2] = { {1, 2}, {3} };
            return p.x * 100 + p.y * 10 + grid[1][1] + grid[1][0];
        }
        """)
        assert result.return_value == 343

    def test_too_many_initializers_rejected(self):
        with pytest.raises(MiniCTypeError):
            compile_source("int a[2] = {1, 2, 3}; int main(){return 0;}")

    def test_inferred_size_requires_braces(self):
        with pytest.raises(MiniCTypeError):
            compile_source("int a[] = 5; int main(){return 0;}")
