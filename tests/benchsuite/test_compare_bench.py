"""The perf-regression guard (benchmarks/compare_bench.py)."""

import importlib.util
import io
import os

_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                     "benchmarks", "compare_bench.py")
_spec = importlib.util.spec_from_file_location("compare_bench", _PATH)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def _doc(speedups, scale=0.2, diverged=False):
    return {
        "diverged": diverged,
        "programs": [{"program": name, "speedup": speedup,
                      "scale": scale}
                     for name, speedup in speedups.items()],
    }


def _run(current, baseline, tolerance=0.15):
    out = io.StringIO()
    code = compare_bench.compare(current, baseline,
                                 tolerance=tolerance, out=out)
    return code, out.getvalue()


class TestCompareBench:
    def test_within_tolerance_passes(self):
        code, text = _run(_doc({"ft": 10.0, "ks": 9.0}),
                          _doc({"ft": 11.0, "ks": 9.5}))
        assert code == 0
        assert "OK: within tolerance" in text

    def test_regression_fails(self):
        code, text = _run(_doc({"ft": 5.0, "ks": 5.0}),
                          _doc({"ft": 10.0, "ks": 10.0}))
        assert code == 1
        assert "FAIL: speedup regressed" in text

    def test_improvement_warns_but_passes(self):
        code, text = _run(_doc({"ft": 20.0, "ks": 20.0}),
                          _doc({"ft": 10.0, "ks": 10.0}))
        assert code == 0
        assert "WARN" in text and "refreshing" in text

    def test_gate_is_on_geomean_not_single_programs(self):
        # One noisy program dips >15% but the geomean holds.
        code, _text = _run(_doc({"ft": 14.0, "ks": 7.5}),
                           _doc({"ft": 12.0, "ks": 10.0}))
        assert code == 0

    def test_divergence_always_fails(self):
        code, text = _run(_doc({"ft": 10.0}, diverged=True),
                          _doc({"ft": 10.0}))
        assert code == 1
        assert "diverged" in text

    def test_scale_mismatch_is_an_error(self):
        code, text = _run(_doc({"ft": 10.0}, scale=0.05),
                          _doc({"ft": 10.0}, scale=0.2))
        assert code == 1
        assert "scale differs" in text

    def test_restricts_to_common_programs(self):
        current = _doc({"ft": 10.0})
        baseline = _doc({"ft": 10.0, "mystery": 100.0})
        code, text = _run(current, baseline)
        assert code == 0
        assert "mystery" not in text

    def test_no_common_programs_fails(self):
        code, text = _run(_doc({"a": 1.0}), _doc({"b": 1.0}))
        assert code == 1
        assert "no programs in common" in text


def _first_run_doc(speedups, scale=0.05):
    return {
        "programs": [{"program": name, "speedup": 10.0, "scale": scale,
                      "first_run_speedup": value}
                     for name, value in speedups.items()],
    }


def _run_first(current, baseline, tolerance=0.15):
    out = io.StringIO()
    code = compare_bench.compare_first_run(current, baseline,
                                           tolerance=tolerance, out=out)
    return code, out.getvalue()


class TestFirstRunGate:
    """The compile-inclusive cold-start gate (--first-run-baseline):
    per-program async-vs-sync first-run speedups, so the comparison is
    machine-independent and CI can gate against a committed file."""

    def test_matching_speedup_passes(self):
        code, text = _run_first(_first_run_doc({"ft": 1.5, "ks": 1.3}),
                                _first_run_doc({"ft": 1.5, "ks": 1.3}))
        assert code == 0
        assert "OK: first-run latency within tolerance" in text

    def test_lost_first_run_speedup_fails(self):
        # Async cold starts fell back to sync-level latency: the
        # steady-state gate cannot see it, this one must.
        code, text = _run_first(_first_run_doc({"ft": 1.0, "ks": 1.0}),
                                _first_run_doc({"ft": 1.5, "ks": 1.3}))
        assert code == 1
        assert "FAIL: first-run latency regressed" in text

    def test_improved_first_run_warns_but_passes(self):
        code, text = _run_first(_first_run_doc({"ft": 2.5, "ks": 2.0}),
                                _first_run_doc({"ft": 1.5, "ks": 1.3}))
        assert code == 0
        assert "WARN" in text and "refreshing" in text

    def test_gate_is_on_geomean_not_single_programs(self):
        code, _text = _run_first(_first_run_doc({"ft": 1.1, "ks": 1.7}),
                                 _first_run_doc({"ft": 1.4, "ks": 1.3}))
        assert code == 0

    def test_scale_mismatch_is_an_error(self):
        code, text = _run_first(_first_run_doc({"ft": 1.5}, scale=0.2),
                                _first_run_doc({"ft": 1.5}, scale=0.05))
        assert code == 1
        assert "scale differs" in text

    def test_sync_only_run_fails_the_gate(self):
        # A run without --async-compile has no first-run speedups to
        # gate — that is a configuration error, not a silent pass.
        code, text = _run_first(_doc({"ft": 10.0}), _doc({"ft": 10.0}))
        assert code == 1
        assert "no first-run speedups" in text
