"""Benchmark-suite registry and workload-generator tests."""

import pytest

from repro.benchsuite import (
    PAPER_TABLE2,
    SUITE_ORDER,
    load_suite,
    load_workload,
)


class TestRegistry:
    def test_seventeen_rows_like_the_paper(self):
        assert len(SUITE_ORDER) == 17
        assert set(SUITE_ORDER) == set(PAPER_TABLE2)

    def test_paper_numbers_sanity(self):
        """Spot-check the transcription of Table 2."""
        anagram = PAPER_TABLE2["anagram"]
        assert anagram.loc == 647
        assert anagram.llva_insts == 776
        assert anagram.x86_ratio == 2.34
        gap = PAPER_TABLE2["gap"]
        assert gap.llva_insts == 111482
        assert gap.translate_ratio == 0.129

    def test_paper_size_ratio_band(self):
        """'roughly 1.3x to 2x for the larger programs.'"""
        for name in ("parser", "ammp", "vpr", "twolf", "crafty",
                     "vortex", "gap"):
            row = PAPER_TABLE2[name]
            assert 1.2 <= row.size_ratio <= 2.1, name

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            load_workload("nonexistent")


class TestGenerators:
    def test_sources_are_deterministic(self):
        a = load_workload("mcf", 0.3).source
        b = load_workload("mcf", 0.3).source
        assert a == b

    def test_scale_changes_parameters(self):
        small = load_workload("anagram", 0.1).source
        large = load_workload("anagram", 1.0).source
        assert small != large

    def test_loc_grows_monotonically_through_suite(self):
        """The suite spans small to large programs, like the paper's
        progression from anagram (647 LOC) to gap (71 kLOC)."""
        workloads = load_suite(0.2)
        first_five = sum(w.loc for w in workloads[:5]) / 5
        last_five = sum(w.loc for w in workloads[-5:]) / 5
        assert last_five > first_five

    def test_subset_loading(self):
        subset = load_suite(0.1, names=["ks", "gap"])
        assert [w.name for w in subset] == ["ks", "gap"]

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_every_workload_compiles(self, name):
        from repro.ir import verify_module
        from repro.minic import compile_source

        workload = load_workload(name, 0.05)
        module = compile_source(workload.source, name)
        verify_module(module)
        assert "main" in module.functions

    @pytest.mark.parametrize("name", ["anagram", "vortex", "gzip"])
    def test_workloads_self_check(self, name):
        """Workloads with built-in round-trip verification must report
        success (ok=1 markers / no INTEGRITY FAILURE)."""
        from repro.execution import Interpreter
        from repro.minic import compile_source

        workload = load_workload(name, 0.08)
        module = compile_source(workload.source, name,
                                optimization_level=1)
        result = Interpreter(module).run("main")
        assert "FAILURE" not in result.output
        if name == "gzip":
            assert "ok=1" in result.output


class TestGoldenOutputs:
    """Workload behaviour is pinned: any change to a generator, the
    front-end, or the interpreter that alters results shows up here."""

    def test_all_workloads_match_golden(self):
        import json
        import os

        from repro.execution import Interpreter
        from repro.minic import compile_source

        path = os.path.join(os.path.dirname(__file__),
                            "golden_outputs.json")
        with open(path) as handle:
            golden = json.load(handle)
        assert set(golden) == set(SUITE_ORDER)
        for name in SUITE_ORDER:
            workload = load_workload(name, 0.08)
            module = compile_source(workload.source, name,
                                    optimization_level=1)
            result = Interpreter(module).run("main")
            assert result.return_value == golden[name]["return_value"], \
                name
            assert result.output == golden[name]["output"], name
