"""Counted-loop recognition: Loop.induction_variable / Loop.trip_count."""

from repro.analysis import LoopInfo
from repro.asm import parse_module
from repro.ir import verify_module


def _loop(source: str, name: str = "f"):
    module = parse_module(source)
    verify_module(module)
    info = LoopInfo(module.get_function(name))
    loops = info.all_loops()
    assert len(loops) == 1
    return loops[0]


COUNTED = """
int %f(int %n) {
entry:
        br label %header
header:
        %i = phi int [ 0, %entry ], [ %inext, %body ]
        %acc = phi int [ 0, %entry ], [ %accnext, %body ]
        %cond = setlt int %i, %n
        br bool %cond, label %body, label %exit
body:
        %accnext = add int %acc, %i
        %inext = add int %i, 1
        br label %header
exit:
        ret int %acc
}
"""


class TestInductionVariable:
    def test_canonical_counted_loop(self):
        loop = _loop(COUNTED)
        induction = loop.induction_variable()
        assert induction is not None
        assert induction.phi.name == "i"
        assert induction.stride == 1
        assert induction.init.value == 0
        assert induction.step.name == "inext"

    def test_accumulator_phi_not_mistaken_for_counter(self):
        # %acc is also int-typed with an in-loop add, but its step adds a
        # varying value (%i), so only %i qualifies.
        loop = _loop(COUNTED)
        induction = loop.induction_variable()
        assert induction.phi.name == "i"

    def test_two_counters_is_ambiguous(self):
        loop = _loop("""
        int %f(int %n) {
        entry:
                br label %header
        header:
                %i = phi int [ 0, %entry ], [ %inext, %body ]
                %j = phi int [ 9, %entry ], [ %jnext, %body ]
                %cond = setlt int %i, %n
                br bool %cond, label %body, label %exit
        body:
                %inext = add int %i, 1
                %jnext = add int %j, 2
                br label %header
        exit:
                ret int %j
        }
        """)
        assert loop.induction_variable() is None

    def test_pointer_chase_has_no_induction(self):
        loop = _loop("""
        %struct.N = type { int, %struct.N* }
        int %f(%struct.N* %head) {
        entry:
                br label %header
        header:
                %p = phi %struct.N* [ %head, %entry ], [ %next, %body ]
                %cond = setne %struct.N* %p, null
                br bool %cond, label %body, label %exit
        body:
                %np = getelementptr %struct.N* %p, long 0, ubyte 1
                %next = load %struct.N** %np
                br label %header
        exit:
                ret int 0
        }
        """)
        assert loop.induction_variable() is None

    def test_variant_init_rejected(self):
        # The "init" edge value must be invariant w.r.t. the loop it
        # enters; here the inner loop's init is computed per outer
        # iteration, which is still invariant for the *inner* loop.
        module = parse_module("""
        int %f(int %n) {
        entry:
                br label %outer
        outer:
                %o = phi int [ 0, %entry ], [ %onext, %inner.exit ]
                %ocond = setlt int %o, %n
                br bool %ocond, label %inner, label %exit
        inner:
                %i = phi int [ %o, %outer ], [ %inext, %inner ]
                %icond = setlt int %i, %n
                %inext = add int %i, 1
                br bool %icond, label %inner, label %inner.exit
        inner.exit:
                %onext = add int %o, 1
                br label %outer
        exit:
                ret int 0
        }
        """)
        verify_module(module)
        info = LoopInfo(module.get_function("f"))
        inner = [lp for lp in info.all_loops()
                 if lp.header.name == "inner"][0]
        induction = inner.induction_variable()
        assert induction is not None
        assert induction.init.name == "o"


class TestTripCount:
    def test_symbolic_trip_structure(self):
        loop = _loop(COUNTED)
        trips = loop.trip_count()
        assert trips is not None
        assert trips.relation == "lt"
        assert trips.bound.name == "n"
        assert trips.constant_trips() is None  # %n is symbolic

    def test_constant_trips(self):
        loop = _loop("""
        int %f() {
        entry:
                br label %header
        header:
                %i = phi int [ 3, %entry ], [ %inext, %body ]
                %cond = setlt int %i, 10
                br bool %cond, label %body, label %exit
        body:
                %inext = add int %i, 2
                br label %header
        exit:
                ret int %i
        }
        """)
        trips = loop.trip_count()
        assert trips is not None
        assert trips.constant_trips() == 4  # i = 3, 5, 7, 9

    def test_zero_trips_when_bound_below_init(self):
        loop = _loop("""
        int %f() {
        entry:
                br label %header
        header:
                %i = phi int [ 5, %entry ], [ %inext, %body ]
                %cond = setlt int %i, 5
                br bool %cond, label %body, label %exit
        body:
                %inext = add int %i, 1
                br label %header
        exit:
                ret int %i
        }
        """)
        assert loop.trip_count().constant_trips() == 0

    def test_varying_bound_rejected(self):
        loop = _loop("""
        int %f(int* %p) {
        entry:
                br label %header
        header:
                %i = phi int [ 0, %entry ], [ %inext, %body ]
                %n = load int* %p
                %cond = setlt int %i, %n
                br bool %cond, label %body, label %exit
        body:
                %inext = add int %i, 1
                br label %header
        exit:
                ret int %i
        }
        """)
        assert loop.trip_count() is None

    def test_wrong_direction_rejected(self):
        # Counting up but exiting on setgt: not the canonical shape.
        loop = _loop("""
        int %f(int %n) {
        entry:
                br label %header
        header:
                %i = phi int [ 0, %entry ], [ %inext, %body ]
                %cond = setgt int %i, %n
                br bool %cond, label %body, label %exit
        body:
                %inext = add int %i, 1
                br label %header
        exit:
                ret int %i
        }
        """)
        assert loop.trip_count() is None

    def test_downward_loop(self):
        loop = _loop("""
        int %f(int %n) {
        entry:
                br label %header
        header:
                %i = phi int [ %n, %entry ], [ %inext, %body ]
                %cond = setgt int %i, 0
                br bool %cond, label %body, label %exit
        body:
                %inext = add int %i, -1
                br label %header
        exit:
                ret int %i
        }
        """)
        trips = loop.trip_count()
        assert trips is not None
        assert trips.relation == "gt"
        assert trips.induction.stride == -1
