"""Analysis tests: alias analysis, loops, liveness, call graph, DSA."""

import pytest

from repro.analysis import (
    AliasAnalysis,
    AliasResult,
    CallGraph,
    DSGraph,
    LivenessInfo,
    LoopInfo,
    ModuleDSA,
    underlying_object,
)
from repro.analysis.dsa import DSNode
from repro.asm import parse_module
from repro.ir import verify_module


def _function(source: str, name: str):
    module = parse_module(source)
    verify_module(module)
    return module, module.get_function(name)


class TestAliasAnalysis:
    def test_distinct_allocas_no_alias(self):
        _module, f = _function("""
        int %f() {
        entry:
                %a = alloca int
                %b = alloca int
                store int 1, int* %a
                store int 2, int* %b
                %v = load int* %a
                ret int %v
        }
        """, "f")
        insts = list(f.instructions())
        a, b = insts[0], insts[1]
        aa = AliasAnalysis()
        assert aa.alias(a, b) == AliasResult.NO_ALIAS
        assert aa.alias(a, a) == AliasResult.MUST_ALIAS

    def test_distinct_struct_fields_no_alias(self):
        _module, f = _function("""
        %struct.P = type { int, int }
        int %f(%struct.P* %p) {
        entry:
                %f0 = getelementptr %struct.P* %p, long 0, ubyte 0
                %f1 = getelementptr %struct.P* %p, long 0, ubyte 1
                store int 1, int* %f0
                %v = load int* %f1
                ret int %v
        }
        """, "f")
        insts = list(f.instructions())
        f0, f1 = insts[0], insts[1]
        aa = AliasAnalysis()
        assert aa.alias(f0, f1) == AliasResult.NO_ALIAS

    def test_same_field_must_alias(self):
        _module, f = _function("""
        %struct.P = type { int, int }
        int %f(%struct.P* %p) {
        entry:
                %x = getelementptr %struct.P* %p, long 0, ubyte 1
                %y = getelementptr %struct.P* %p, long 0, ubyte 1
                store int 1, int* %x
                %v = load int* %y
                ret int %v
        }
        """, "f")
        insts = list(f.instructions())
        aa = AliasAnalysis()
        assert aa.alias(insts[0], insts[1]) == AliasResult.MUST_ALIAS

    def test_unknown_pointers_may_alias(self):
        _module, f = _function("""
        int %f(int* %p, int* %q) {
        entry:
                store int 1, int* %p
                %v = load int* %q
                ret int %v
        }
        """, "f")
        aa = AliasAnalysis()
        assert aa.alias(f.args[0], f.args[1]) == AliasResult.MAY_ALIAS

    def test_nonescaping_alloca_vs_argument(self):
        _module, f = _function("""
        int %f(int* %q) {
        entry:
                %a = alloca int
                store int 1, int* %a
                store int 2, int* %q
                %v = load int* %a
                ret int %v
        }
        """, "f")
        alloca = next(f.instructions())
        aa = AliasAnalysis()
        assert aa.alias(alloca, f.args[0]) == AliasResult.NO_ALIAS

    def test_escaped_alloca_may_alias_argument(self):
        _module, f = _function("""
        declare void %sink(int*)
        int %f(int* %q) {
        entry:
                %a = alloca int
                call void %sink(int* %a)
                store int 2, int* %q
                %v = load int* %a
                ret int %v
        }
        """, "f")
        alloca = next(f.instructions())
        aa = AliasAnalysis()
        assert aa.alias(alloca, f.args[0]) == AliasResult.MAY_ALIAS

    def test_tbaa_distinct_scalar_types(self):
        """LLVA's typed memory: an int* and a double* access cannot
        overlap in type-safe code (Section 3.3's alias enabler)."""
        _module, f = _function("""
        double %f(int* %p, double* %q) {
        entry:
                store int 1, int* %p
                %v = load double* %q
                ret double %v
        }
        """, "f")
        aa = AliasAnalysis()
        assert aa.alias(f.args[0], f.args[1]) == AliasResult.NO_ALIAS
        conservative = AliasAnalysis(use_tbaa=False)
        assert conservative.alias(f.args[0], f.args[1]) \
            == AliasResult.MAY_ALIAS

    def test_tbaa_defeated_by_int_cast(self):
        _module, f = _function("""
        double %f(ulong %addr, double* %q) {
        entry:
                %p = cast ulong %addr to int*
                store int 1, int* %p
                %v = load double* %q
                ret double %v
        }
        """, "f")
        cast = next(f.instructions())
        aa = AliasAnalysis()
        assert aa.alias(cast, f.args[1]) == AliasResult.MAY_ALIAS

    def test_underlying_object_traces_geps(self):
        _module, f = _function("""
        %struct.P = type { int, [4 x int] }
        int %f() {
        entry:
                %a = alloca %struct.P
                %g1 = getelementptr %struct.P* %a, long 0, ubyte 1
                %g2 = getelementptr [4 x int]* %g1, long 0, long 2
                %v = load int* %g2
                ret int %v
        }
        """, "f")
        insts = list(f.instructions())
        assert underlying_object(insts[2]) is insts[0]


class TestLoops:
    def test_simple_loop(self):
        _module, f = _function("""
        int %f(int %n) {
        entry:
                br label %header
        header:
                %i = phi int [ 0, %entry ], [ %i2, %body ]
                %c = setlt int %i, %n
                br bool %c, label %body, label %exit
        body:
                %i2 = add int %i, 1
                br label %header
        exit:
                ret int %i
        }
        """, "f")
        info = LoopInfo(f)
        assert len(info.top_level) == 1
        loop = info.top_level[0]
        assert loop.header.name == "header"
        assert {b.name for b in loop.blocks} == {"header", "body"}
        assert loop.depth == 1
        assert info.depth_of(f.entry_block) == 0
        assert loop.preheader().name == "entry"

    def test_nested_loops(self):
        _module, f = _function("""
        int %f(int %n) {
        entry:
                br label %outer
        outer:
                %i = phi int [ 0, %entry ], [ %i2, %outer_latch ]
                br label %inner
        inner:
                %j = phi int [ 0, %outer ], [ %j2, %inner ]
                %j2 = add int %j, 1
                %jc = setlt int %j2, %n
                br bool %jc, label %inner, label %outer_latch
        outer_latch:
                %i2 = add int %i, 1
                %ic = setlt int %i2, %n
                br bool %ic, label %outer, label %exit
        exit:
                ret int %i
        }
        """, "f")
        info = LoopInfo(f)
        assert len(info.all_loops()) == 2
        inner_block = [b for b in f.blocks if b.name == "inner"][0]
        inner = info.loop_for(inner_block)
        assert inner.depth == 2
        assert inner.parent is not None
        assert inner.parent.header.name == "outer"

    def test_exit_edges(self):
        _module, f = _function("""
        int %f(int %n) {
        entry:
                br label %header
        header:
                %i = phi int [ 0, %entry ], [ %i2, %header ]
                %i2 = add int %i, 1
                %c = setlt int %i2, %n
                br bool %c, label %header, label %exit
        exit:
                ret int %i2
        }
        """, "f")
        info = LoopInfo(f)
        edges = list(info.top_level[0].exit_edges())
        assert len(edges) == 1
        inside, outside = edges[0]
        assert inside.name == "header" and outside.name == "exit"


class TestLiveness:
    def test_loop_carried_values_live_through(self):
        _module, f = _function("""
        int %f(int %n, int %k) {
        entry:
                br label %loop
        loop:
                %i = phi int [ 0, %entry ], [ %i2, %loop ]
                %i2 = add int %i, %k
                %c = setlt int %i2, %n
                br bool %c, label %loop, label %done
        done:
                ret int %i2
        }
        """, "f")
        liveness = LivenessInfo(f)
        loop = [b for b in f.blocks if b.name == "loop"][0]
        live_out = liveness.live_out_of(loop)
        names = {v.name for v in live_out}
        assert "i2" in names      # used by phi on back edge and by done
        assert "k" in names       # read every iteration
        assert liveness.max_pressure() >= 3

    def test_dead_after_last_use(self):
        _module, f = _function("""
        int %f(int %a) {
        entry:
                %t = add int %a, 1
                br label %next
        next:
                ret int 5
        }
        """, "f")
        liveness = LivenessInfo(f)
        entry = f.entry_block
        assert not liveness.live_out_of(entry)


class TestCallGraph:
    SOURCE = """
    declare void %external(int)
    %table = constant [1 x void (int)*] [ void (int)* %taken ]
    void %taken(int %x) {
    entry:
            ret void
    }
    void %leaf(int %x) {
    entry:
            ret void
    }
    void %middle(int %x) {
    entry:
            call void %leaf(int %x)
            %p = getelementptr [1 x void (int)*]* %table, long 0, long 0
            %fp = load void (int)** %p
            call void %fp(int %x)
            ret void
    }
    void %top(int %x) {
    entry:
            call void %middle(int %x)
            call void %leaf(int %x)
            ret void
    }
    """

    def test_edges_and_address_taken(self):
        module = parse_module(self.SOURCE)
        graph = CallGraph(module)
        top = graph.node(module.get_function("top"))
        assert {f.name for f in top.callees} == {"middle", "leaf"}
        middle = graph.node(module.get_function("middle"))
        # Indirect call resolves to the compatible address-taken set.
        assert "taken" in {f.name for f in middle.callees}
        assert graph.address_taken_functions() == {"taken"}
        assert middle.calls_unknown

    def test_post_order_is_bottom_up(self):
        module = parse_module(self.SOURCE)
        graph = CallGraph(module)
        order = [f.name for f in graph.post_order()]
        assert order.index("leaf") < order.index("middle")
        assert order.index("middle") < order.index("top")

    def test_recursion_detection(self):
        module = parse_module("""
        int %even(int %n) {
        entry:
                %z = seteq int %n, 0
                br bool %z, label %y, label %no
        y:
                ret int 1
        no:
                %m = sub int %n, 1
                %r = call int %odd(int %m)
                ret int %r
        }
        int %odd(int %n) {
        entry:
                %m = sub int %n, 1
                %r = call int %even(int %m)
                ret int %r
        }
        int %plain(int %n) {
        entry:
                ret int %n
        }
        """)
        graph = CallGraph(module)
        assert graph.is_recursive(module.get_function("even"))
        assert graph.is_recursive(module.get_function("odd"))
        assert not graph.is_recursive(module.get_function("plain"))


class TestDSA:
    def test_disjoint_instances(self):
        """Two independent lists must land in two DS nodes — the
        'disjoint instances' the paper highlights (Section 5.1)."""
        _module, f = _function("""
        %struct.N = type { int, %struct.N* }
        declare sbyte* %malloc(uint)
        int %f() {
        entry:
                %r1 = call sbyte* %malloc(uint 16)
                %a = cast sbyte* %r1 to %struct.N*
                %r2 = call sbyte* %malloc(uint 16)
                %b = cast sbyte* %r2 to %struct.N*
                %an = getelementptr %struct.N* %a, long 0, ubyte 1
                store %struct.N* %a, %struct.N** %an
                %bn = getelementptr %struct.N* %b, long 0, ubyte 1
                store %struct.N* %b, %struct.N** %bn
                ret int 0
        }
        """, "f")
        graph = DSGraph(f)
        heap = graph.heap_instances()
        assert len(heap) == 2
        assert len(graph.local_heap_instances()) == 2

    def test_linked_nodes_unify(self):
        _module, f = _function("""
        %struct.N = type { int, %struct.N* }
        declare sbyte* %malloc(uint)
        int %f() {
        entry:
                %r1 = call sbyte* %malloc(uint 16)
                %a = cast sbyte* %r1 to %struct.N*
                %r2 = call sbyte* %malloc(uint 16)
                %b = cast sbyte* %r2 to %struct.N*
                %an = getelementptr %struct.N* %a, long 0, ubyte 1
                store %struct.N* %b, %struct.N** %an
                ret int 0
        }
        """, "f")
        graph = DSGraph(f)
        # a points to b: they form one data structure... but note the
        # *nodes* unify only through the points-to edge; the instance
        # count collapses to 1 once b is stored reachable from a.
        assert len(graph.heap_instances()) <= 2
        insts = list(f.instructions())
        a_cast, b_cast = insts[1], insts[3]
        assert graph.node_for(a_cast).pointee(graph) \
            .find() is graph.node_for(b_cast).find()

    def test_escaping_blocks_pool_eligibility(self):
        _module, f = _function("""
        declare sbyte* %malloc(uint)
        declare void %publish(sbyte*)
        int %f() {
        entry:
                %p = call sbyte* %malloc(uint 8)
                call void %publish(sbyte* %p)
                ret int 0
        }
        """, "f")
        graph = DSGraph(f)
        assert len(graph.heap_instances()) == 1
        assert graph.local_heap_instances() == []

    def test_module_dsa(self):
        module = parse_module("""
        declare sbyte* %malloc(uint)
        int %a() {
        entry:
                %p = call sbyte* %malloc(uint 8)
                ret int 0
        }
        int %b() {
        entry:
                %p = call sbyte* %malloc(uint 8)
                %q = call sbyte* %malloc(uint 8)
                ret int 0
        }
        """)
        dsa = ModuleDSA(module)
        assert dsa.total_heap_instances() == 3
