"""Virtual object code: encoding primitives and module round trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from helpers import build_factorial, build_loop_sum, build_quadtree_module
from repro.asm import parse_module
from repro.bitcode import (
    BitcodeError,
    read_module,
    write_module,
    write_module_with_stats,
)
from repro.bitcode.encoding import Reader, Writer
from repro.ir import print_module, verify_module


class TestPrimitiveEncodings:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_vbr_round_trip(self, value):
        writer = Writer()
        writer.vbr(value)
        assert Reader(writer.getvalue()).vbr() == value

    @given(st.integers(min_value=-2**62, max_value=2**62))
    def test_svbr_round_trip(self, value):
        writer = Writer()
        writer.svbr(value)
        assert Reader(writer.getvalue()).svbr() == value

    @given(st.text(max_size=60))
    def test_string_round_trip(self, text):
        writer = Writer()
        writer.string(text)
        assert Reader(writer.getvalue()).string() == text

    @given(st.integers(min_value=0, max_value=27),
           st.booleans(),
           st.integers(min_value=0, max_value=63),
           st.lists(st.integers(min_value=0, max_value=0x1FE),
                    max_size=2))
    def test_short_instruction_round_trip(self, opcode, ee, type_index,
                                          operands):
        writer = Writer()
        writer.instruction(opcode, ee, type_index, tuple(operands))
        assert writer.short_instructions == 1
        decoded = Reader(writer.getvalue()).instruction()
        assert decoded == (opcode, ee, type_index, tuple(operands))

    @given(st.integers(min_value=0, max_value=27),
           st.booleans(),
           st.integers(min_value=0, max_value=5000),
           st.lists(st.integers(min_value=0, max_value=100000),
                    max_size=6))
    def test_any_instruction_round_trip(self, opcode, ee, type_index,
                                        operands):
        writer = Writer()
        writer.instruction(opcode, ee, type_index, tuple(operands))
        decoded = Reader(writer.getvalue()).instruction()
        assert decoded == (opcode, ee, type_index, tuple(operands))

    def test_truncated_stream_detected(self):
        writer = Writer()
        writer.u32(12345)
        with pytest.raises(BitcodeError):
            Reader(writer.getvalue()[:2]).u32()


def _module_round_trip(module):
    verify_module(module)
    data = write_module(module, strip_names=False)
    module2 = read_module(data, module.name)
    verify_module(module2)
    assert print_module(module) == print_module(module2)
    return module2


class TestModuleRoundTrip:
    def test_factorial(self):
        _module_round_trip(build_factorial())

    def test_loops_and_memory(self):
        _module_round_trip(build_loop_sum())

    def test_recursive_types(self):
        module, _f = build_quadtree_module()
        _module_round_trip(module)

    def test_execution_equivalence(self):
        from repro.execution import Interpreter

        module = build_factorial()
        before = Interpreter(module).run("main")
        module2 = read_module(write_module(module, strip_names=True))
        after = Interpreter(module2).run("main")
        assert before.return_value == after.return_value

    def test_target_flags_preserved(self):
        module = build_factorial()
        module.pointer_size = 4
        module.endianness = "big"
        module2 = read_module(write_module(module))
        assert module2.pointer_size == 4
        assert module2.endianness == "big"

    def test_exceptions_enabled_bit_preserved(self):
        module = build_factorial()
        fac = module.get_function("fac")
        div_like = [i for i in fac.instructions() if i.opcode == "mul"][0]
        div_like.exceptions_enabled = True  # non-default
        module2 = read_module(write_module(module, strip_names=True))
        fac2 = module2.get_function("fac")
        mul2 = [i for i in fac2.instructions() if i.opcode == "mul"][0]
        assert mul2.exceptions_enabled

    def test_globals_and_aggregates(self):
        source = """
        %struct.Pair = type { int, double }
        %scalars = global int 42
        %negative = global long -7
        %fp = global double 2.5
        %flag = global bool true
        %vec = constant [3 x int] [ int 1, int 2, int 3 ]
        %pair = global %struct.Pair { int 9, double 1.5 }
        %zero = global [8 x int] zeroinitializer
        %table = constant [2 x int (int)*] [ int (int)* %id,
                                             int (int)* %id ]
        int %id(int %x) {
        entry:
                ret int %x
        }
        """
        module = parse_module(source)
        _module_round_trip(module)

    def test_bad_magic_rejected(self):
        with pytest.raises(BitcodeError):
            read_module(b"NOPE" + b"\x00" * 20)


class TestCompactness:
    def test_short_form_dominates(self):
        """The Section 3.1 design point: most instructions fit the
        fixed 32-bit form."""
        module = build_loop_sum(50)
        _data, stats = write_module_with_stats(module)
        assert stats.short_form_fraction > 0.6

    def test_stripping_names_shrinks_code(self):
        module, _f = build_quadtree_module()
        kept = write_module(module, strip_names=False)
        stripped = write_module(module, strip_names=True)
        assert len(stripped) < len(kept)
