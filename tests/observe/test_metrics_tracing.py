"""The repro.observe subsystem: metrics registry, span tracer, exports,
and the zero-overhead-when-disabled contract."""

import json

import pytest

from repro import observe
from repro.observe.metrics import Histogram, MetricsRegistry
from repro.observe.tracing import NULL_SPAN, Tracer


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 2)
        registry.inc("hits", 1, target="x86")
        registry.set_gauge("depth", 7)
        assert registry.value("hits") == 3
        assert registry.value("hits", target="x86") == 1
        assert registry.value("depth") == 7
        assert registry.value("never-written") == 0

    def test_histogram_stats(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.minimum == 0.5
        assert histogram.maximum == 20.0
        assert histogram.mean == pytest.approx(7.5)
        assert histogram.bucket_counts == [1, 1, 1]

    def test_label_values(self):
        registry = MetricsRegistry()
        registry.inc("pass.runs", 2, **{"pass": "gvn"})
        registry.inc("pass.runs", 1, **{"pass": "dce"})
        assert dict(registry.label_values("pass.runs", "pass")) == {
            "gvn": 2, "dce": 1}

    def test_histogram_buckets_are_cumulative(self):
        # Regression: to_dict used to drop empty buckets *before*
        # accumulating, producing non-monotonic Prometheus-style `le`
        # counts (a bucket could report fewer observations than a
        # smaller bound).
        histogram = Histogram(bounds=(1.0, 2.0, 5.0, 10.0))
        for value in (0.5, 0.7, 4.0, 4.5, 4.9):
            histogram.observe(value)
        buckets = histogram.to_dict()["buckets"]
        # Cumulative: le=1 sees 2, le=2 still sees 2 (bucket itself is
        # empty but must not disappear or reset), le=5 sees all 5.
        assert [(b["le"], b["count"]) for b in buckets] == [
            (1.0, 2), (2.0, 2), (5.0, 5), (10.0, 5), ("+Inf", 5)]
        counts = [b["count"] for b in buckets]
        assert counts == sorted(counts)
        assert buckets[-1] == {"le": "+Inf", "count": histogram.count}

    def test_histogram_overflow_lands_in_inf_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(100.0)
        buckets = histogram.to_dict()["buckets"]
        assert buckets == [{"le": "+Inf", "count": 1}]

    def test_empty_histogram_has_no_buckets(self):
        assert Histogram(bounds=(1.0,)).to_dict()["buckets"] == []

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.inc("a", 1, kind="x")
        registry.observe("lat", 0.25)
        snapshot = json.loads(registry.to_json())
        assert snapshot["counters"] == [
            {"name": "a", "labels": {"kind": "x"}, "value": 1}]
        assert snapshot["histograms"][0]["name"] == "lat"
        assert snapshot["histograms"][0]["value"]["count"] == 1


class TestTracer:
    def test_nesting_and_attrs(self):
        tracer = Tracer()
        with tracer.span("outer", phase="compile"):
            with tracer.span("inner") as inner:
                inner.set(changed=True)
        inner_rec, outer_rec = tracer.records
        assert inner_rec.name == "inner"
        assert inner_rec.parent_id == outer_rec.span_id
        assert inner_rec.attrs == {"changed": True}
        assert outer_rec.parent_id is None
        assert outer_rec.end >= inner_rec.end

    def test_exception_marks_span_and_unwinds_stack(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("boom"):
                    raise ValueError("no")
        assert [r.name for r in tracer.records] == ["boom", "outer"]
        assert tracer.records[0].attrs["error"] == "ValueError"
        assert tracer._stack == []

    def test_chrome_trace_format(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child", key="value"):
                pass
        trace = tracer.to_chrome_trace()
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert [e["name"] for e in events] == ["parent", "child"]
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert {"ts", "pid", "tid", "cat", "args"} <= set(event)
        assert events[1]["args"]["key"] == "value"
        assert events[1]["args"]["parent_span"] == events[0]["args"] \
            .get("parent_span", 1)

    def test_write_formats_by_suffix(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        tracer.write(str(chrome))
        tracer.write(str(jsonl))
        assert "traceEvents" in json.loads(chrome.read_text())
        lines = [json.loads(line)
                 for line in jsonl.read_text().splitlines()]
        assert lines[0]["name"] == "only"


class TestGlobalSwitchboard:
    def test_disabled_by_default_everything_is_noop(self):
        assert not observe.enabled()
        assert observe.span("x") is NULL_SPAN
        observe.counter("x")  # must not record
        observe.histogram("h", 1.0)
        assert observe.registry().value("x") == 0
        assert observe.registry().histogram("h") is None

    def test_capture_scopes_enablement(self):
        assert not observe.enabled()
        with observe.capture() as obs:
            assert observe.enabled()
            observe.counter("inside", 5)
            with observe.span("s"):
                pass
        assert not observe.enabled()
        assert obs.registry.value("inside") == 5
        assert [r.name for r in obs.tracer.records] == ["s"]
        # The global registry is back to the (empty) default.
        assert observe.registry().value("inside") == 0

    def test_capture_restores_prior_capture(self):
        with observe.capture() as outer:
            observe.counter("outer")
            with observe.capture() as inner:
                observe.counter("inner")
            observe.counter("outer")
        assert outer.registry.value("outer") == 2
        assert outer.registry.value("inner") == 0
        assert inner.registry.value("inner") == 1


class TestPipelineIntegration:
    def test_pass_manager_reports_through_registry(self):
        from repro.minic import compile_source
        from repro.transforms.pass_manager import optimize

        module = compile_source(
            "int main() { int x; x = 6; return x * 7; }")
        with observe.capture() as obs:
            report = optimize(module, level=2)
        # The per-run report is a view over its own registry...
        assert report.stats["mem2reg"].runs == 1
        assert report.total_changes >= 1
        # ...and the same records were mirrored globally.
        assert obs.registry.value("pass.runs",
                                  **{"pass": "mem2reg"}) == 1
        names = {r.name for r in obs.tracer.records}
        assert "pass.run" in names and "passes.pipeline" in names

    def test_jit_records_expansion_histogram(self):
        from helpers import build_factorial
        from repro.llee.jit import FunctionJIT
        from repro.targets import make_target

        module = build_factorial()
        with observe.capture() as obs:
            FunctionJIT(module, make_target("x86")).translate_all()
        assert obs.registry.value("jit.functions_translated",
                                  target="x86") == 2
        histogram = obs.registry.histogram("jit.expansion_ratio",
                                           target="x86")
        assert histogram is not None and histogram.count == 2
        assert histogram.mean > 1.0

    def test_llee_cache_counters(self):
        from helpers import build_factorial
        from repro.bitcode import write_module
        from repro.llee.manager import LLEE
        from repro.llee.storage import InMemoryStorage
        from repro.targets import make_target

        code = write_module(build_factorial())
        llee = LLEE(make_target("x86"), InMemoryStorage())
        with observe.capture() as obs:
            llee.run_executable(code)
            llee.run_executable(code)
        assert obs.registry.value("llee.cache.miss", target="x86") == 1
        assert obs.registry.value("llee.cache.hit", target="x86") == 1
        assert obs.registry.value("llee.cache.store", target="x86") == 1

    def test_interpreter_opcode_histogram(self):
        from helpers import build_factorial
        from repro.execution import Interpreter

        module = build_factorial()
        with observe.capture() as obs:
            result = Interpreter(module).run()
        assert result.return_value == 3628800
        assert obs.registry.value("run.steps",
                                  engine="interp") == result.steps
        opcodes = dict(obs.registry.label_values("interp.opcode",
                                                 "opcode"))
        assert opcodes.get("call", 0) >= 10
        assert sum(opcodes.values()) == result.steps

    def test_minic_compile_spans(self):
        from repro.minic import compile_source

        with observe.capture() as obs:
            compile_source("int main() { return 41; }",
                           optimization_level=1)
        names = [r.name for r in obs.tracer.records]
        for expected in ("minic.lex", "minic.parse", "minic.sema",
                         "minic.codegen", "minic.verify",
                         "minic.compile"):
            assert expected in names, names
