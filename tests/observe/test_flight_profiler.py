"""Flight recorder + step profiler: unit behaviour, engine parity,
and the exact-attribution contract (``repro profile`` totals must
reconcile with the engines' own ``tier1_steps``/``tier2_steps``)."""

import io
import json

from repro import observe
from repro.execution import Interpreter
from repro.execution.tier2 import Tier2Cache
from repro.minic import compile_source
from repro.observe import FlightRecorder, StepProfiler, validate_event

PROGRAM = """
int work(int n) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) acc = acc + i % 7;
    return acc;
}
int main() {
    int j;
    int total;
    total = 0;
    for (j = 0; j < 40; j = j + 1) total = total + work(25);
    return total % 97;
}
"""


def _module():
    return compile_source(PROGRAM, "flightprog.mc")


def _run(engine, tier2=False, superblocks=False, osr=False,
         profiler=None):
    module = _module()
    with observe.capture(flight=True) as obs:
        cache = False
        if tier2:
            cache = Tier2Cache(module, module.target_data,
                               threshold=1, superblocks=superblocks,
                               osr=osr, superblock_threshold=8,
                               osr_step_threshold=100)
        interpreter = Interpreter(module, engine=engine, tier2=cache,
                                  profiler=profiler)
        result = interpreter.run("main")
    return result, obs, interpreter


class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        recorder = FlightRecorder(capacity=4)
        for n in range(10):
            recorder.record("tier2.promote", function="f%d" % n,
                            reason="invocations")
        assert len(recorder.events()) == 4
        assert recorder.recorded == 10
        assert recorder.dropped == 6
        # Oldest fell off: the survivors are the last four.
        assert [e["function"] for e in recorder.events()] == \
            ["f6", "f7", "f8", "f9"]
        assert recorder.header()["dropped"] == 6

    def test_events_filter_by_type_and_prefix(self):
        recorder = FlightRecorder()
        recorder.record("run.begin", engine="fast", entry="main")
        recorder.record("tier2.promote", function="f",
                        reason="invocations")
        recorder.record("tier2.compile.begin", function="f")
        assert len(recorder.events("tier2.")) == 2
        assert len(recorder.events("tier2.promote")) == 1
        assert recorder.counts() == {"run.begin": 1,
                                     "tier2.compile.begin": 1,
                                     "tier2.promote": 1}

    def test_validate_event_rejects_malformed(self):
        recorder = FlightRecorder()
        good = recorder.record("tier2.deopt", function="f",
                               reason="trap")
        assert validate_event(good) == []
        bad_type = recorder.record("tier9.warp", function="f")
        assert any("unknown event type" in p
                   for p in validate_event(bad_type))
        missing = recorder.record("tier2.deopt", function="f")
        assert any("missing fields" in p
                   for p in validate_event(missing))
        assert len(recorder.validate()) == 2

    def test_jsonl_round_trip(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record("run.begin", engine="fast", entry="main")
        recorder.record("run.end", engine="fast", steps=7)
        path = tmp_path / "flight.jsonl"
        recorder.write_jsonl(str(path))
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert lines[0]["flight"] == 5
        assert lines[0]["recorded"] == 2
        assert [e["type"] for e in lines[1:]] == ["run.begin",
                                                  "run.end"]
        # Sequence numbers and timestamps are monotonic.
        assert lines[1]["seq"] < lines[2]["seq"]
        assert lines[1]["ts"] <= lines[2]["ts"]

    def test_autodump_fires_once(self):
        recorder = FlightRecorder()
        recorder.record("san.fault", kind="heap-overflow", detail="x")
        first, second = io.StringIO(), io.StringIO()
        recorder.autodump("sanitizer fault", stream=first)
        recorder.autodump("sanitizer fault", stream=second)
        assert "flight recorder (sanitizer fault)" in first.getvalue()
        assert "san.fault" in first.getvalue()
        assert second.getvalue() == ""


class TestStepProfiler:
    def test_nested_attribution(self):
        profiler = StepProfiler()
        profiler.push(0, "main", "tier1")
        profiler.push(10, "callee", "tier1")   # main ran 0..10
        profiler.pop(25)                       # callee ran 10..25
        profiler.flush(30)                     # main resumed 25..30
        rows = {(r["function"], r["tier"]): r["steps"]
                for r in profiler.function_rows()}
        assert rows == {("main", "tier1"): 15, ("callee", "tier1"): 15}
        assert profiler.total_steps() == 30

    def test_replace_models_osr(self):
        profiler = StepProfiler()
        profiler.push(0, "main", "tier1")
        profiler.replace(40, "main", "osr")    # OSR at step 40
        profiler.flush(100)
        assert profiler.tier1_steps() == 40
        assert profiler.tier2_steps() == 60
        assert profiler.tier_totals()["osr"]["steps"] == 60

    def test_speedscope_document_is_balanced(self):
        profiler = StepProfiler(record_stack=True)
        profiler.push(0, "main", "tier1")
        profiler.push(5, "callee", "tier2")
        profiler.pop(9)
        profiler.flush(12)
        doc = profiler.speedscope_document("unit test")
        events = doc["profiles"][0]["events"]
        opens = [e for e in events if e["type"] == "O"]
        closes = [e for e in events if e["type"] == "C"]
        assert len(opens) == len(closes) == 2
        assert doc["shared"]["frames"]
        at_values = [e["at"] for e in events]
        assert at_values == sorted(at_values)


class TestEngineParity:
    """Satellite: the same workload observed on every engine agrees on
    results and on the shared metric vocabulary, and every flight
    event any engine emits passes schema validation."""

    def test_results_and_shared_metrics_agree(self):
        runs = {
            "reference": _run("reference"),
            "fast": _run("fast"),
            "tier2": _run("fast", tier2=True),
            "tier2+sb+osr": _run("fast", tier2=True,
                                 superblocks=True, osr=True),
        }
        values = {name: run[0].return_value
                  for name, run in runs.items()}
        assert len(set(values.values())) == 1, values
        steps = {name: run[0].steps for name, run in runs.items()}
        assert len(set(steps.values())) == 1, steps
        # run.steps (summed over labels) agrees everywhere too.
        for name, (_result, obs, _interp) in runs.items():
            total = sum(v for metric, _l, v in obs.registry.counters()
                        if metric == "run.steps")
            assert total == steps[name], name

    def test_flight_events_validate_on_every_engine(self):
        for kwargs in ({"engine": "reference"}, {"engine": "fast"},
                       {"engine": "fast", "tier2": True,
                        "superblocks": True, "osr": True}):
            _result, obs, _interp = _run(**kwargs)
            assert obs.flight is not None
            assert obs.flight.validate() == []

    def test_jit_lifecycle_is_replayable_from_flight(self):
        _result, obs, interpreter = _run("fast", tier2=True,
                                         superblocks=True, osr=True)
        counts = obs.flight.counts()
        assert counts["run.begin"] == 1
        assert counts["run.end"] == 1
        stats = interpreter.tier2.stats
        assert counts["tier2.compile.begin"] == \
            counts["tier2.compile.end"]
        assert counts["tier2.compile.end"] >= \
            stats.functions_compiled > 0
        assert counts.get("tier2.promote", 0) >= 1
        assert counts.get("tier2.osr.enter", 0) == stats.osr_entries \
            > 0
        assert counts.get("tier2.osr.upgrade", 0) == \
            stats.osr_upgrades
        assert counts.get("tier2.superblock", 0) == \
            stats.superblocks_compiled > 0
        assert counts.get("tier2.side_exit", 0) == \
            interpreter.t2_side_exits
        # Ordering: a function's promotion precedes its compile end.
        events = obs.flight.events()
        first_promote = next(i for i, e in enumerate(events)
                             if e["type"] == "tier2.promote")
        first_compiled = next(i for i, e in enumerate(events)
                              if e["type"] == "tier2.compile.end")
        assert first_promote < first_compiled

    def test_profiler_totals_match_engine_accounting(self):
        profiler = StepProfiler()
        result, _obs, interpreter = _run("fast", tier2=True,
                                         superblocks=True, osr=True,
                                         profiler=profiler)
        assert profiler.total_steps() == result.steps
        assert profiler.tier2_steps() == interpreter.tier2_steps
        assert profiler.tier1_steps() == \
            result.steps - interpreter.tier2_steps
        tiers = profiler.tier_totals()
        assert "tier1" in tiers
        assert profiler.tier2_steps() > 0
        # The hot helper dominates and runs in tier 2.
        hottest = profiler.function_rows()[0]
        assert hottest["function"] == "work"
        assert hottest["tier"] in ("tier2", "superblock")

    def test_profiler_matches_reference_engine_too(self):
        profiler = StepProfiler()
        result, _obs, _interp = _run("reference", profiler=profiler)
        assert profiler.total_steps() == result.steps
        assert profiler.tier2_steps() == 0
