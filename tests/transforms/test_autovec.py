"""The loop autovectorizer: canonical-loop recognition, the rejection
taxonomy, bit-exact results against the scalar build, and the
``vec.*`` / ``autovec.loop`` observability surface."""

import pytest

from repro import observe
from repro.execution import Interpreter
from repro.minic import compile_source
from repro.transforms.autovec import VECTOR_LANES, LoopAutovectorizer

# Two canonical loops, one per function so each gets a dedicated
# preheader (the function entry block): a contiguous fill and an
# in-order reduction.
_CANONICAL = """
double a[100];
int fill() {
  int i;
  for (i = 0; i < 100; i = i + 1) { a[i] = 2.5; }
  return 0;
}
int total() {
  int i; double s = 0.0;
  for (i = 0; i < 100; i = i + 1) { s = s + a[i]; }
  return (int)s;
}
int main() { fill(); return total(); }
"""

#: source -> the one rejection reason its single loop must surface.
_REJECTIONS = {
    "non-unit-stride": """
int main() {
  double a[100]; int i;
  for (i = 0; i < 100; i = i + 2) { a[i] = 2.5; }
  return 0;
}""",
    "unsupported-op": """
int idx[100]; double b[100];
int main() {
  double a[100]; int i;
  for (i = 0; i < 100; i = i + 1) { a[i] = b[idx[i]]; }
  return 0;
}""",
    "may-alias": """
void axpy(double* x, double* y, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { x[i] = x[i] + y[i]; }
}
int main() { return 0; }""",
    "not-counted": """
int main() {
  int n = 100; int s = 0;
  while (n > 0) { s = s + n; n = n - 1; }
  return s;
}""",
    "multi-block": """
int main() {
  double a[100]; int i;
  for (i = 0; i < 100; i = i + 1) { if (i > 50) { a[i] = 1.0; } }
  return 0;
}""",
    "unsigned-iv": """
int main() {
  double a[100]; uint i;
  for (i = 0u; i < 100u; i = i + 1u) { a[i] = 2.5; }
  return 0;
}""",
    "reduction": """
double a[100]; double b[100];
int main() {
  int i; double s = 0.0;
  for (i = 0; i < 100; i = i + 1) { s = s + a[i] + b[i]; }
  return (int)s;
}""",
}


def _opcodes(module, function="main"):
    return [inst.opcode
            for block in module.get_function(function).blocks
            for inst in block.instructions]


def _run(module):
    result = Interpreter(module, engine="reference").run("main")
    return (result.return_value, result.output, result.exit_status)


class TestVectorization:
    def test_canonical_loops_vectorize(self):
        module = compile_source(_CANONICAL, "vec",
                                optimization_level=2, vectorize=True)
        fill = _opcodes(module, "fill")
        assert "vsplat" in fill    # broadcast of the stored constant
        assert "vstore" in fill    # contiguous fill
        total = _opcodes(module, "total")
        assert "vload" in total    # contiguous read
        assert "vreduce.add" in total  # in-order accumulator fold

    def test_vectorized_results_match_scalar_build(self):
        scalar = compile_source(_CANONICAL, "vec", optimization_level=2)
        vector = compile_source(_CANONICAL, "vec",
                                optimization_level=2, vectorize=True)
        assert _run(vector) == _run(scalar)

    def test_vectorized_run_takes_fewer_steps(self):
        scalar = compile_source(_CANONICAL, "vec", optimization_level=2)
        vector = compile_source(_CANONICAL, "vec",
                                optimization_level=2, vectorize=True)
        steps = {}
        for label, module in (("scalar", scalar), ("vector", vector)):
            steps[label] = Interpreter(module,
                                       engine="reference").run("main").steps
        assert steps["vector"] < steps["scalar"]

    def test_scalar_epilogue_handles_remainders(self):
        # 103 is not a multiple of the lane count: the last iterations
        # must run through the preserved scalar loop.
        source = """
int main() {
  double a[103]; int i;
  double s = 0.0;
  for (i = 0; i < 103; i = i + 1) { a[i] = (double)i; }
  for (i = 0; i < 103; i = i + 1) { s = s + a[i]; }
  return (int)s;
}
"""
        scalar = compile_source(source, "rem", optimization_level=2)
        vector = compile_source(source, "rem",
                                optimization_level=2, vectorize=True)
        assert _run(vector) == _run(scalar)
        assert _run(vector)[0] == sum(range(103))

    def test_off_by_default(self):
        module = compile_source(_CANONICAL, "vec", optimization_level=2)
        for function in ("fill", "total"):
            assert not any(op.startswith("v")
                           for op in _opcodes(module, function))

    def test_lane_count_bounds(self):
        with pytest.raises(ValueError):
            LoopAutovectorizer(lanes=1)
        with pytest.raises(ValueError):
            LoopAutovectorizer(lanes=64)


class TestRejectionTaxonomy:
    @pytest.mark.parametrize("reason", sorted(_REJECTIONS))
    def test_reason(self, reason):
        with observe.capture() as cap:
            compile_source(_REJECTIONS[reason], "rej",
                           optimization_level=2, vectorize=True)
        assert cap.registry.value("vec.loops_rejected", reason=reason) \
            == 1, cap.registry.counters("vec.")
        assert cap.registry.value("vec.loops_vectorized",
                                  function="main") == 0

    @pytest.mark.parametrize("reason", sorted(_REJECTIONS))
    def test_rejected_loops_still_run_correctly(self, reason):
        source = _REJECTIONS[reason]
        scalar = compile_source(source, "rej", optimization_level=2)
        vector = compile_source(source, "rej",
                                optimization_level=2, vectorize=True)
        assert _run(vector) == _run(scalar)


class TestObservability:
    def test_counters_and_flight_events(self):
        with observe.capture(flight=True) as cap:
            compile_source(_CANONICAL, "vec",
                           optimization_level=2, vectorize=True)
        for function in ("fill", "total"):
            assert cap.registry.value("vec.loops_vectorized",
                                      function=function) == 1
        events = cap.flight.events("autovec.loop")
        assert len(events) == 2
        assert {e["function"] for e in events} == {"fill", "total"}
        for event in events:
            assert observe.validate_event(event) == []
            assert event["vectorized"] is True
            assert event["lanes"] == VECTOR_LANES

    def test_rejection_flight_event_carries_reason(self):
        with observe.capture(flight=True) as cap:
            compile_source(_REJECTIONS["may-alias"], "rej",
                           optimization_level=2, vectorize=True)
        events = cap.flight.events("autovec.loop")
        assert len(events) == 1
        assert events[0]["vectorized"] is False
        assert events[0]["reason"] == "may-alias"

    def test_lane_counter_per_engine(self):
        module = compile_source(_CANONICAL, "vec",
                                optimization_level=2, vectorize=True)
        with observe.capture() as cap:
            Interpreter(module, engine="reference").run("main")
        lanes = cap.registry.value("vec.lanes", engine="interp")
        assert lanes > 0
        assert lanes % VECTOR_LANES == 0
