"""Constant folding correctness (property-tested against the
interpreter) and the module linker."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm import parse_module
from repro.execution import Interpreter
from repro.ir import IRBuilder, Module, print_module, types, verify_module
from repro.ir.values import const_bool, const_int
from repro.transforms import LinkError, fold_instruction, link_modules
from repro.transforms.constfold import simplify_instruction

_BINOPS = ("add", "sub", "mul", "div", "rem", "and", "or", "xor")
_RELS = ("eq", "ne", "lt", "gt", "le", "ge")


def _fold_via_builder(make_inst):
    """Build one instruction in a throwaway function, fold it."""
    module = Module("fold")
    f = module.create_function("f", types.function_of(types.INT, []))
    entry = f.add_block("entry")
    builder = IRBuilder(entry)
    inst = make_inst(builder)
    builder.ret(const_int(types.INT, 0))
    return inst


def _run_single(opcode, type_, a, b):
    """Execute `a <op> b` through the interpreter for ground truth."""
    module = Module("gt")
    f = module.create_function("main", types.function_of(type_, []))
    entry = f.add_block("entry")
    builder = IRBuilder(entry)
    value = builder.binary(opcode, const_int(type_, a),
                           const_int(type_, b))
    builder.ret(value)
    return Interpreter(module).run("main").return_value


class TestConstantFolding:
    @given(op=st.sampled_from(_BINOPS),
           a=st.integers(min_value=-2**31, max_value=2**31 - 1),
           b=st.integers(min_value=-2**31, max_value=2**31 - 1))
    def test_integer_fold_matches_interpreter(self, op, a, b):
        type_ = types.INT
        a, b = type_.wrap(a), type_.wrap(b)
        if op in ("div", "rem") and b == 0:
            b = 1
        inst = _fold_via_builder(
            lambda builder: builder.binary(
                op, const_int(type_, a), const_int(type_, b)))
        folded = fold_instruction(inst)
        assert folded is not None
        assert folded.value == _run_single(op, type_, a, b)

    @given(rel=st.sampled_from(_RELS),
           a=st.integers(min_value=-1000, max_value=1000),
           b=st.integers(min_value=-1000, max_value=1000))
    def test_comparison_fold(self, rel, a, b):
        inst = _fold_via_builder(
            lambda builder: builder.compare(
                rel, const_int(types.INT, a), const_int(types.INT, b)))
        folded = fold_instruction(inst)
        expected = {"eq": a == b, "ne": a != b, "lt": a < b,
                    "gt": a > b, "le": a <= b, "ge": a >= b}[rel]
        assert folded.value == expected

    def test_division_by_zero_not_folded(self):
        """A potential trap is an architecturally-visible effect."""
        inst = _fold_via_builder(
            lambda builder: builder.div(const_int(types.INT, 5),
                                        const_int(types.INT, 0)))
        assert fold_instruction(inst) is None

    @given(value=st.integers(min_value=-2**31, max_value=2**31 - 1))
    def test_cast_chain_fold(self, value):
        inst = _fold_via_builder(
            lambda builder: builder.cast(
                const_int(types.INT, value), types.SBYTE))
        folded = fold_instruction(inst)
        assert folded.value == types.SBYTE.wrap(value)

    def test_algebraic_identities(self):
        x = None

        def build(builder):
            nonlocal x
            x = builder.add(const_int(types.INT, 1),
                            const_int(types.INT, 2))
            # x is a constant-foldable value; test identities on a
            # non-constant by using an argument instead.
            return x

        module = Module("alg")
        f = module.create_function(
            "f", types.function_of(types.INT, [types.INT]), ["a"])
        entry = f.add_block("entry")
        builder = IRBuilder(entry)
        arg = f.args[0]
        plus_zero = builder.add(arg, const_int(types.INT, 0))
        assert simplify_instruction(plus_zero) is arg
        times_one = builder.mul(arg, const_int(types.INT, 1))
        assert simplify_instruction(times_one) is arg
        times_zero = builder.mul(arg, const_int(types.INT, 0))
        assert simplify_instruction(times_zero).value == 0
        minus_self = builder.sub(arg, arg)
        assert simplify_instruction(minus_self).value == 0
        xor_self = builder.xor(arg, arg)
        assert simplify_instruction(xor_self).value == 0
        builder.ret(arg)

    def test_float_zero_not_treated_as_identity(self):
        """x + 0.0 is NOT x for x = -0.0; the folder must not apply the
        integer identity to floats."""
        module = Module("fp")
        f = module.create_function(
            "f", types.function_of(types.DOUBLE, [types.DOUBLE]), ["x"])
        entry = f.add_block("entry")
        builder = IRBuilder(entry)
        from repro.ir.values import const_fp
        plus_zero = builder.add(f.args[0], const_fp(types.DOUBLE, 0.0))
        assert simplify_instruction(plus_zero) is None
        builder.ret(plus_zero)


class TestLinker:
    def _main_module(self):
        return parse_module("""
        declare int %helper(int)
        int %main() {
        entry:
                %r = call int %helper(int 20)
                ret int %r
        }
        """, "main-module")

    def _lib_module(self):
        return parse_module("""
        %factor = global int 3
        int %helper(int %x) {
        entry:
                %f = load int* %factor
                %r = mul int %x, %f
                ret int %r
        }
        """, "lib-module")

    def test_declaration_binds_to_definition(self):
        linked = link_modules([self._main_module(), self._lib_module()])
        verify_module(linked)
        result = Interpreter(linked).run("main")
        assert result.return_value == 60

    def test_order_independent(self):
        linked = link_modules([self._lib_module(), self._main_module()])
        result = Interpreter(linked).run("main")
        assert result.return_value == 60

    def test_duplicate_definitions_rejected(self):
        a = parse_module("int %f() {\nentry:\n ret int 1\n}\n")
        b = parse_module("int %f() {\nentry:\n ret int 2\n}\n")
        with pytest.raises(LinkError):
            link_modules([a, b])

    def test_signature_mismatch_rejected(self):
        a = parse_module("declare int %f(int)\n"
                         "int %main() {\nentry:\n"
                         " %r = call int %f(int 1)\n ret int %r\n}\n")
        b = parse_module("long %f(long %x) {\nentry:\n ret long %x\n}\n")
        with pytest.raises(LinkError):
            link_modules([a, b])

    def test_internal_symbols_do_not_collide(self):
        a = parse_module("""
        internal int %helper() {
        entry:
                ret int 1
        }
        int %user_a() {
        entry:
                %r = call int %helper()
                ret int %r
        }
        """)
        b = parse_module("""
        internal int %helper() {
        entry:
                ret int 2
        }
        int %user_b() {
        entry:
                %r = call int %helper()
                ret int %r
        }
        """)
        linked = link_modules([a, b])
        verify_module(linked)
        assert Interpreter(linked).run("user_a").return_value == 1
        interp = Interpreter(linked)
        assert interp.run("user_b").return_value == 2

    def test_vabi_flag_mismatch_rejected(self):
        a = Module("a", pointer_size=8)
        b = Module("b", pointer_size=4)
        with pytest.raises(LinkError):
            link_modules([a, b])

    def test_linked_whole_program_optimizes_further(self):
        """The paper's core pitch for link-time optimization: after
        linking, the helper inlines and its global folds away."""
        from repro.transforms import internalize, optimize

        linked = link_modules([self._main_module(), self._lib_module()])
        internalize(linked)
        before = Interpreter(linked).run("main")
        optimize(linked, link_time=True)
        verify_module(linked)
        after = Interpreter(linked).run("main")
        assert after.return_value == before.return_value == 60
        assert after.steps < before.steps
        assert "helper" not in linked.functions  # inlined + dead
