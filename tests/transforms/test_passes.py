"""Per-pass optimizer tests, each verifying both the transformation and
semantic preservation against the interpreter."""

import pytest

from repro.asm import parse_module
from repro.execution import Interpreter
from repro.ir import print_module, types, verify_module
from repro.ir.values import ConstantInt
from repro.transforms import (
    AggressiveDCE,
    DeadCodeElimination,
    FunctionInliner,
    GlobalOptimizer,
    GlobalValueNumbering,
    InstSimplify,
    LoopInvariantCodeMotion,
    PromoteMemoryToRegisters,
    SimplifyCFG,
    SparseConditionalConstantProp,
    internalize,
    optimize,
)


def _check_preserved(source: str, pass_obj, entry="main", args=(),
                     expect_change=True):
    module = parse_module(source)
    verify_module(module)
    before = Interpreter(module).run(entry, args)
    if hasattr(pass_obj, "run_module"):
        changed = pass_obj.run_module(module)
    else:
        changed = any(
            pass_obj.run(f) for f in list(module.functions.values())
            if not f.is_declaration)
    verify_module(module)
    after = Interpreter(module).run(entry, args)
    assert after.return_value == before.return_value
    assert after.output == before.output
    if expect_change:
        assert changed
    return module, before, after


class TestMem2Reg:
    SOURCE = """
    int %main(int %n) {
    entry:
            %x = alloca int
            store int 0, int* %x
            br label %loop
    loop:
            %v = load int* %x
            %v2 = add int %v, %n
            store int %v2, int* %x
            %c = setlt int %v2, 100
            br bool %c, label %loop, label %done
    done:
            %r = load int* %x
            ret int %r
    }
    """

    def test_promotes_and_preserves(self):
        module, before, after = _check_preserved(
            self.SOURCE, PromoteMemoryToRegisters(), args=[7])
        main = module.get_function("main")
        opcodes = {i.opcode for i in main.instructions()}
        assert "alloca" not in opcodes
        assert "load" not in opcodes
        assert "phi" in opcodes
        assert after.steps < before.steps

    def test_escaped_alloca_not_promoted(self):
        module = parse_module("""
        declare void %print_int(int)
        void %taker(int* %p) {
        entry:
                %v = load int* %p
                call void %print_int(int %v)
                ret void
        }
        int %main() {
        entry:
                %x = alloca int
                store int 5, int* %x
                call void %taker(int* %x)
                %r = load int* %x
                ret int %r
        }
        """)
        PromoteMemoryToRegisters().run(module.get_function("main"))
        verify_module(module)
        main = module.get_function("main")
        assert any(i.opcode == "alloca" for i in main.instructions())

    def test_uninitialized_read_becomes_undef(self):
        module = parse_module("""
        int %main(bool %c) {
        entry:
                %x = alloca int
                br bool %c, label %set, label %skip
        set:
                store int 9, int* %x
                br label %skip
        skip:
                %v = load int* %x
                ret int %v
        }
        """)
        PromoteMemoryToRegisters().run(module.get_function("main"))
        verify_module(module)
        # Defined path still yields 9.
        assert Interpreter(module).run("main", [True]).return_value == 9


class TestSCCP:
    def test_propagates_through_branches(self):
        source = """
        int %main() {
        entry:
                %a = add int 2, 3
                %c = seteq int %a, 5
                br bool %c, label %yes, label %no
        yes:
                %v1 = mul int %a, 10
                br label %done
        no:
                br label %done
        done:
                %r = phi int [ %v1, %yes ], [ 0, %no ]
                ret int %r
        }
        """
        module, _b, _a = _check_preserved(
            source, SparseConditionalConstantProp())
        ret = module.get_function("main").blocks[-1].terminator
        # After SCCP + the phi folding, the return value is literal 50.
        text = print_module(module)
        assert "50" in text

    def test_unreachable_arm_does_not_pollute(self):
        source = """
        int %main() {
        entry:
                br bool true, label %live, label %dead
        live:
                br label %merge
        dead:
                br label %merge
        merge:
                %v = phi int [ 7, %live ], [ 8, %dead ]
                ret int %v
        }
        """
        module, _b, after = _check_preserved(
            source, SparseConditionalConstantProp())
        assert after.return_value == 7

    def test_loop_carried_not_overfolded(self):
        source = """
        int %main(int %n) {
        entry:
                br label %loop
        loop:
                %i = phi int [ 0, %entry ], [ %i2, %loop ]
                %i2 = add int %i, 1
                %c = setlt int %i2, %n
                br bool %c, label %loop, label %done
        done:
                ret int %i2
        }
        """
        module = parse_module(source)
        SparseConditionalConstantProp().run(module.get_function("main"))
        verify_module(module)
        assert Interpreter(module).run("main", [5]).return_value == 5


class TestGVNAndDCE:
    def test_common_subexpressions_merged(self):
        source = """
        int %main(int %a, int %b) {
        entry:
                %x = add int %a, %b
                %y = add int %a, %b
                %p = mul int %x, %y
                %q = mul int %x, %x
                %r = sub int %p, %q
                ret int %r
        }
        """
        module, _b, _a = _check_preserved(source, GlobalValueNumbering(),
                                          args=[3, 4])
        main = module.get_function("main")
        adds = [i for i in main.instructions() if i.opcode == "add"]
        assert len(adds) == 1

    def test_commutative_matching(self):
        source = """
        int %main(int %a, int %b) {
        entry:
                %x = add int %a, %b
                %y = add int %b, %a
                %r = sub int %x, %y
                ret int %r
        }
        """
        module, _b, after = _check_preserved(
            source, GlobalValueNumbering(), args=[3, 4])
        assert after.return_value == 0

    def test_redundant_load_elimination(self):
        source = """
        int %main() {
        entry:
                %p = alloca int
                store int 42, int* %p
                %v1 = load int* %p
                %v2 = load int* %p
                %r = add int %v1, %v2
                ret int %r
        }
        """
        module, _b, _a = _check_preserved(source, GlobalValueNumbering())
        main = module.get_function("main")
        loads = [i for i in main.instructions() if i.opcode == "load"]
        assert len(loads) == 0  # store-to-load forwarding killed both

    def test_clobbering_store_blocks_forwarding(self):
        source = """
        int %main(int* %unknown) {
        entry:
                %p = alloca int
                store int 1, int* %p
                store int 9, int* %unknown
                %v = load int* %p
                ret int %v
        }
        """
        module = parse_module(source)
        GlobalValueNumbering().run(module.get_function("main"))
        verify_module(module)
        main = module.get_function("main")
        # %unknown may alias %p?  No - %p is a non-escaping alloca, so
        # forwarding is still legal here; the interesting part is it
        # must remain *correct*.  Run both ways with unknown == p is
        # impossible (p is function-local), so value must be 1.
        interp = Interpreter(module)
        slot = interp.memory.malloc(8)
        assert interp.run("main", [slot]).return_value == 1

    def test_dce_keeps_enabled_traps(self):
        source = """
        int %main() {
        entry:
                %dead = add int 1, 2
                %trap = div int 1, 0
                ret int 7
        }
        """
        module = parse_module(source)
        DeadCodeElimination().run(module.get_function("main"))
        verify_module(module)
        opcodes = [i.opcode for i in
                   module.get_function("main").instructions()]
        assert "add" not in opcodes   # dead, removed
        assert "div" in opcodes       # potential trap, kept

    def test_dce_removes_masked_trap(self):
        source = """
        int %main() {
        entry:
                %quiet = div int 1, 0 !ee(false)
                ret int 7
        }
        """
        module = parse_module(source)
        DeadCodeElimination().run(module.get_function("main"))
        opcodes = [i.opcode for i in
                   module.get_function("main").instructions()]
        assert "div" not in opcodes

    def test_adce_kills_dead_phi_cycles(self):
        source = """
        int %main(int %n) {
        entry:
                br label %loop
        loop:
                %dead = phi int [ 0, %entry ], [ %dead2, %loop ]
                %i = phi int [ 0, %entry ], [ %i2, %loop ]
                %dead2 = add int %dead, 1
                %i2 = add int %i, 1
                %c = setlt int %i2, %n
                br bool %c, label %loop, label %done
        done:
                ret int %i2
        }
        """
        module, _b, _a = _check_preserved(source, AggressiveDCE(),
                                          args=[5])
        main = module.get_function("main")
        phis = [i for i in main.instructions() if i.opcode == "phi"]
        assert len(phis) == 1  # the dead cycle is gone


class TestSimplifyCFG:
    def test_constant_branch_folds(self):
        source = """
        int %main() {
        entry:
                br bool true, label %a, label %b
        a:
                ret int 1
        b:
                ret int 2
        }
        """
        module, _b, after = _check_preserved(source, SimplifyCFG())
        assert after.return_value == 1
        assert len(module.get_function("main").blocks) == 1

    def test_block_merging(self):
        source = """
        int %main() {
        entry:
                br label %next
        next:
                %v = add int 1, 2
                br label %last
        last:
                ret int %v
        }
        """
        module, _b, _a = _check_preserved(source, SimplifyCFG())
        assert len(module.get_function("main").blocks) == 1

    def test_forwarder_removal_migrates_phis(self):
        source = """
        int %main(bool %c) {
        entry:
                br bool %c, label %fwd, label %other
        fwd:
                br label %merge
        other:
                br label %merge
        merge:
                %v = phi int [ 10, %fwd ], [ 20, %other ]
                ret int %v
        }
        """
        module, _b, _a = _check_preserved(source, SimplifyCFG(),
                                          args=[True])
        assert Interpreter(module).run("main", [True]).return_value == 10
        assert Interpreter(module).run("main", [False]).return_value == 20


class TestLICM:
    SOURCE = """
    int %main(int %n, int %a, int %b) {
    entry:
            br label %loop
    loop:
            %i = phi int [ 0, %entry ], [ %i2, %loop ]
            %s = phi int [ 0, %entry ], [ %s2, %loop ]
            %inv = mul int %a, %b
            %s2 = add int %s, %inv
            %i2 = add int %i, 1
            %c = setlt int %i2, %n
            br bool %c, label %loop, label %done
    done:
            ret int %s2
    }
    """

    def test_hoists_invariant_mul(self):
        module, before, after = _check_preserved(
            self.SOURCE, LoopInvariantCodeMotion(), args=[10, 3, 4])
        main = module.get_function("main")
        loop = [b for b in main.blocks if b.name == "loop"][0]
        # The invariant mul left the loop (the entry block is already a
        # valid preheader here).
        assert not any(i.opcode == "mul" for i in loop.instructions)
        assert any(i.opcode == "mul"
                   for i in main.entry_block.instructions)
        assert after.steps < before.steps

    def test_invariant_load_with_loop_store_not_hoisted(self):
        source = """
        int %main(int* %p, int* %q, int %n) {
        entry:
                br label %loop
        loop:
                %i = phi int [ 0, %entry ], [ %i2, %loop ]
                %v = load int* %p
                store int %i, int* %q
                %i2 = add int %i, 1
                %c = setlt int %i2, %n
                br bool %c, label %loop, label %done
        done:
                %r = load int* %p
                ret int %r
        }
        """
        module = parse_module(source)
        LoopInvariantCodeMotion().run(module.get_function("main"))
        verify_module(module)
        # %q may alias %p (both incoming pointers): load stays put.
        loop_blocks = [b for b in module.get_function("main").blocks
                       if b.name and b.name.startswith("loop")]
        assert any(i.opcode == "load"
                   for b in loop_blocks for i in b.instructions)


class TestInterprocedural:
    def test_inliner(self):
        source = """
        int %helper(int %x) {
        entry:
                %r = mul int %x, 3
                ret int %r
        }
        int %main() {
        entry:
                %a = call int %helper(int 5)
                %b = call int %helper(int 7)
                %r = add int %a, %b
                ret int %r
        }
        """
        module, _b, after = _check_preserved(source, FunctionInliner())
        main = module.get_function("main")
        assert not any(i.opcode == "call" for i in main.instructions())
        assert after.return_value == 36

    def test_inliner_skips_recursive(self):
        source = """
        int %fib(int %n) {
        entry:
                %small = setlt int %n, 2
                br bool %small, label %base, label %rec
        base:
                ret int %n
        rec:
                %a = sub int %n, 1
                %x = call int %fib(int %a)
                %b = sub int %n, 2
                %y = call int %fib(int %b)
                %r = add int %x, %y
                ret int %r
        }
        int %main() {
        entry:
                %r = call int %fib(int 10)
                ret int %r
        }
        """
        module, _b, after = _check_preserved(
            source, FunctionInliner(), expect_change=False)
        assert after.return_value == 55

    def test_globalopt_removes_dead_internals(self):
        source = """
        internal int %unused_helper(int %x) {
        entry:
                ret int %x
        }
        %unused_global = internal global int 9
        int %main() {
        entry:
                ret int 1
        }
        """
        module = parse_module(source)
        GlobalOptimizer().run_module(module)
        assert "unused_helper" not in module.functions
        assert "unused_global" not in module.globals

    def test_internalize_then_cleanup(self):
        source = """
        int %helper(int %x) {
        entry:
                %r = add int %x, 1
                ret int %r
        }
        int %main() {
        entry:
                %r = call int %helper(int 1)
                ret int %r
        }
        """
        module = parse_module(source)
        count = internalize(module)
        assert count == 1  # helper, not main
        # After inlining, the internalized helper is dead.
        FunctionInliner().run_module(module)
        GlobalOptimizer().run_module(module)
        assert "helper" not in module.functions

    def test_constant_global_load_folding(self):
        source = """
        %limit = constant int 64
        int %main() {
        entry:
                %v = load int* %limit
                %r = mul int %v, 2
                ret int %r
        }
        """
        module, _b, after = _check_preserved(source, GlobalOptimizer())
        assert after.return_value == 128
        main = module.get_function("main")
        assert not any(i.opcode == "load" for i in main.instructions())


class TestFullPipelines:
    def test_optimize_is_idempotent_semantically(self):
        source = """
        int %compute(int %n) {
        entry:
                %x = alloca int
                store int 0, int* %x
                br label %loop
        loop:
                %i = phi int [ 0, %entry ], [ %i2, %loop ]
                %xv = load int* %x
                %t = mul int %i, %i
                %x2 = add int %xv, %t
                store int %x2, int* %x
                %i2 = add int %i, 1
                %c = setlt int %i2, %n
                br bool %c, label %loop, label %done
        done:
                %r = load int* %x
                ret int %r
        }
        int %main() {
        entry:
                %r = call int %compute(int 12)
                ret int %r
        }
        """
        module = parse_module(source)
        before = Interpreter(module).run("main")
        optimize(module, level=2, verify_each=True)
        mid = Interpreter(module).run("main")
        optimize(module, link_time=True, verify_each=True)
        after = Interpreter(module).run("main")
        assert before.return_value == mid.return_value \
            == after.return_value
        assert after.steps <= mid.steps <= before.steps
