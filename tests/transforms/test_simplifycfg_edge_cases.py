"""SimplifyCFG edge cases: mbr folding, same-target branches, phi
edges under block surgery."""

import pytest

from repro.asm import parse_module
from repro.execution import Interpreter
from repro.ir import verify_module
from repro.transforms import SimplifyCFG


def _check(source: str, expected, entry="main", args=()):
    module = parse_module(source)
    verify_module(module)
    before = Interpreter(module).run(entry, args)
    assert before.return_value == expected
    SimplifyCFG().run(module.get_function(entry))
    verify_module(module)
    after = Interpreter(module).run(entry, args)
    assert after.return_value == expected
    return module


class TestMbrFolding:
    def test_constant_selector_picks_case(self):
        module = _check("""
        int %main() {
        entry:
                mbr int 2, label %other, [ int 1, label %one ],
                    [ int 2, label %two ]
        one:
                ret int 100
        two:
                ret int 200
        other:
                ret int -1
        }
        """, 200)
        main = module.get_function("main")
        assert all(i.opcode != "mbr" for i in main.instructions())
        assert len(main.blocks) == 1

    def test_constant_selector_falls_to_default(self):
        _check("""
        int %main() {
        entry:
                mbr int 9, label %other, [ int 1, label %one ]
        one:
                ret int 100
        other:
                ret int -1
        }
        """, -1)

    def test_mbr_with_phis_in_targets(self):
        _check("""
        int %main() {
        entry:
                mbr int 1, label %merge, [ int 1, label %a ],
                    [ int 2, label %b ]
        a:
                br label %merge
        b:
                br label %merge
        merge:
                %v = phi int [ 0, %entry ], [ 10, %a ], [ 20, %b ]
                ret int %v
        }
        """, 10)


class TestBranchEdgeCases:
    def test_both_arms_same_target_with_phi(self):
        """A conditional branch whose arms agree still has ONE phi edge
        per the verifier; folding must not duplicate or drop it."""
        _check("""
        int %main(bool %c) {
        entry:
                br bool %c, label %merge, label %merge
        merge:
                %v = phi int [ 7, %entry ]
                ret int %v
        }
        """, 7, args=[True])

    def test_constant_branch_into_phi(self):
        module = _check("""
        int %main() {
        entry:
                br bool false, label %a, label %b
        a:
                br label %merge
        b:
                br label %merge
        merge:
                %v = phi int [ 1, %a ], [ 2, %b ]
                ret int %v
        }
        """, 2)
        assert len(module.get_function("main").blocks) == 1

    def test_self_loop_not_merged_away(self):
        source = """
        int %main(int %n) {
        entry:
                br label %loop
        loop:
                %i = phi int [ 0, %entry ], [ %i2, %loop ]
                %i2 = add int %i, 1
                %c = setlt int %i2, %n
                br bool %c, label %loop, label %done
        done:
                ret int %i2
        }
        """
        module = parse_module(source)
        SimplifyCFG().run(module.get_function("main"))
        verify_module(module)
        assert Interpreter(module).run("main", [5]).return_value == 5

    def test_unreachable_cycle_removed(self):
        module = _check("""
        int %main() {
        entry:
                ret int 9
        island_a:
                br label %island_b
        island_b:
                br label %island_a
        }
        """, 9)
        assert len(module.get_function("main").blocks) == 1

    def test_chain_collapse(self):
        module = _check("""
        int %main() {
        entry:
                br label %b1
        b1:
                br label %b2
        b2:
                br label %b3
        b3:
                ret int 4
        }
        """, 4)
        assert len(module.get_function("main").blocks) == 1
