"""Pass-manager pipeline mechanics."""

import pytest

from repro.asm import parse_module
from repro.ir.module import Function, Module
from repro.ir.verifier import VerificationError
from repro.transforms import (
    FunctionPass,
    ModulePass,
    PassManager,
    link_time_pipeline,
    standard_pipeline,
)


class _CountingPass(FunctionPass):
    name = "counting"

    def __init__(self):
        self.seen = []

    def run(self, function: Function) -> bool:
        self.seen.append(function.name)
        return False


class _BreakingPass(FunctionPass):
    """Deliberately corrupts the IR to test verify_each."""

    name = "breaker"

    def run(self, function: Function) -> bool:
        function.entry_block.instructions.pop()  # drop the terminator
        return True


def _two_function_module() -> Module:
    return parse_module("""
    declare void %external()
    int %a() {
    entry:
            ret int 1
    }
    int %b() {
    entry:
            ret int 2
    }
    """)


class TestPassManager:
    def test_function_passes_skip_declarations(self):
        module = _two_function_module()
        counting = _CountingPass()
        PassManager([counting]).run(module)
        assert sorted(counting.seen) == ["a", "b"]

    def test_report_collects_stats(self):
        module = _two_function_module()
        report = PassManager(standard_pipeline(1)).run(module)
        assert "mem2reg" in report.stats
        assert report.stats["mem2reg"].runs == 1
        assert all(s.seconds >= 0 for s in report.stats.values())

    def test_verify_each_catches_breakage(self):
        module = _two_function_module()
        manager = PassManager([_BreakingPass()], verify_each=True)
        with pytest.raises(VerificationError):
            manager.run(module)

    def test_non_pass_rejected(self):
        module = _two_function_module()
        with pytest.raises(TypeError):
            PassManager([object()]).run(module)

    def test_pipeline_composition(self):
        assert standard_pipeline(0) == []
        o1_names = [p.name for p in standard_pipeline(1)]
        o2_names = [p.name for p in standard_pipeline(2)]
        assert o1_names[0] == "mem2reg"
        assert "gvn" not in o1_names
        assert "gvn" in o2_names and "licm" in o2_names \
            and "sccp" in o2_names
        lto_names = [p.name for p in link_time_pipeline()]
        assert lto_names[0] == "inline"
        assert "globalopt" in lto_names

    def test_total_changes(self):
        module = parse_module("""
        int %main() {
        entry:
                %x = alloca int
                store int 3, int* %x
                %v = load int* %x
                ret int %v
        }
        """)
        report = PassManager(standard_pipeline(1)).run(module)
        assert report.total_changes >= 1
