"""Additional optimizer edge cases: SCCP over mbr, GVN over geps,
ADCE vs escaped memory, inliner argument shadowing."""

import pytest

from repro.asm import parse_module
from repro.execution import Interpreter
from repro.ir import verify_module
from repro.transforms import (
    AggressiveDCE,
    FunctionInliner,
    GlobalValueNumbering,
    SimplifyCFG,
    SparseConditionalConstantProp,
)


def _run(module, entry="main", args=()):
    return Interpreter(module).run(entry, args)


class TestSCCPOverMbr:
    def test_constant_selector_prunes_cases(self):
        module = parse_module("""
        int %main() {
        entry:
                %x = add int 1, 1
                mbr int %x, label %other, [ int 1, label %one ],
                    [ int 2, label %two ]
        one:
                ret int 10
        two:
                ret int 20
        other:
                ret int -1
        }
        """)
        expected = _run(module).return_value
        SparseConditionalConstantProp().run(module.get_function("main"))
        SimplifyCFG().run(module.get_function("main"))
        verify_module(module)
        assert _run(module).return_value == expected == 20
        assert len(module.get_function("main").blocks) == 1

    def test_overdefined_selector_keeps_all_cases(self):
        module = parse_module("""
        int %main(int %x) {
        entry:
                mbr int %x, label %other, [ int 1, label %one ]
        one:
                ret int 10
        other:
                ret int -1
        }
        """)
        SparseConditionalConstantProp().run(module.get_function("main"))
        verify_module(module)
        assert _run(module, args=[1]).return_value == 10
        assert Interpreter(module).run("main", [5]).return_value == -1


class TestGVNOverGeps:
    def test_identical_geps_merge(self):
        module = parse_module("""
        %struct.P = type { int, int }
        int %main(%struct.P* %p) {
        entry:
                %a = getelementptr %struct.P* %p, long 0, ubyte 1
                %b = getelementptr %struct.P* %p, long 0, ubyte 1
                %va = load int* %a
                store int 9, int* %b
                %vb = load int* %a
                %r = add int %va, %vb
                ret int %r
        }
        """)
        main = module.get_function("main")
        GlobalValueNumbering().run(main)
        verify_module(module)
        geps = [i for i in main.instructions()
                if i.opcode == "getelementptr"]
        assert len(geps) == 1
        from repro.ir import types

        interp = Interpreter(module)
        slot = interp.memory.malloc(16)
        interp.memory.write_typed(slot + 4, types.INT, 5)
        assert interp.run("main", [slot]).return_value == 5 + 9

    def test_loads_not_merged_across_clobber(self):
        module = parse_module("""
        int %main(int* %p) {
        entry:
                %v1 = load int* %p
                store int 100, int* %p
                %v2 = load int* %p
                %r = add int %v1, %v2
                ret int %r
        }
        """)
        GlobalValueNumbering().run(module.get_function("main"))
        verify_module(module)
        interp = Interpreter(module)
        slot = interp.memory.malloc(8)
        from repro.ir import types

        interp.memory.write_typed(slot, types.INT, 7)
        # v1=7, then store 100, v2 forwards the stored 100.
        assert interp.run("main", [slot]).return_value == 107


class TestADCEAndMemory:
    def test_stores_to_escaped_memory_survive(self):
        module = parse_module("""
        %sink = global int 0
        int %main() {
        entry:
                store int 42, int* %sink
                ret int 1
        }
        """)
        AggressiveDCE().run(module.get_function("main"))
        verify_module(module)
        interp = Interpreter(module)
        interp.run("main")
        from repro.ir import types

        value = interp.memory.read_typed(
            interp.image.address_of("sink"), types.INT)
        assert value == 42

    def test_dead_allocas_with_dead_stores_removed(self):
        module = parse_module("""
        int %main() {
        entry:
                %dead = alloca int
                store int 1, int* %dead
                %live = add int 2, 3
                ret int %live
        }
        """)
        AggressiveDCE().run(module.get_function("main"))
        verify_module(module)
        main = module.get_function("main")
        opcodes = [i.opcode for i in main.instructions()]
        # The store to the local, otherwise-unread alloca is a root for
        # plain ADCE (stores are roots), so it stays — this documents
        # the conservative contract.
        assert "store" in opcodes
        assert _run(module).return_value == 5


class TestInlinerShadowing:
    def test_argument_names_do_not_collide(self):
        """Caller and callee both use %x; inlining must keep them
        distinct values."""
        module = parse_module("""
        int %callee(int %x) {
        entry:
                %r = mul int %x, 10
                ret int %r
        }
        int %main(int %x) {
        entry:
                %a = call int %callee(int 7)
                %r = add int %a, %x
                ret int %r
        }
        """)
        expected = _run(module, args=[3]).return_value
        assert expected == 73
        FunctionInliner().run_module(module)
        verify_module(module)
        assert _run(module, args=[3]).return_value == 73

    def test_multiple_returns_merge_through_phi(self):
        module = parse_module("""
        int %pick(bool %c) {
        entry:
                br bool %c, label %a, label %b
        a:
                ret int 111
        b:
                ret int 222
        }
        int %main(bool %c) {
        entry:
                %v = call int %pick(bool %c)
                %w = add int %v, 1
                ret int %w
        }
        """)
        FunctionInliner().run_module(module)
        verify_module(module)
        main = module.get_function("main")
        assert any(i.opcode == "phi" for i in main.instructions())
        assert _run(module, args=[True]).return_value == 112
        assert Interpreter(module).run("main", [False]).return_value \
            == 223
