"""Multi-tenant storage: sharding, atomicity, eviction, concurrency.

A system-wide LLEE serves many programs from one translation cache, so
the Section-4.1 storage implementations must hold up under concurrent
writers (threads of one engine, and separate interpreter processes
sharing a disk root), bound their footprint via LRU eviction, and
survive index loss — all without a reader ever observing a torn
vector or a cache failure breaking execution.
"""

import json
import multiprocessing
import os
import threading

import pytest

from repro import observe
from repro.bitcode import read_module, write_module
from repro.execution import Interpreter
from repro.execution.tier2 import TIER2_CACHE_NAME, Tier2Cache
from repro.llee.storage import DiskStorage, InMemoryStorage, _sanitize
from repro.minic import compile_source

CACHE = "llee-tier2"


class TestSanitize:
    def test_distinct_names_stay_distinct(self):
        # "a/b" and "a_b" used to collide when unsafe characters were
        # simply replaced; the hash suffix keeps them apart.
        assert _sanitize("a/b") != _sanitize("a_b")
        assert _sanitize("mod:one") != _sanitize("mod_one")

    def test_long_names_stay_distinct(self):
        left = "x" * 200 + "left"
        right = "x" * 200 + "right"
        assert _sanitize(left) != _sanitize(right)
        assert len(_sanitize(left)) <= 80

    def test_sanitize_is_stable(self):
        assert _sanitize("a/b") == _sanitize("a/b")

    def test_colliding_names_roundtrip_through_disk(self, tmp_path):
        storage = DiskStorage(str(tmp_path))
        storage.write(CACHE, "a/b", b"slash")
        storage.write(CACHE, "a_b", b"underscore")
        assert storage.read(CACHE, "a/b") == b"slash"
        assert storage.read(CACHE, "a_b") == b"underscore"


class TestAtomicWrites:
    def test_concurrent_writers_never_tear_a_vector(self, tmp_path):
        """Readers racing rewrites of one entry must always see one
        complete payload, never a mix."""
        storage = DiskStorage(str(tmp_path))
        payloads = [bytes([i]) * 4096 for i in range(4)]
        storage.write(CACHE, "entry", payloads[0])
        stop = threading.Event()
        torn = []

        def writer():
            i = 0
            while not stop.is_set():
                storage.write(CACHE, "entry", payloads[i % 4])
                i += 1

        def reader():
            while not stop.is_set():
                data = storage.read(CACHE, "entry")
                if data not in payloads:
                    torn.append(data)
                    return

        threads = [threading.Thread(target=writer) for _ in range(2)] \
            + [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        threading.Event().wait(0.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not torn
        assert storage.read(CACHE, "entry") in payloads

    def test_crash_mid_write_leaves_no_visible_debris(self, tmp_path):
        # Temp files are dot-prefixed: invisible to reads, cache_size,
        # and the index scan even if a crash strands one.
        storage = DiskStorage(str(tmp_path))
        storage.write(CACHE, "real", b"x" * 100)
        shard_dir = os.path.dirname(storage._entry_path(CACHE, "real"))
        stranded = os.path.join(shard_dir, ".stranded.123.tmp")
        with open(stranded, "wb") as handle:
            handle.write(b"half a vec")
        assert storage.cache_size(CACHE) == 100
        assert storage.read(CACHE, "real") == b"x" * 100

    def test_threaded_writers_distinct_names(self, tmp_path):
        storage = DiskStorage(str(tmp_path))
        errors = []

        def writer(base):
            try:
                for i in range(20):
                    name = "mod-{0}-{1}".format(base, i)
                    storage.write(CACHE, name,
                                  name.encode("utf-8") * 50)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        for t in range(4):
            for i in range(20):
                name = "mod-{0}-{1}".format(t, i)
                assert storage.read(CACHE, name) \
                    == name.encode("utf-8") * 50


def _process_writer(root, base):
    storage = DiskStorage(root)
    for i in range(10):
        name = "proc-{0}-{1}".format(base, i)
        storage.write("llee-tier2", name, name.encode("utf-8") * 100)


class TestCrossProcess:
    def test_two_processes_share_one_root(self, tmp_path):
        """The bench's warm-sharing shape: N interpreter processes
        writing one disk cache, every blob intact afterwards."""
        root = str(tmp_path)
        workers = [multiprocessing.Process(target=_process_writer,
                                           args=(root, base))
                   for base in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60.0)
        assert all(worker.exitcode == 0 for worker in workers)
        storage = DiskStorage(root)
        for base in range(2):
            for i in range(10):
                name = "proc-{0}-{1}".format(base, i)
                assert storage.read(CACHE, name) \
                    == name.encode("utf-8") * 100


class TestEviction:
    def test_disk_lru_keeps_the_hottest_entry(self, tmp_path):
        storage = DiskStorage(str(tmp_path), max_bytes=300)
        storage.write(CACHE, "hot", b"h" * 100)
        storage.write(CACHE, "cold", b"c" * 100)
        storage.write(CACHE, "warm", b"w" * 100)
        assert storage.read(CACHE, "hot")  # refresh recency
        storage.write(CACHE, "new", b"n" * 100)  # forces one eviction
        assert storage.read(CACHE, "cold") is None  # LRU victim
        assert storage.read(CACHE, "hot") == b"h" * 100
        assert storage.read(CACHE, "new") == b"n" * 100
        assert storage.evictions == 1
        assert storage.cache_size(CACHE) <= 300

    def test_disk_budget_is_respected_across_writes(self, tmp_path):
        storage = DiskStorage(str(tmp_path), max_bytes=500)
        for i in range(10):
            storage.write(CACHE, "entry-{0}".format(i), b"x" * 100)
        assert storage.cache_size(CACHE) <= 500
        assert storage.evictions >= 5

    def test_oversized_entry_still_lands(self, tmp_path):
        # The just-written entry is exempt, so one vector larger than
        # the whole budget replaces everything instead of bouncing.
        storage = DiskStorage(str(tmp_path), max_bytes=100)
        storage.write(CACHE, "small", b"s" * 50)
        storage.write(CACHE, "huge", b"h" * 400)
        assert storage.read(CACHE, "huge") == b"h" * 400
        assert storage.read(CACHE, "small") is None

    def test_memory_lru_matches_disk_semantics(self):
        storage = InMemoryStorage(max_bytes=300)
        storage.write(CACHE, "hot", b"h" * 100)
        storage.write(CACHE, "cold", b"c" * 100)
        storage.write(CACHE, "warm", b"w" * 100)
        assert storage.read(CACHE, "hot")
        storage.write(CACHE, "new", b"n" * 100)
        assert storage.read(CACHE, "cold") is None
        assert storage.read(CACHE, "hot") == b"h" * 100
        assert storage.evictions == 1
        assert storage.cache_size(CACHE) <= 300

    def test_index_loss_is_survivable(self, tmp_path):
        """The index is advisory: deleting or corrupting it only costs
        a directory scan, never data."""
        storage = DiskStorage(str(tmp_path), max_bytes=10_000)
        for i in range(5):
            storage.write(CACHE, "entry-{0}".format(i), b"x" * 100)
        index_path = storage._index_path(CACHE)
        os.unlink(index_path)
        assert storage.cache_size(CACHE) == 500
        with open(index_path, "wb") as handle:
            handle.write(b"{ not json")
        storage.write(CACHE, "after", b"y" * 100)  # rebuilds via scan
        entries = json.loads(open(index_path, "rb").read())["entries"]
        assert len(entries) == 6


PROGRAM = r"""
int square(int x) { return x * x; }
int main() {
    int total = 0;
    int i;
    for (i = 0; i < 30; i++) { total += square(i); }
    print_int(total);
    return total & 32767;
}
"""

KEY = "evict-test"


def _object_code():
    module = compile_source(PROGRAM, "storage-conc",
                            optimization_level=2)
    return write_module(module)


def _forced_run(module, cache):
    interpreter = Interpreter(module, engine="fast", tier2=cache,
                              tier2_threshold=0)
    result = interpreter.run("main", [])
    return (result.return_value, result.output, result.steps)


class TestEvictedBlobFallsBackOnline:
    def _populate(self, storage):
        code = _object_code()
        module = read_module(code)
        cache = Tier2Cache(module, module.target_data, threshold=0)
        cache.attach_storage(storage, KEY)
        outcome = _forced_run(module, cache)
        assert cache.flush_storage()
        return code, outcome

    def test_evicted_translation_recompiles_online(self, tmp_path):
        storage = DiskStorage(str(tmp_path))
        code, cold_outcome = self._populate(storage)
        blob_size = len(storage.read(TIER2_CACHE_NAME, KEY))
        # A competing tenant's write inside a tight budget evicts our
        # cold blob (never read since, so it is the LRU victim).
        bounded = DiskStorage(str(tmp_path), max_bytes=blob_size + 10)
        bounded.write(TIER2_CACHE_NAME, "rival", b"r" * blob_size)
        assert bounded.read(TIER2_CACHE_NAME, KEY) is None
        module = read_module(code)
        cache = Tier2Cache(module, module.target_data, threshold=0)
        assert not cache.attach_storage(bounded, KEY)
        assert not cache.translation_cache_hit
        assert _forced_run(module, cache) == cold_outcome
        assert cache.stats.functions_compiled > 0
        assert cache.stats.warm_compiles == 0

    def test_corrupt_blob_logs_invalid_and_recompiles(self, tmp_path):
        storage = DiskStorage(str(tmp_path))
        code, cold_outcome = self._populate(storage)
        blob = storage.read(TIER2_CACHE_NAME, KEY)
        storage.write(TIER2_CACHE_NAME, KEY, blob[: len(blob) // 2])
        module = read_module(code)
        cache = Tier2Cache(module, module.target_data, threshold=0)
        observe.configure()
        try:
            assert not cache.attach_storage(storage, KEY)
            invalid = observe.registry().counters("llee.cache.invalid")
            assert invalid, "llee.cache.invalid was not recorded"
        finally:
            observe.disable()
        assert _forced_run(module, cache) == cold_outcome
        assert cache.stats.warm_compiles == 0
