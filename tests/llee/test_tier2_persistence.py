"""Persistent tier-2 translations through the storage API.

The offline half of the tiered translator: tier-2 source (plus
.pyc-style marshalled bytecode) is serialized through the Section 4.1
storage API so a fresh process warm-starts.  Every failure mode —
corrupt, truncated, version-mismatched, stale, wrong module, wrong
target — must log ``llee.cache.invalid`` and fall back to online
translation without ever breaking execution.
"""

import json
import sys
import time

import pytest

from repro import observe
from repro.bitcode import read_module, write_module
from repro.execution import Interpreter
from repro.execution.tier2 import TIER2_CACHE_NAME, Tier2Cache
from repro.llee import LLEE, DiskStorage, InMemoryStorage
from repro.minic import compile_source
from repro.targets import make_target

PROGRAM = r"""
int helper(int x) { return x * x + 1; }
int main() {
    int total = 0;
    int i;
    for (i = 0; i < 40; i++) {
        if (i % 3 == 0) {
            total += helper(i);
        } else {
            total -= i;
        }
    }
    print_int(total);
    return total & 32767;
}
"""

KEY = "test-module"


@pytest.fixture(scope="module")
def object_code():
    module = compile_source(PROGRAM, "tier2-test", optimization_level=2)
    return write_module(module)


def _fresh_module(object_code):
    return read_module(object_code)


def _run_forced(module, cache):
    interpreter = Interpreter(module, engine="fast", tier2=cache,
                              tier2_threshold=0)
    result = interpreter.run("main", [])
    return (result.return_value, result.output, result.steps,
            result.exit_status)


def _populated_storage(object_code):
    """One cold tier-2 run, flushed to an in-memory store."""
    storage = InMemoryStorage()
    module = _fresh_module(object_code)
    cache = Tier2Cache(module, module.target_data, threshold=0)
    cache.attach_storage(storage, KEY)
    outcome = _run_forced(module, cache)
    assert cache.flush_storage()
    return storage, outcome


class TestWarmStart:
    def test_cold_flush_then_warm_hit(self, object_code):
        storage, cold_outcome = _populated_storage(object_code)
        module = _fresh_module(object_code)
        warm = Tier2Cache(module, module.target_data, threshold=0)
        assert warm.attach_storage(storage, KEY)
        assert warm.translation_cache_hit
        outcome = _run_forced(module, warm)
        assert outcome == cold_outcome
        # Every compile was served from the persisted translation:
        # codegen ran zero times.
        assert warm.stats.warm_compiles == warm.stats.functions_compiled
        assert warm.stats.warm_compiles > 0
        assert warm.stats.codegen_seconds == 0.0

    def test_warm_blob_carries_marshalled_bytecode(self, object_code):
        storage, _ = _populated_storage(object_code)
        blob = json.loads(storage.read(TIER2_CACHE_NAME, KEY))
        assert blob["cache_tag"] == sys.implementation.cache_tag
        assert any("code" in entry
                   for entry in blob["functions"].values())

    def test_foreign_cache_tag_falls_back_to_source(self, object_code):
        # A blob from a different Python build still warm-starts — the
        # source is recompiled, only the marshalled bytecode is skipped.
        storage, cold_outcome = _populated_storage(object_code)
        blob = json.loads(storage.read(TIER2_CACHE_NAME, KEY))
        blob["cache_tag"] = "cpython-00"
        storage.write(TIER2_CACHE_NAME, KEY,
                      json.dumps(blob).encode("utf-8"))
        module = _fresh_module(object_code)
        warm = Tier2Cache(module, module.target_data, threshold=0)
        assert warm.attach_storage(storage, KEY)
        assert _run_forced(module, warm) == cold_outcome
        assert warm.stats.warm_compiles > 0

    def test_flush_is_noop_when_nothing_new(self, object_code):
        storage, _ = _populated_storage(object_code)
        writes_before = storage.writes
        module = _fresh_module(object_code)
        warm = Tier2Cache(module, module.target_data, threshold=0)
        warm.attach_storage(storage, KEY)
        _run_forced(module, warm)
        assert not warm.flush_storage()  # nothing dirty
        assert storage.writes == writes_before


class TestInvalidBlobs:
    """Corruption in any shape degrades to online translation and logs
    the ``llee.cache.invalid`` metric — never an exception."""

    def _attach_expect_miss(self, object_code, storage, reason_check
                            =None, key=KEY):
        module = _fresh_module(object_code)
        cache = Tier2Cache(module, module.target_data, threshold=0)
        observe.configure()
        try:
            assert not cache.attach_storage(storage, key)
            invalid = [(labels, value) for name, labels, value
                       in observe.registry().counters(
                           "llee.cache.invalid")]
            assert invalid, "llee.cache.invalid was not recorded"
            if reason_check is not None:
                reasons = [dict(labels).get("reason", "")
                           for labels, _v in invalid]
                assert any(reason_check in reason
                           for reason in reasons), reasons
        finally:
            observe.disable()
        # Execution still works: everything compiles online.
        outcome = _run_forced(module, cache)
        assert cache.stats.warm_compiles == 0
        return outcome

    def test_corrupt_json(self, object_code):
        storage, outcome = _populated_storage(object_code)
        storage.write(TIER2_CACHE_NAME, KEY, b"{not json at all")
        assert self._attach_expect_miss(object_code, storage,
                                        "corrupt") == outcome

    def test_truncated_blob(self, object_code):
        storage, outcome = _populated_storage(object_code)
        data = storage.read(TIER2_CACHE_NAME, KEY)
        storage.write(TIER2_CACHE_NAME, KEY, data[:len(data) // 2])
        assert self._attach_expect_miss(object_code, storage,
                                        "corrupt") == outcome

    def test_version_mismatch(self, object_code):
        storage, outcome = _populated_storage(object_code)
        blob = json.loads(storage.read(TIER2_CACHE_NAME, KEY))
        blob["version"] = 999
        storage.write(TIER2_CACHE_NAME, KEY,
                      json.dumps(blob).encode("utf-8"))
        assert self._attach_expect_miss(object_code, storage,
                                        "version") == outcome

    def test_wrong_module_key(self, object_code):
        storage, outcome = _populated_storage(object_code)
        data = storage.read(TIER2_CACHE_NAME, KEY)
        storage.write(TIER2_CACHE_NAME, "other-module", data)
        assert self._attach_expect_miss(object_code, storage,
                                        "different module",
                                        key="other-module") == outcome

    def test_corrupt_marshalled_code(self, object_code):
        storage, outcome = _populated_storage(object_code)
        blob = json.loads(storage.read(TIER2_CACHE_NAME, KEY))
        for entry in blob["functions"].values():
            if "code" in entry:
                entry["code"] = "bm90IG1hcnNoYWw="  # not marshal data
        storage.write(TIER2_CACHE_NAME, KEY,
                      json.dumps(blob).encode("utf-8"))
        assert self._attach_expect_miss(object_code, storage,
                                        "corrupt") == outcome

    def test_reading_storage_that_raises(self, object_code):
        class ExplodingStorage(InMemoryStorage):
            def read(self, cache, name):
                raise OSError("disk on fire")

        assert self._attach_expect_miss(
            object_code, ExplodingStorage(), "read-error")

    def test_flush_through_failing_storage_is_best_effort(
            self, object_code):
        class ReadOnlyStorage(InMemoryStorage):
            def write(self, cache, name, data, timestamp=None):
                raise OSError("read-only filesystem")

        module = _fresh_module(object_code)
        cache = Tier2Cache(module, module.target_data, threshold=0)
        cache.attach_storage(ReadOnlyStorage(), KEY)
        _run_forced(module, cache)
        assert not cache.flush_storage()  # swallowed, not raised


class TestTimestampInvalidation:
    """POSIX directory store: a translation older than the executable
    is stale and must be discarded."""

    def test_stale_translation_is_discarded(self, object_code,
                                            tmp_path):
        storage = DiskStorage(str(tmp_path / "cache"))
        module = _fresh_module(object_code)
        cold = Tier2Cache(module, module.target_data, threshold=0)
        cold.attach_storage(storage, KEY)
        outcome = _run_forced(module, cold)
        assert cold.flush_storage()
        # Backdate the cache entry, then present a newer executable.
        storage.write(TIER2_CACHE_NAME, KEY,
                      storage.read(TIER2_CACHE_NAME, KEY),
                      timestamp=100.0)
        module = _fresh_module(object_code)
        warm = Tier2Cache(module, module.target_data, threshold=0)
        assert not warm.attach_storage(
            storage, KEY, executable_timestamp=time.time())
        assert _run_forced(module, warm) == outcome
        assert warm.stats.warm_compiles == 0

    def test_fresh_translation_is_accepted(self, object_code,
                                           tmp_path):
        storage = DiskStorage(str(tmp_path / "cache"))
        module = _fresh_module(object_code)
        cold = Tier2Cache(module, module.target_data, threshold=0)
        cold.attach_storage(storage, KEY)
        outcome = _run_forced(module, cold)
        assert cold.flush_storage()
        module = _fresh_module(object_code)
        warm = Tier2Cache(module, module.target_data, threshold=0)
        assert warm.attach_storage(
            storage, KEY, executable_timestamp=100.0)
        assert _run_forced(module, warm) == outcome
        assert warm.stats.warm_compiles > 0


class TestLLEEIntegration:
    """`LLEE.run_interpreted(tier2=True)` — the full warm-start loop."""

    def test_cross_process_warm_start(self, object_code):
        storage = InMemoryStorage()
        first = LLEE(make_target("x86"), storage)
        cold = first.run_interpreted(object_code, tier2=True,
                                     tier2_threshold=0)
        assert not cold.translation_cache_hit
        assert cold.tier2_functions_compiled > 0
        assert cold.tier2_steps == cold.steps

        # A fresh LLEE instance models a fresh process.
        second = LLEE(make_target("x86"), storage)
        warm = second.run_interpreted(object_code, tier2=True,
                                      tier2_threshold=0)
        assert warm.translation_cache_hit
        assert warm.tier2_warm_compiles == warm.tier2_functions_compiled
        assert (warm.return_value, warm.output, warm.steps,
                warm.exit_status) == (cold.return_value, cold.output,
                                      cold.steps, cold.exit_status)

    def test_same_instance_reuses_compiled_units(self, object_code):
        llee = LLEE(make_target("x86"))
        first = llee.run_interpreted(object_code, tier2=True,
                                     tier2_threshold=0)
        again = llee.run_interpreted(object_code, tier2=True,
                                     tier2_threshold=0)
        assert again.cache_hit
        assert again.tier2_compile_seconds == 0.0
        assert (again.return_value, again.steps) == (
            first.return_value, first.steps)

    def test_tier2_report_matches_reference_engine(self, object_code):
        llee = LLEE(make_target("x86"))
        tiered = llee.run_interpreted(object_code, tier2=True,
                                      tier2_threshold=0)
        reference = llee.run_interpreted(object_code,
                                         engine="reference")
        assert (tiered.return_value, tiered.output, tiered.steps,
                tiered.exit_status) == (
            reference.return_value, reference.output, reference.steps,
            reference.exit_status)

    def test_corrupt_persisted_blob_degrades_gracefully(
            self, object_code):
        storage = InMemoryStorage()
        first = LLEE(make_target("x86"), storage)
        cold = first.run_interpreted(object_code, tier2=True,
                                     tier2_threshold=0)
        for name in list(storage._caches.get(TIER2_CACHE_NAME, {})):
            storage.write(TIER2_CACHE_NAME, name, b"\x00garbage")
        second = LLEE(make_target("x86"), storage)
        warm = second.run_interpreted(object_code, tier2=True,
                                      tier2_threshold=0)
        assert not warm.translation_cache_hit
        assert (warm.return_value, warm.steps) == (cold.return_value,
                                                   cold.steps)

    def test_sanitized_run_reports_no_tier2_activity(self, object_code):
        llee = LLEE(make_target("x86"))
        report = llee.run_interpreted(object_code, tier2=True,
                                      tier2_threshold=0, sanitize=True)
        assert report.sanitized
        assert report.tier2_steps == 0
        assert report.tier2_functions_compiled == 0


class TestNativeCacheInvalidMetric:
    """The pre-existing native translation cache now reports invalid
    entries through the same ``llee.cache.invalid`` metric."""

    def test_corrupt_native_entry_logs_and_retranslates(
            self, object_code):
        storage = InMemoryStorage()
        llee = LLEE(make_target("x86"), storage)
        first = llee.run_executable(object_code)
        assert not first.cache_hit
        for name in list(storage._caches.get("llee-native", {})):
            storage.write("llee-native", name, b"\x00garbage")
        observe.configure()
        try:
            second = llee.run_executable(object_code)
            assert observe.registry().counters("llee.cache.invalid")
        finally:
            observe.disable()
        assert not second.cache_hit
        assert second.return_value == first.return_value

    def test_stale_native_entry_logs_stale_reason(self, object_code):
        storage = InMemoryStorage()
        llee = LLEE(make_target("x86"), storage)
        llee.run_executable(object_code)
        for name in list(storage._caches.get("llee-native", {})):
            data = storage.read("llee-native", name)
            storage.write("llee-native", name, data, timestamp=100.0)
        observe.configure()
        try:
            report = llee.run_executable(
                object_code, executable_timestamp=time.time())
            reasons = [dict(labels).get("reason") for _n, labels, _v
                       in observe.registry().counters(
                           "llee.cache.invalid")]
            assert "stale" in reasons
        finally:
            observe.disable()
        assert not report.cache_hit
