"""Trace-cache unit behaviour beyond the PGO integration tests."""

import pytest

from repro.asm import parse_module
from repro.ir import verify_module
from repro.llee import Profile, SoftwareTraceCache

SOURCE = """
int %hot_loop(int %n) {
entry:
        br label %header
header:
        %i = phi int [ 0, %entry ], [ %i2, %latch ]
        %c = setlt int %i, %n
        br bool %c, label %body, label %exit
body:
        %odd = and int %i, 1
        %is_odd = seteq int %odd, 1
        br bool %is_odd, label %rare, label %common
common:
        br label %latch
rare:
        br label %latch
latch:
        %i2 = add int %i, 1
        br label %header
exit:
        ret int %i
}
"""


def _profile(counts):
    profile = Profile()
    for block, count in counts.items():
        profile.counts[("hot_loop", block)] = count
    return profile


@pytest.fixture()
def module():
    parsed = parse_module(SOURCE)
    verify_module(parsed)
    return parsed


class TestTraceFormation:
    def test_follows_the_hot_side(self, module):
        profile = _profile({
            "entry": 1, "header": 1000, "body": 999, "common": 900,
            "rare": 99, "latch": 999, "exit": 1,
        })
        cache = SoftwareTraceCache(module, hot_threshold=50)
        traces = cache.form_traces(profile)
        assert traces
        main_trace = traces[0]
        names = [b.name for b in main_trace.blocks]
        assert names[0] == "header"
        assert "common" in names
        assert "rare" not in names  # the cold side stays off-trace

    def test_cold_code_forms_no_traces(self, module):
        profile = _profile({name: 2 for name in
                            ("entry", "header", "body", "common",
                             "rare", "latch", "exit")})
        cache = SoftwareTraceCache(module, hot_threshold=50)
        assert cache.form_traces(profile) == []

    def test_layout_keeps_entry_first_and_all_blocks(self, module):
        profile = _profile({
            "entry": 1, "header": 1000, "body": 999, "common": 900,
            "rare": 99, "latch": 999, "exit": 1,
        })
        cache = SoftwareTraceCache(module, hot_threshold=50)
        cache.form_traces(profile)
        function = module.get_function("hot_loop")
        before = {b.name for b in function.blocks}
        cache.apply_layout()
        verify_module(module)
        after_names = [b.name for b in function.blocks]
        assert after_names[0] == "entry"
        assert set(after_names) == before
        # The trace blocks are contiguous in the new layout.
        trace_names = [b.name for b in cache.traces[0].blocks]
        start = after_names.index(trace_names[0])
        assert after_names[start:start + len(trace_names)] == trace_names

    def test_coverage_metric(self, module):
        profile = _profile({
            "entry": 1, "header": 1000, "body": 999, "common": 900,
            "rare": 99, "latch": 999, "exit": 1,
        })
        cache = SoftwareTraceCache(module, hot_threshold=50)
        cache.form_traces(profile)
        coverage = cache.coverage(profile)
        assert 0.5 < coverage <= 1.0

    def test_semantics_survive_relayout(self, module):
        from repro.execution import Interpreter

        baseline = Interpreter(module).run("hot_loop", [25])
        profile = _profile({
            "entry": 1, "header": 26, "body": 25, "common": 13,
            "rare": 12, "latch": 25, "exit": 1,
        })
        cache = SoftwareTraceCache(module, hot_threshold=5)
        cache.form_traces(profile)
        cache.apply_layout()
        verify_module(module)
        relaid = Interpreter(module).run("hot_loop", [25])
        assert relaid.return_value == baseline.return_value

        # And the relaid function still translates and runs natively.
        from repro.execution.machine_sim import MachineSimulator
        from repro.targets import make_target, translate_module

        native = translate_module(module, make_target("sparc"))
        value, _ = MachineSimulator(native, module).run("hot_loop", [25])
        assert value == baseline.return_value
