"""LLEE tests: storage API, cache orchestration, profiling, traces."""

import time

import pytest

from helpers import build_factorial
from repro.bitcode import write_module
from repro.execution import Interpreter
from repro.llee import (
    LLEE,
    DiskStorage,
    InMemoryStorage,
    SoftwareTraceCache,
    idle_time_reoptimize,
    instrument_module,
    read_profile,
    strip_instrumentation,
)
from repro.minic import compile_source
from repro.targets import make_target

PROGRAM = r"""
int helper(int x) { return x * x + 1; }
int main() {
    int total = 0;
    int i;
    for (i = 0; i < 50; i++) {
        if (i % 3 == 0) {
            total += helper(i);
        } else {
            total -= i;
        }
    }
    print_int(total);
    return total & 32767;
}
"""


@pytest.fixture(scope="module")
def object_code():
    module = compile_source(PROGRAM, "llee-test", optimization_level=2)
    return write_module(module)


class TestStorageAPI:
    def _exercise(self, storage):
        assert storage.read("c", "missing") is None
        storage.write("c", "key", b"hello", timestamp=100.0)
        assert storage.read("c", "key") == b"hello"
        assert storage.timestamp("c", "key") == pytest.approx(100.0)
        assert storage.cache_size("c") == 5
        storage.write("c", "key2", b"xyz")
        assert storage.cache_size("c") == 8
        storage.delete_cache("c")
        assert storage.read("c", "key") is None
        assert storage.cache_size("c") == 0

    def test_in_memory(self):
        self._exercise(InMemoryStorage())

    def test_disk(self, tmp_path):
        self._exercise(DiskStorage(str(tmp_path / "cache")))


class TestLLEECaching:
    def test_cold_warm_cycle(self, object_code):
        storage = InMemoryStorage()
        llee = LLEE(make_target("x86"), storage)
        cold = llee.run_executable(object_code)
        warm = llee.run_executable(object_code)
        assert not cold.cache_hit and cold.functions_jitted == 2
        assert warm.cache_hit and warm.functions_jitted == 0
        assert cold.return_value == warm.return_value
        assert cold.output == warm.output
        assert cold.cycles == warm.cycles  # same code, same workload

    def test_disk_cache_survives_llee_restart(self, object_code,
                                              tmp_path):
        storage = DiskStorage(str(tmp_path))
        first = LLEE(make_target("x86"), storage)
        cold = first.run_executable(object_code)
        # A "reboot": a brand new LLEE against the same disk.
        second = LLEE(make_target("x86"), storage)
        warm = second.run_executable(object_code)
        assert warm.cache_hit and warm.functions_jitted == 0
        assert warm.return_value == cold.return_value

    def test_stale_timestamp_invalidates(self, object_code):
        storage = InMemoryStorage()
        llee = LLEE(make_target("x86"), storage)
        llee.run_executable(object_code, executable_timestamp=10.0)
        rebuilt = llee.run_executable(
            object_code, executable_timestamp=time.time() + 1e6)
        assert not rebuilt.cache_hit
        assert rebuilt.functions_jitted > 0

    def test_per_target_caches_are_separate(self, object_code):
        storage = InMemoryStorage()
        x86 = LLEE(make_target("x86"), storage)
        sparc = LLEE(make_target("sparc"), storage)
        x86.run_executable(object_code)
        report = sparc.run_executable(object_code)
        assert not report.cache_hit  # different target, different key
        warm = sparc.run_executable(object_code)
        assert warm.cache_hit

    def test_offline_translate_requires_storage(self, object_code):
        llee = LLEE(make_target("x86"), storage=None)
        with pytest.raises(RuntimeError):
            llee.offline_translate(object_code)

    def test_both_targets_agree_with_interpreter(self, object_code):
        from repro.bitcode import read_module

        module = read_module(object_code)
        expected = Interpreter(module).run("main")
        for target_name in ("x86", "sparc"):
            llee = LLEE(make_target(target_name), InMemoryStorage())
            report = llee.run_executable(object_code)
            assert report.return_value == expected.return_value
            assert report.output == expected.output


class TestSanitizedInterpretedRuns:
    HEAP_PROGRAM = r"""
    int main() {
        int* p = (int*) malloc(40);
        int i;
        int total = 0;
        for (i = 0; i < 10; i++) { p[i] = i; }
        for (i = 0; i < 10; i++) { total += p[i]; }
        free((char*) p);
        return total;
    }
    """

    @pytest.fixture(scope="class")
    def heap_object_code(self):
        module = compile_source(self.HEAP_PROGRAM, "llee-san-test",
                                optimization_level=2)
        return write_module(module)

    def test_sanitized_run_matches_plain(self, heap_object_code):
        llee = LLEE(make_target("x86"))
        plain = llee.run_interpreted(heap_object_code)
        sanitized = llee.run_interpreted(heap_object_code, sanitize=True)
        assert not plain.sanitized
        assert sanitized.sanitized
        assert sanitized.return_value == plain.return_value == 45
        assert sanitized.output == plain.output
        assert sanitized.steps == plain.steps

    def test_sanitized_decode_cache_keyed_separately(self,
                                                     heap_object_code):
        llee = LLEE(make_target("x86"))
        llee.run_interpreted(heap_object_code)
        # First sanitized run must not reuse the plain decode cache:
        # its closures lack site instrumentation.
        cold = llee.run_interpreted(heap_object_code, sanitize=True)
        assert not cold.cache_hit
        warm = llee.run_interpreted(heap_object_code, sanitize=True)
        assert warm.cache_hit
        assert warm.return_value == cold.return_value

    def test_sanitized_run_surfaces_fault(self):
        from repro.asm import parse_module
        from repro.execution import ExecutionTrap

        buggy = parse_module("""
        declare sbyte* %malloc(uint)
        declare void %free(sbyte*)
        int %main() {
        entry:
                %p = call sbyte* %malloc(uint 16)
                call void %free(sbyte* %p)
                %v = load sbyte* %p
                %r = cast sbyte %v to int
                ret int %r
        }
        """)
        code = write_module(buggy)
        llee = LLEE(make_target("x86"))
        with pytest.raises(ExecutionTrap) as info:
            llee.run_interpreted(code, sanitize=True)
        assert "heap-use-after-free" in info.value.detail


class TestSMCInvalidation:
    def test_jit_retranslates_after_smc(self):
        source = """
        declare void %llva.smc.replace(sbyte*, sbyte*)
        int %f(int %x) {
        entry:
                %r = add int %x, 1
                ret int %r
        }
        int %g(int %x) {
        entry:
                %r = mul int %x, 50
                ret int %r
        }
        int %main() {
        entry:
                %before = call int %f(int 2)
                %old = cast int (int)* %f to sbyte*
                %new = cast int (int)* %g to sbyte*
                call void %llva.smc.replace(sbyte* %old, sbyte* %new)
                %after = call int %f(int 2)
                %r = add int %before, %after
                ret int %r
        }
        """
        from repro.asm import parse_module
        from repro.bitcode import write_module as encode

        module = parse_module(source)
        code = encode(module)
        llee = LLEE(make_target("x86"), storage=None)
        report = llee.run_executable(code)
        assert report.return_value == 3 + 100


class TestProfiling:
    def test_counts_match_interpreter_steps(self):
        module = compile_source(PROGRAM, "prof", optimization_level=1)
        profile_map = instrument_module(module)
        interp = Interpreter(module)
        interp.run("main")
        profile = read_profile(profile_map, interp)
        assert profile.block_count("helper", "entry") == 17  # i%3==0
        main_counts = [count for (fn, _b), count in
                       profile.counts.items() if fn == "main"]
        assert max(main_counts) >= 50

    def test_profiles_collectable_from_native_runs(self):
        from repro.execution.machine_sim import MachineSimulator
        from repro.llee.jit import FunctionJIT

        module = compile_source(PROGRAM, "prof2", optimization_level=1)
        profile_map = instrument_module(module)
        native = FunctionJIT(module, make_target("sparc")).translate_all()
        simulator = MachineSimulator(native, module)
        simulator.run("main")
        profile = read_profile(profile_map, simulator)
        assert profile.block_count("helper", "entry") == 17

    def test_strip_restores_clean_module(self):
        module = compile_source(PROGRAM, "prof3", optimization_level=1)
        baseline = Interpreter(module).run("main")
        profile_map = instrument_module(module)
        strip_instrumentation(module)
        from repro.ir import verify_module
        verify_module(module)
        again = Interpreter(module).run("main")
        assert again.return_value == baseline.return_value
        assert again.steps == baseline.steps

    def test_double_instrumentation_rejected(self):
        module = compile_source(PROGRAM, "prof4")
        instrument_module(module)
        with pytest.raises(ValueError):
            instrument_module(module)


class TestTraceCacheAndPGO:
    def test_traces_cover_hot_path(self):
        module = compile_source(PROGRAM, "trace", optimization_level=1)
        profile_map = instrument_module(module)
        interp = Interpreter(module)
        interp.run("main")
        profile = read_profile(profile_map, interp)
        strip_instrumentation(module)
        cache = SoftwareTraceCache(module, hot_threshold=10)
        traces = cache.form_traces(profile)
        assert traces
        assert cache.coverage(profile) > 0.4
        assert traces[0].heat >= 10

    def test_pgo_preserves_semantics_and_helps(self):
        module = compile_source(PROGRAM, "pgo", optimization_level=1)
        baseline = Interpreter(module).run("main")
        profile_map = instrument_module(module)
        interp = Interpreter(module)
        interp.run("main")
        profile = read_profile(profile_map, interp)
        strip_instrumentation(module)
        report = idle_time_reoptimize(module, profile, hot_calls=10)
        result = Interpreter(module).run("main")
        assert result.return_value == baseline.return_value
        assert report.hot_calls_inlined >= 1  # helper was hot
        assert result.steps < baseline.steps
