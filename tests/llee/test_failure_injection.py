"""Failure injection: broken storage, corrupted caches and object code.

Section 4.1 makes the storage API "strictly optional and the system
will operate correctly in their absence" — so LLEE must degrade to
online translation under every storage failure mode, and a corrupted
cached translation must never execute.
"""

import pytest

from repro.bitcode import BitcodeError, read_module, write_module
from repro.llee import LLEE, InMemoryStorage, StorageAPI
from repro.minic import compile_source
from repro.targets import make_target

PROGRAM = """
int main() {
    int total = 0;
    int i;
    for (i = 0; i < 10; i++) total += i * i;
    return total;
}
"""

EXPECTED = sum(i * i for i in range(10))


@pytest.fixture(scope="module")
def object_code():
    return write_module(compile_source(PROGRAM, "fi",
                                       optimization_level=2))


class _ExplodingStorage(StorageAPI):
    """Every operation raises."""

    def create_cache(self, cache):
        raise IOError("disk on fire")

    delete_cache = create_cache

    def cache_size(self, cache):
        raise IOError("disk on fire")

    def read(self, cache, name):
        raise IOError("disk on fire")

    def write(self, cache, name, data, timestamp=None):
        raise IOError("disk on fire")

    def timestamp(self, cache, name):
        raise IOError("disk on fire")


class _CorruptingStorage(InMemoryStorage):
    """Returns garbage for every cached vector."""

    def read(self, cache, name):
        data = super().read(cache, name)
        if data is None:
            return None
        return b"\x00garbage\xff" + data[:10]


class TestStorageFailures:
    def test_exploding_storage_degrades_to_online(self, object_code):
        llee = LLEE(make_target("x86"), _ExplodingStorage())
        report = llee.run_executable(object_code)
        assert report.return_value == EXPECTED
        assert not report.cache_hit
        assert report.functions_jitted > 0
        # And again — still works, still online.
        report2 = llee.run_executable(object_code)
        assert report2.return_value == EXPECTED

    def test_corrupted_cache_entry_is_rejected(self, object_code):
        storage = _CorruptingStorage()
        llee = LLEE(make_target("x86"), storage)
        first = llee.run_executable(object_code)
        assert first.return_value == EXPECTED
        # The cache now holds a corrupted vector; the second run must
        # reject it and retranslate rather than execute garbage.
        second = llee.run_executable(object_code)
        assert second.return_value == EXPECTED
        assert not second.cache_hit
        assert second.functions_jitted > 0

    def test_wrong_target_cache_rejected(self, object_code):
        storage = InMemoryStorage()
        x86 = LLEE(make_target("x86"), storage)
        x86.run_executable(object_code)
        # Manually cross-wire the sparc key to the x86 payload.
        sparc = LLEE(make_target("sparc"), storage)
        x86_key = x86._cache_key(object_code)
        sparc_key = sparc._cache_key(object_code)
        payload = storage.read("llee-native", x86_key)
        storage.write("llee-native", sparc_key, payload)
        report = sparc.run_executable(object_code)
        assert report.return_value == EXPECTED
        assert not report.cache_hit  # target mismatch detected


class TestCorruptObjectCode:
    def test_truncation_raises_bitcode_error(self, object_code):
        for cut in (4, 10, len(object_code) // 2):
            with pytest.raises(BitcodeError):
                read_module(object_code[:cut])

    def test_bad_magic(self, object_code):
        with pytest.raises(BitcodeError):
            read_module(b"XXXX" + object_code[4:])

    def test_single_byte_flips_never_hang_or_crash_host(self,
                                                        object_code):
        """Flipping any early byte must yield a clean, typed failure
        (BitcodeError / verifier error / LLVA type error) or a still-
        valid module — never an unhandled host exception type."""
        from repro.ir.types import LlvaTypeError
        from repro.ir.verifier import VerificationError, verify_module

        flipped = 0
        for position in range(8, min(len(object_code), 160)):
            mutated = bytearray(object_code)
            mutated[position] ^= 0xFF
            try:
                module = read_module(bytes(mutated))
                verify_module(module)
            except (BitcodeError, VerificationError, LlvaTypeError,
                    ValueError, KeyError, IndexError, OverflowError):
                flipped += 1
        assert flipped > 0  # corruption is generally detected
