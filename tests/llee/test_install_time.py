"""Install-time optimization (Section 4.2, item 2): the offline
translator may optimize the still-rich representation before code
generation, and the cached result is what every later launch runs."""

from repro.bitcode import write_module
from repro.llee import LLEE, InMemoryStorage
from repro.minic import compile_source
from repro.targets import make_target

PROGRAM = """
int main() {
    int x = 0;
    int i;
    for (i = 0; i < 200; i++) {
        int a = i * 3;
        int b = i * 3;          // redundant: GVN food
        x = (x + a + b) % 65521;
    }
    return x;
}
"""


def test_install_time_optimization_speeds_cached_runs():
    # Ship the *unoptimized* object code, as a developer would when
    # relying on install-time optimization.
    module = compile_source(PROGRAM, "install", optimization_level=0)
    object_code = write_module(module)

    plain_storage = InMemoryStorage()
    plain = LLEE(make_target("x86"), plain_storage)
    plain.offline_translate(object_code, optimize_level=0)
    plain_run = plain.run_executable(object_code)
    assert plain_run.cache_hit

    tuned_storage = InMemoryStorage()
    tuned = LLEE(make_target("x86"), tuned_storage)
    tuned.offline_translate(object_code, optimize_level=2)
    tuned_run = tuned.run_executable(object_code)
    assert tuned_run.cache_hit

    assert tuned_run.return_value == plain_run.return_value
    assert tuned_run.output == plain_run.output
    assert tuned_run.cycles < plain_run.cycles, (
        "install-time optimization should reduce executed cycles "
        "({0} vs {1})".format(tuned_run.cycles, plain_run.cycles))
    # And the cached artifact itself is smaller.
    assert tuned_storage.cache_size("llee-native") \
        < plain_storage.cache_size("llee-native")
