"""The background compilation service and asynchronous tier-2 promotion.

The paper's LLEE translates "offline or idle-time", decoupled from
execution.  These tests pin the execution-time contract of that split:
jobs run by priority, the idle policy parks builds while an engine is
active, drain always makes progress, and the Tier2Cache's asynchronous
promotion path — submit, keep running tier 1, swap in at a safe point —
produces byte-identical outcomes to the synchronous compiler under
every failure mode (cancellation, SMC invalidation, unsupported
bodies, service shutdown).
"""

import threading
import time

import pytest

from repro.bitcode import read_module, write_module
from repro.execution import Interpreter
from repro.execution.tier2 import Tier2Cache, UnsupportedFunction
from repro.llee import LLEE
from repro.llee.compile_service import CompileService
from repro.minic import compile_source
from repro.targets import make_target

PROGRAM = r"""
int helper(int x) { return x * x + 1; }
int mixer(int a, int b) { return (a ^ b) + (a & b) * 3; }
int main() {
    int total = 0;
    int i;
    for (i = 0; i < 60; i++) {
        if (i % 3 == 0) {
            total += helper(i);
        } else {
            total -= mixer(i, total);
        }
    }
    print_int(total);
    return total & 32767;
}
"""


@pytest.fixture(scope="module")
def object_code():
    module = compile_source(PROGRAM, "async-test", optimization_level=2)
    return write_module(module)


def _fresh_module(object_code):
    return read_module(object_code)


def _run(module, cache):
    interpreter = Interpreter(module, engine="fast", tier2=cache,
                              tier2_threshold=0)
    result = interpreter.run("main", [])
    return (result.return_value, result.output, result.steps,
            result.exit_status), interpreter


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestCompileService:
    def test_jobs_run_by_priority(self):
        service = CompileService(workers=1, policy="idle")
        order = []
        lock = threading.Lock()

        def build(tag):
            def run():
                with lock:
                    order.append(tag)
                return tag
            return run

        # Park the (single) worker before anything can build, so the
        # later submissions are ordered purely by the queue.
        service.engine_begin()
        first = service.submit(build("first"), priority=0, label="first")
        # The worker dequeues "first" and parks holding it; once the
        # queue is empty the remaining submissions race nobody.
        assert _wait_until(lambda: service.queue_depth() == 0)
        low = service.submit(build("low"), priority=1, label="low")
        high = service.submit(build("high"), priority=9, label="high")
        service.engine_end()
        assert service.drain(timeout=10.0)
        assert order == ["first", "high", "low"]
        assert first.future.result() == "first"
        assert high.priority > low.priority
        service.shutdown()

    def test_idle_policy_parks_builds_while_engine_active(self):
        service = CompileService(workers=1, policy="idle")
        service.engine_begin()
        job = service.submit(lambda: "built", label="parked")
        time.sleep(0.15)
        assert not job.future.done()  # parked, not building
        service.engine_end()
        assert _wait_until(lambda: job.ready)
        assert job.future.result() == "built"
        service.shutdown()

    def test_eager_policy_builds_despite_active_engine(self):
        service = CompileService(workers=1, policy="eager")
        service.engine_begin()
        job = service.submit(lambda: "built", label="eager")
        assert _wait_until(lambda: job.ready)
        assert job.future.result() == "built"
        service.shutdown()

    def test_drain_demands_progress_through_the_idle_gate(self):
        service = CompileService(workers=1, policy="idle")
        service.engine_begin()  # never ended: drain must still finish
        service.submit(lambda: 1, label="a")
        service.submit(lambda: 2, label="b")
        assert service.drain(timeout=10.0)
        assert service.stats.completed == 2
        service.shutdown()

    def test_builder_exception_parks_in_the_future(self):
        service = CompileService(workers=1, policy="eager")

        def boom():
            raise ValueError("codegen defect")

        job = service.submit(boom, label="boom")
        assert service.drain(timeout=10.0)
        assert isinstance(job.future.exception(), ValueError)
        assert service.stats.failed == 1
        service.shutdown()

    def test_shutdown_cancels_queued_jobs(self):
        service = CompileService(workers=1, policy="idle")
        service.engine_begin()
        jobs = [service.submit(lambda: None, label=str(i))
                for i in range(3)]
        service.shutdown()
        assert _wait_until(
            lambda: all(job.ready for job in jobs))
        assert all(job.future.cancelled() for job in jobs)
        assert service.stats.cancelled == 3
        with pytest.raises(RuntimeError):
            service.submit(lambda: None)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            CompileService(policy="sometimes")


class TestAsyncTier2:
    def _sync_outcome(self, object_code):
        module = _fresh_module(object_code)
        cache = Tier2Cache(module, module.target_data, threshold=0)
        outcome, _ = _run(module, cache)
        assert cache.stats.functions_compiled > 0
        return outcome

    def test_async_outcome_matches_sync(self, object_code):
        sync_outcome = self._sync_outcome(object_code)
        module = _fresh_module(object_code)
        cache = Tier2Cache(module, module.target_data, threshold=0,
                           async_compile=True)
        try:
            outcome, _ = _run(module, cache)
            assert outcome == sync_outcome
            assert cache.stats.async_enqueued > 0
        finally:
            cache.close()

    def test_drain_installs_pending_units_for_the_next_run(
            self, object_code):
        module = _fresh_module(object_code)
        cache = Tier2Cache(module, module.target_data, threshold=0,
                           async_compile=True)
        try:
            first, _ = _run(module, cache)
            assert cache.drain(timeout=10.0)
            assert cache.pending_compiles == 0
            assert cache.stats.swap_ins > 0
            # The drained units carry the second run entirely on tier 2.
            second, interpreter = _run(module, cache)
            assert second == first
            assert interpreter.tier2_calls > 0
            assert cache.stats.async_enqueued == cache.stats.swap_ins \
                + cache.stats.escalations + cache.stats.stale_drops
        finally:
            cache.close()

    def test_smc_invalidation_drops_in_flight_jobs(self, object_code):
        sync_outcome = self._sync_outcome(object_code)
        module = _fresh_module(object_code)
        cache = Tier2Cache(module, module.target_data, threshold=0,
                           async_compile=True)
        try:
            _run(module, cache)
            pending = [entry[0] for entry in cache._pending.values()]
            assert pending  # idle policy: jobs deferred past run end
            for function in pending:
                function.smc_version += 1
            assert cache.drain(timeout=10.0)
            assert cache.stats.stale_drops == len(pending)
            # The new bodies re-promote and still run correctly.
            outcome, _ = _run(module, cache)
            assert outcome == sync_outcome
        finally:
            cache.close()

    def test_unsupported_function_pins_after_drain(self, object_code):
        sync_outcome = self._sync_outcome(object_code)
        module = _fresh_module(object_code)
        cache = Tier2Cache(module, module.target_data, threshold=0,
                           async_compile=True)

        def reject(function, plan):
            raise UnsupportedFunction("injected: no tier-2 body")

        cache._build_plan = reject
        try:
            outcome, _ = _run(module, cache)
            assert outcome == sync_outcome  # tier 1 carried the run
            assert cache.drain(timeout=10.0)
            assert cache.stats.pins > 0
            assert cache.stats.swap_ins == 0
            # Pinned functions never re-enqueue.
            enqueued = cache.stats.async_enqueued
            again, _ = _run(module, cache)
            assert again == sync_outcome
            assert cache.stats.async_enqueued == enqueued
        finally:
            cache.close()

    def test_close_abandons_pending_without_breaking_execution(
            self, object_code):
        sync_outcome = self._sync_outcome(object_code)
        module = _fresh_module(object_code)
        cache = Tier2Cache(module, module.target_data, threshold=0,
                           async_compile=True)
        try:
            _run(module, cache)
            cache.close()  # shuts the owned service down mid-flight
            assert cache.pending_compiles == 0
            # Later promotions lazily recreate a service; execution
            # stays on tier 1 meanwhile and never breaks.
            outcome, _ = _run(module, cache)
            assert outcome == sync_outcome
        finally:
            cache.close()

    def test_shared_service_is_multi_tenant(self, object_code):
        service = CompileService(workers=1)
        module_a = _fresh_module(object_code)
        module_b = _fresh_module(object_code)
        cache_a = Tier2Cache(module_a, module_a.target_data, threshold=0,
                             compile_service=service)
        cache_b = Tier2Cache(module_b, module_b.target_data, threshold=0,
                             compile_service=service)
        try:
            outcome_a, _ = _run(module_a, cache_a)
            outcome_b, _ = _run(module_b, cache_b)
            assert outcome_a == outcome_b
            assert cache_a.drain(timeout=10.0)
            assert cache_b.drain(timeout=10.0)
            assert service.stats.submitted \
                == cache_a.stats.async_enqueued \
                + cache_b.stats.async_enqueued
            # A tenant closing must not tear down the shared service.
            cache_a.close()
            job = service.submit(lambda: "alive", label="probe")
            assert service.drain(timeout=10.0)
            assert job.future.result() == "alive"
        finally:
            cache_b.close()
            service.shutdown()

    def test_llee_report_carries_async_fields(self, object_code):
        manager = LLEE(make_target("x86"))
        try:
            report = manager.run_interpreted(
                object_code, engine="fast", tier2=True,
                tier2_threshold=0, async_compile=True)
            sync_report = manager.run_interpreted(
                object_code, engine="fast", tier2=True,
                tier2_threshold=0)
            assert report.tier2_async
            assert not sync_report.tier2_async
            assert report.output == sync_report.output
            assert report.return_value == sync_report.return_value
        finally:
            manager.close()
