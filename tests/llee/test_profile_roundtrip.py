"""Satellite: the profile instrumentation cycle is lossless.

``instrument_module`` -> run -> ``read_profile`` ->
``strip_instrumentation`` must leave the module verifier-clean and
byte-identical (printed form) to the pre-instrumentation module, for
both execution engines.
"""

import pytest

from helpers import build_factorial, build_loop_sum
from repro.execution import Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.ir import print_module, verify_module
from repro.llee import instrument_module, read_profile, \
    strip_instrumentation
from repro.llee.jit import FunctionJIT
from repro.minic import compile_source
from repro.targets import NativeModule, make_target

MINIC_PROGRAM = """
int helper(int x) { return x * 3 + 1; }
int main() {
    int i;
    int total;
    total = 0;
    for (i = 0; i < 25; i = i + 1) total = total + helper(i);
    return total % 251;
}
"""


def _modules():
    return [
        ("factorial", build_factorial()),
        ("loop_sum", build_loop_sum(12)),
        ("minic", compile_source(MINIC_PROGRAM, optimization_level=1)),
    ]


class TestProfileRoundTrip:
    @pytest.mark.parametrize("name,module",
                             _modules(), ids=lambda v: v
                             if isinstance(v, str) else "")
    def test_interpreter_round_trip(self, name, module):
        before = print_module(module)
        profile_map = instrument_module(module)
        verify_module(module)  # instrumented code is legal LLVA
        interpreter = Interpreter(module)
        result = interpreter.run()
        profile = read_profile(profile_map, interpreter)
        # Real counts were collected before stripping.
        assert sum(profile.counts.values()) > 0
        for function in module.functions.values():
            for block in function.blocks:
                assert (function.name,
                        block.name or "") in profile.counts
        strip_instrumentation(module)
        verify_module(module)
        assert print_module(module) == before
        # The stripped module still runs and agrees with the
        # instrumented run.
        assert Interpreter(module).run().return_value \
            == result.return_value

    def test_native_round_trip(self):
        module = build_loop_sum(9)
        target = make_target("x86")
        # Translation itself normalizes the CFG in place (critical-edge
        # splitting); do it once up front so the before/after comparison
        # isolates the instrumentation cycle.
        FunctionJIT(module, target).translate_all()
        before = print_module(module)
        profile_map = instrument_module(module)
        jit = FunctionJIT(module, target)
        simulator = MachineSimulator(
            NativeModule(target, module.name), module,
            resolver=jit.translate)
        simulator.run("main")
        profile = read_profile(profile_map, simulator)
        assert sum(profile.counts.values()) > 0
        strip_instrumentation(module)
        verify_module(module)
        assert print_module(module) == before

    def test_double_strip_is_harmless(self):
        module = build_factorial()
        before = print_module(module)
        instrument_module(module)
        strip_instrumentation(module)
        strip_instrumentation(module)  # idempotent
        assert print_module(module) == before
