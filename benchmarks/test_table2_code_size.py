"""Table 2, columns 3-4: native executable size vs LLVA object size.

Paper claim: "the virtual object code is significantly smaller than the
native code, roughly 1.3x to 2x for the larger programs ... most
instructions usually fit in a single 32-bit word [and] the virtual code
does not include verbose machine-specific code for argument passing,
register saves and restores, loading large immediate constants, etc."

Each benchmark times the virtual-object-code encoder on one workload;
the assertions check the size relationship, and the closing test prints
the measured table next to the paper's numbers.
"""

import pytest

from conftest import paper_row, workload_names
from repro.bitcode import write_module, write_module_with_stats


@pytest.mark.parametrize("name", workload_names())
def test_code_size(benchmark, table2, name):
    module = table2.module(name)
    table2.native(name, "sparc")  # fills the native-size columns

    data = benchmark(write_module, module)

    row = table2.rows[name]
    # row.llva_bytes was measured on the module as shipped; translation
    # afterwards splits critical edges in place, so a re-encode can be
    # slightly larger.  The shipped size is the honest column.
    assert row.llva_bytes <= len(data) <= row.llva_bytes * 1.1
    # The headline claim: virtual object code is smaller than native.
    assert row.llva_bytes < row.sparc_exe_bytes, (
        "{0}: LLVA {1}B should be below native {2}B".format(
            name, row.llva_bytes, row.sparc_exe_bytes))
    # And by a factor in the paper's neighbourhood (1.3x - 2x for large
    # programs; small ones run higher there and here).
    assert 1.1 <= row.size_ratio <= 6.0, row.size_ratio


@pytest.mark.parametrize("name", workload_names()[:3])
def test_short_form_hit_rate(benchmark, table2, name):
    """Ablation for the fixed 32-bit short instruction form: most
    instructions must fit it, or the compactness claim collapses."""
    module = table2.module(name)
    _data, stats = benchmark(write_module_with_stats, module)
    assert stats.short_form_fraction >= 0.5


def test_print_code_size_table(benchmark, table2):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    """Render the measured columns beside the paper's."""
    from conftest import emit_table

    lines = ["Table 2 (code size): measured at scale={0}".format(
        table2.scale)]
    lines.append("{0:<9} {1:>7} {2:>9} {3:>9} {4:>7} {5:>9}".format(
        "program", "loc", "nativeB", "llvaB", "ratio", "paper"))
    for name in workload_names():
        if name not in table2.rows:
            continue
        row = table2.rows[name]
        paper = paper_row(name)
        lines.append(
            "{0:<9} {1:>7} {2:>9} {3:>9} {4:>7.2f} {5:>9.2f}".format(
                name, row.loc, row.sparc_exe_bytes, row.llva_bytes,
                row.size_ratio, paper.size_ratio))
    emit_table("table2_code_size.txt", lines)
    measured = [table2.rows[n].size_ratio for n in workload_names()
                if n in table2.rows and table2.rows[n].llva_bytes]
    assert measured, "no size rows were computed"
    # Shape: native bigger than virtual on every single row.
    assert min(measured) > 1.0
