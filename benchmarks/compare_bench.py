"""Perf-regression guard: compare a fresh fastpath_bench JSON against
the committed baseline.

Usage::

    python benchmarks/compare_bench.py NEW.json \
        [--baseline BENCH_superblock.json] [--tolerance 0.15] \
        [--metric speedup|vector_geomean]

The comparison is restricted to the programs present in *both* files
(CI runs the quick subset against the committed full-suite baseline)
and gates on the geomean of the per-program speedups: a geomean more
than ``tolerance`` below the baseline's fails the run (exit 1), more
than ``tolerance`` above it prints a warning suggesting a baseline
refresh (exit 0 — improvements never break CI), and any engine
divergence fails immediately.  Wall-clock speedups are only comparable
at matching workload scales, so a scale mismatch is an error, not a
noisy pass.

``--first-run-baseline BENCH_asyncjit.json`` adds a second,
compile-inclusive gate on cold-start latency: the geomean of
per-program ``first_run_speedup`` values (async first-run wall time
vs the synchronous compiler's, both measured within the same run, so
the ratio is machine-independent) must not fall more than the
tolerance below the baseline's.  Steady-state throughput can hide a
cold-start regression — a scheduling-policy change that re-serializes
compilation onto the critical path leaves ``speedup`` untouched — so
the async-compile CI job gates both.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

DEFAULT_BASELINE = "BENCH_superblock.json"
DEFAULT_TOLERANCE = 0.15


def _rows(document):
    return {row["program"]: row for row in document.get("programs", [])}


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compare_first_run(current: dict, baseline: dict,
                      tolerance: float = DEFAULT_TOLERANCE,
                      out=sys.stdout) -> int:
    """Gate the geomean of per-program ``first_run_speedup`` values
    (sync first-run wall time / async first-run wall time, both from
    the same run) against a baseline.  Higher is better; a geomean
    more than *tolerance* below the baseline's fails."""
    current_rows = _rows(current)
    baseline_rows = _rows(baseline)
    common = sorted(name for name in set(current_rows) & set(baseline_rows)
                    if current_rows[name].get("first_run_speedup")
                    and baseline_rows[name].get("first_run_speedup"))
    if not common:
        out.write("FAIL: no first-run speedups in common with the "
                  "first-run baseline (run fastpath_bench with "
                  "--async-compile)\n")
        return 1
    mismatched = [name for name in common
                  if current_rows[name].get("scale")
                  != baseline_rows[name].get("scale")]
    if mismatched:
        out.write("FAIL: workload scale differs from the first-run "
                  "baseline for {0} — first-run behaviour is not "
                  "comparable (rerun with --scale {1})\n".format(
                      ", ".join(mismatched),
                      baseline_rows[mismatched[0]].get("scale")))
        return 1
    baseline_geomean = _geomean(
        [baseline_rows[n]["first_run_speedup"] for n in common])
    current_geomean = _geomean(
        [current_rows[n]["first_run_speedup"] for n in common])
    ratio = current_geomean / baseline_geomean
    out.write("first-run geomean ({0} programs): baseline {1:.3f}x, "
              "current {2:.3f}x, ratio {3:.3f} (tolerance {4:.0%})\n"
              .format(len(common), baseline_geomean, current_geomean,
                      ratio, tolerance))
    if ratio < 1.0 - tolerance:
        out.write("FAIL: first-run latency regressed more than {0:.0%} "
                  "against the first-run baseline\n".format(tolerance))
        return 1
    if ratio > 1.0 + tolerance:
        out.write("WARN: first-run latency improved more than {0:.0%} "
                  "— consider refreshing the first-run baseline\n"
                  .format(tolerance))
        return 0
    out.write("OK: first-run latency within tolerance\n")
    return 0


#: Gate metric -> the per-program row key its geomean is taken over.
_METRIC_ROW_KEYS = {
    "speedup": "speedup",
    "vector_geomean": "vector_speedup",
}


def compare(current: dict, baseline: dict,
            tolerance: float = DEFAULT_TOLERANCE, out=sys.stdout,
            metric: str = "speedup") -> int:
    row_key = _METRIC_ROW_KEYS[metric]
    if current.get("diverged"):
        out.write("FAIL: the candidate run diverged between engines\n")
        return 1
    current_rows = _rows(current)
    baseline_rows = _rows(baseline)
    common = sorted(name for name in set(current_rows)
                    & set(baseline_rows)
                    if current_rows[name].get(row_key)
                    and baseline_rows[name].get(row_key))
    if not common:
        out.write("FAIL: no programs in common with the baseline "
                  "(comparing {0!r})\n".format(row_key))
        return 1
    mismatched = [name for name in common
                  if current_rows[name].get("scale")
                  != baseline_rows[name].get("scale")]
    if mismatched:
        out.write("FAIL: workload scale differs from the baseline for "
                  "{0} — speedups are not comparable (rerun with "
                  "--scale {1})\n".format(
                      ", ".join(mismatched),
                      baseline_rows[mismatched[0]].get("scale")))
        return 1

    out.write("{0:<12} {1:>10} {2:>10} {3:>8}\n".format(
        "program", "baseline", "current", "ratio"))
    for name in common:
        base = baseline_rows[name][row_key]
        cur = current_rows[name][row_key]
        out.write("{0:<12} {1:>9.2f}x {2:>9.2f}x {3:>8.3f}\n".format(
            name, base, cur, cur / base))
    baseline_geomean = _geomean(
        [baseline_rows[n][row_key] for n in common])
    current_geomean = _geomean(
        [current_rows[n][row_key] for n in common])
    ratio = current_geomean / baseline_geomean
    out.write("{0} geomean ({1} programs): baseline {2:.3f}x, current "
              "{3:.3f}x, ratio {4:.3f} (tolerance {5:.0%})\n".format(
                  row_key, len(common), baseline_geomean,
                  current_geomean, ratio, tolerance))

    if ratio < 1.0 - tolerance:
        out.write("FAIL: speedup regressed more than {0:.0%} against "
                  "the committed baseline\n".format(tolerance))
        return 1
    if ratio > 1.0 + tolerance:
        out.write("WARN: speedup improved more than {0:.0%} — "
                  "consider refreshing the committed baseline\n"
                  .format(tolerance))
        return 0
    out.write("OK: within tolerance\n")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate a fastpath_bench JSON against the committed "
                    "baseline (fail on regression, warn on "
                    "improvement).")
    parser.add_argument("current", help="fresh bench JSON to check")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="committed baseline JSON "
                             "(default: %(default)s)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed geomean drop, as a fraction "
                             "(default: %(default)s)")
    parser.add_argument("--first-run-baseline", default=None,
                        help="also gate compile-inclusive first-run "
                             "latency against this bench JSON (e.g. "
                             "BENCH_asyncjit.json)")
    parser.add_argument("--metric", default="speedup",
                        choices=sorted(_METRIC_ROW_KEYS),
                        help="which per-program geomean to gate on: "
                             "'speedup' (fast engine vs reference) or "
                             "'vector_geomean' (--vectorize A/B, "
                             "against BENCH_vector.json)")
    args = parser.parse_args(argv)
    with open(args.current) as handle:
        current = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    status = compare(current, baseline, args.tolerance,
                     metric=args.metric)
    if args.first_run_baseline:
        with open(args.first_run_baseline) as handle:
            first_run_baseline = json.load(handle)
        status = max(status, compare_first_run(
            current, first_run_baseline, args.tolerance))
    return status


if __name__ == "__main__":
    sys.exit(main())
