"""Table 2, columns 5-9: per-instruction expansion to native code.

Paper claim: "each LLVA instruction translates into very few I-ISA
instructions on average; about 2-3 for X86 and 2.5-4 for SPARC V9.
Furthermore, all LLVA instructions are translated directly to native
machine code - no emulation routines are used at all."

Each benchmark times the x86 or SPARC translator on one workload; the
assertions pin the expansion ratios to the paper's band, and the final
test prints the full measured table.
"""

import pytest

from conftest import paper_row, workload_names
from repro.targets import make_target, translate_module

# The paper's observed extremes, with modest slack for the synthetic
# suite: x86 2.21-3.27, sparc 2.26-4.20.
X86_BAND = (1.8, 4.2)
SPARC_BAND = (1.6, 4.6)


@pytest.mark.parametrize("name", workload_names())
def test_x86_expansion(benchmark, table2, name):
    module = table2.module(name)
    target = make_target("x86")
    native = benchmark.pedantic(translate_module, args=(module, target),
                                iterations=1, rounds=1)
    table2.native(name, "x86")
    ratio = native.num_instructions() / module.num_instructions()
    assert X86_BAND[0] <= ratio <= X86_BAND[1], (name, ratio)


@pytest.mark.parametrize("name", workload_names())
def test_sparc_expansion(benchmark, table2, name):
    module = table2.module(name)
    target = make_target("sparc")
    native = benchmark.pedantic(translate_module, args=(module, target),
                                iterations=1, rounds=1)
    table2.native(name, "sparc")
    ratio = native.num_instructions() / module.num_instructions()
    assert SPARC_BAND[0] <= ratio <= SPARC_BAND[1], (name, ratio)


def test_no_emulation_routines(benchmark, table2):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    """Every LLVA instruction lowers to machine instructions directly:
    the translated module calls only symbols that exist as LLVA
    functions, runtime routines, or intrinsics — no hidden emulation
    helpers."""
    from repro.execution.runtime import is_runtime_name
    from repro.ir.intrinsics import is_intrinsic_name
    from repro.targets.machine import Semantics, SymRef

    name = workload_names()[0]
    module = table2.module(name)
    native = table2.native(name, "x86")
    for machine in native.functions.values():
        for instr in machine.instructions():
            if instr.semantics != Semantics.CALL:
                continue
            callee = instr.operands[0]
            if isinstance(callee, SymRef):
                assert (callee.name in module.functions
                        or is_runtime_name(callee.name)
                        or is_intrinsic_name(callee.name)), callee.name


def test_print_expansion_table(benchmark, table2):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    from conftest import emit_table

    lines = ["Table 2 (instruction expansion): measured at scale={0}"
             .format(table2.scale)]
    header = ("program", "#llva", "#x86", "ratio", "paper",
              "#sparc", "ratio", "paper")
    lines.append(
        "{0:<9} {1:>7} {2:>8} {3:>6} {4:>6} {5:>8} {6:>6} {7:>6}"
        .format(*header))
    x86_ratios = []
    sparc_ratios = []
    for name in workload_names():
        if name not in table2.rows:
            continue
        row = table2.rows[name]
        if not (row.x86_insts and row.sparc_insts):
            continue
        paper = paper_row(name)
        lines.append("{0:<9} {1:>7} {2:>8} {3:>6.2f} {4:>6.2f} {5:>8} "
                     "{6:>6.2f} {7:>6.2f}".format(
                         name, row.llva_insts, row.x86_insts,
                         row.x86_ratio, paper.x86_ratio,
                         row.sparc_insts, row.sparc_ratio,
                         paper.sparc_ratio))
        x86_ratios.append(row.x86_ratio)
        sparc_ratios.append(row.sparc_ratio)
    assert x86_ratios and sparc_ratios
    mean_x86 = sum(x86_ratios) / len(x86_ratios)
    mean_sparc = sum(sparc_ratios) / len(sparc_ratios)
    lines.append(
        "means: x86 {0:.2f} (paper 2.57), sparc {1:.2f} (paper 3.21)"
        .format(mean_x86, mean_sparc))
    emit_table("table2_expansion.txt", lines)
    # Shape: both means inside the paper's "very few instructions" band.
    assert 2.0 <= mean_x86 <= 4.0
    assert 2.0 <= mean_sparc <= 4.5
