"""Section 5.1: the representation supports high-level optimization.

The paper argues qualitatively that LLVA's types + CFG + SSA enable
"sophisticated compiler tasks traditionally performed only in
source-level compilers."  These benchmarks make the claims quantitative
on this reproduction:

* the -O2 machine-independent pipeline (mem2reg/SCCP/GVN/LICM/ADCE)
  shrinks both the instruction count and the executed steps;
* link-time interprocedural optimization (inlining + global cleanup)
  goes further — the paper's flagship stage;
* Data Structure Analysis finds disjoint heap instances and Automatic
  Pool Allocation converts their malloc/free traffic to pool bumps;
* the ExceptionsEnabled bit is load-bearing: clearing it on safe code
  unlocks LICM hoisting (Section 3.3's reordering claim).
"""

import pytest

from conftest import workload_names
from repro.analysis.dsa import ModuleDSA
from repro.benchsuite import load_workload
from repro.execution import Interpreter
from repro.minic import compile_source
from repro.transforms import (
    AutomaticPoolAllocation,
    optimize,
)

#: A pointer-heavy subset for the optimizer ablations.
ABLATION_SET = ["anagram", "ks", "mcf", "vortex"]


def _steps(module) -> int:
    return Interpreter(module).run("main").steps


@pytest.mark.parametrize("name", ABLATION_SET)
def test_o2_reduces_work(benchmark, table2, name):
    source = load_workload(name, min(table2.scale, 0.15)).source
    module_o0 = compile_source(source, name, optimization_level=0)
    module_o2 = compile_source(source, name, optimization_level=0)

    def run_pipeline():
        return optimize(module_o2, level=2)

    benchmark.pedantic(run_pipeline, iterations=1, rounds=1)
    steps_o0 = _steps(module_o0)
    steps_o2 = _steps(module_o2)
    print("{0}: steps O0={1} O2={2} ({3:.1%} saved)".format(
        name, steps_o0, steps_o2, 1 - steps_o2 / steps_o0))
    assert steps_o2 < steps_o0
    assert module_o2.num_instructions() < module_o0.num_instructions()


@pytest.mark.parametrize("name", ABLATION_SET[:2])
def test_link_time_beats_per_module(benchmark, table2, name):
    source = load_workload(name, min(table2.scale, 0.15)).source
    module_o2 = compile_source(source, name, optimization_level=2)
    module_lto = compile_source(source, name, optimization_level=0)

    def run_link_time():
        return optimize(module_lto, link_time=True)

    benchmark.pedantic(run_link_time, iterations=1, rounds=1)
    steps_o2 = _steps(module_o2)
    steps_lto = _steps(module_lto)
    print("{0}: steps O2={1} link-time={2}".format(
        name, steps_o2, steps_lto))
    # Inlining must not lose ground; on these call-heavy workloads it
    # should win.
    assert steps_lto <= steps_o2


def test_dsa_finds_disjoint_instances(benchmark, table2):
    """DSA identifies the paper's 'disjoint instances of such
    structures' on the pointer benchmarks."""
    module = table2.module("mcf")

    def analyze():
        return ModuleDSA(module)

    dsa = benchmark(analyze)
    assert dsa.total_heap_instances() >= 1


def test_pool_allocation_cuts_allocator_traffic(benchmark):
    source = r"""
    struct Item { int v; struct Item* next; };
    int burn(int rounds, int length) {
        int total = 0;
        int r;
        for (r = 0; r < rounds; r++) {
            struct Item* head = null;
            int i;
            for (i = 0; i < length; i++) {
                struct Item* it = (struct Item*) malloc(sizeof(struct Item));
                it->v = i ^ r;
                it->next = head;
                head = it;
            }
            while (head != null) {
                total += head->v;
                struct Item* d = head;
                head = head->next;
                free((char*) d);
            }
        }
        return total;
    }
    int main() { return burn(40, 25) % 32768; }
    """
    module = compile_source(source, "poolbench", optimization_level=1)
    baseline = Interpreter(module)
    base_result = baseline.run("main")
    base_ops = baseline.runtime.malloc_calls + baseline.runtime.free_calls

    def pool_transform():
        return AutomaticPoolAllocation().run_module(module)

    changed = benchmark.pedantic(pool_transform, iterations=1, rounds=1)
    assert changed
    pooled = Interpreter(module)
    pooled_result = pooled.run("main")
    assert pooled_result.return_value == base_result.return_value
    pooled_ops = pooled.runtime.malloc_calls + pooled.runtime.free_calls
    print("allocator ops: {0} -> {1}; pool bumps {2}, slabs {3}".format(
        base_ops, pooled_ops, pooled.runtime.pool_allocs,
        pooled.runtime.pool_slab_mallocs))
    assert pooled_ops == 0
    assert pooled.runtime.pool_slab_mallocs < base_ops / 10


def test_exceptions_enabled_gates_licm(benchmark):
    """Section 3.3: clearing ExceptionsEnabled lets the translator
    reorder (hoist) an instruction it otherwise must keep in place."""
    from repro.asm import parse_module
    from repro.ir import verify_module
    from repro.transforms import LoopInvariantCodeMotion

    source = """
    int %kernel(int %n, int %a, int %b) {
    entry:
            br label %loop
    loop:
            %i = phi int [ 0, %entry ], [ %i2, %guarded ]
            %s = phi int [ 0, %entry ], [ %s2, %guarded ]
            %c = setlt int %i, %n
            br bool %c, label %guarded, label %done
    guarded:
            %q = div int %a, %b {EE}
            %s2 = add int %s, %q
            %i2 = add int %i, 1
            br label %loop
    done:
            ret int %s
    }
    """

    def hoisted_count(ee_flag: str) -> bool:
        module = parse_module(source.replace("{EE}", ee_flag))
        verify_module(module)
        function = module.get_function("kernel")
        loop_body = [b for b in function.blocks if b.name == "guarded"][0]
        had_div = any(i.opcode == "div" for i in loop_body.instructions)
        assert had_div
        LoopInvariantCodeMotion().run(function)
        verify_module(module)
        still_there = any(i.opcode == "div"
                          for i in loop_body.instructions)
        return not still_there

    # div is guarded by the loop condition and ExceptionsEnabled is on
    # by default: hoisting would move a potential trap before the guard.
    assert not hoisted_count("")
    # With the bit cleared, the translator is free to hoist.
    assert benchmark.pedantic(hoisted_count, args=("!ee(false)",),
                              iterations=1, rounds=1)
