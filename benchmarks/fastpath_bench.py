#!/usr/bin/env python
"""Differential benchmark: fast engine vs reference interpreter.

For every selected benchsuite workload this script compiles the program
once (O2), runs it on both interpreter engines, *verifies the engines
agree* on return value, output, architectural step count, and exit
status, and reports steps/second for each engine plus the speedup.

Any divergence is a correctness failure: the script prints the
mismatch and exits nonzero, which is what the CI perf-smoke job keys
on.  Timing numbers are informational — CI never fails on them.

``--tier2`` turns the fast engine into the tiered translator (tier-2
promotion forced by default with threshold 0) and reports the per-tier
step split plus decode/compile/run second breakdown; the report is
written to ``BENCH_tierjit.json`` instead of ``BENCH_fastpath.json``.
``--repeat N`` re-runs each engine N times against the same decode and
tier-2 caches and reports the min (steady state): the first iteration
pays decode+compile, later ones measure the running tier.
``--superblocks`` (implying ``--tier2 --osr``) adds the trace-guided
superblock tier: iteration 1 profiles and upgrades mid-run through
OSR, later iterations compile hot traces straight-line up front; the
report lands in ``BENCH_superblock.json``.
``--tier3`` (implying ``--tier2``) promotes every function past tier 2
to hosted native execution: the x86 (or ``--tier3-target sparc``) back
end translates it and the hosted executor runs the machine code,
yielding back to the tier-1 driver for calls, runtime requests, and
traps.  The report gains the tier-3 step/compile columns and lands in
``BENCH_tier3.json``.  ``--tier3-backend step`` swaps the hosted units
onto the one-instruction interpreter (the precise oracle the default
block-compiled threaded backend is differential-tested against).
``--async-compile`` (implying ``--tier2``) moves tier-2 compilation
onto the background compile service: the timed run keeps executing
tier 1 while workers build units, which are swapped in at safe yield
points.  Each program is additionally run once with *synchronous*
compilation so the report carries a first-run-latency comparison
(``sync_first_run_seconds`` / ``first_run_speedup``), plus a
warm-sharing measurement: two fresh caches against one shared
storage, the second reporting ``warm_first_run_seconds`` and
``tier2_warm_compiles``.  The report lands in ``BENCH_asyncjit.json``.
Background compiles land whenever the engine next polls, so
``tier2_step_fraction`` is load-dependent under ``--async-compile``
and must not be gated on.

Usage:
    PYTHONPATH=src python benchmarks/fastpath_bench.py            # full
    PYTHONPATH=src python benchmarks/fastpath_bench.py --quick    # CI
    PYTHONPATH=src python benchmarks/fastpath_bench.py \\
        --programs ft ks --scale 0.1 --out BENCH_fastpath.json
    PYTHONPATH=src python benchmarks/fastpath_bench.py \\
        --tier2 --repeat 3                         # tiered, steady state
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

from repro.benchsuite import SUITE_ORDER, load_workload
from repro.execution import DecodeCache, ExecutionTrap, Interpreter
from repro.minic import compile_source

#: Small, fast-terminating programs for the CI smoke run.
QUICK_PROGRAMS = ["ft", "ks", "anagram"]
QUICK_SCALE = 0.05


def run_engine(module, engine, sanitize=False, repeat=1,
               tier2=False, tier2_threshold=0, superblocks=False,
               osr=False, async_compile=False, compile_workers=None,
               tier3=False, tier3_threshold=0, tier3_target=None,
               tier3_backend="threaded",
               storage=None, storage_key=None):
    """Run *module* ``repeat`` times on one engine against shared
    decode/tier-2 caches; returns a measurement dict (seconds = min).

    With ``async_compile`` the timed window covers only the run
    itself; the cache is drained *between* repeats (untimed) so later
    iterations measure the steady state, mirroring how an idle-time
    translator amortises compilation across invocations.  Passing a
    ``storage`` attaches the tier-2 cache to a Section-4.1 storage
    API under ``storage_key`` and flushes translations back at the
    end (the warm-sharing measurement reuses one storage across two
    fresh caches)."""
    decode_cache = None
    tier2_cache = None
    use_osr = bool(tier2 and not sanitize and osr)
    if engine == "fast":
        decode_cache = DecodeCache(module.target_data, sanitize=sanitize,
                                   osr=use_osr)
        if tier2 and not sanitize:
            from repro.execution.tier2 import Tier2Cache

            tier2_cache = Tier2Cache(module, module.target_data,
                                     threshold=tier2_threshold,
                                     superblocks=superblocks,
                                     osr=use_osr,
                                     async_compile=async_compile,
                                     compile_workers=compile_workers,
                                     tier3=tier3,
                                     tier3_threshold=tier3_threshold,
                                     tier3_target=tier3_target,
                                     tier3_backend=tier3_backend)
            if storage is not None:
                tier2_cache.attach_storage(storage, storage_key
                                           or module.name)
    seconds = []
    observations = []
    faults = 0
    tier2_steps = tier2_calls = side_exits = 0
    tier3_steps = tier3_calls = 0
    pending_at_exit = 0
    for iteration in range(repeat):
        interpreter = Interpreter(
            module, engine=engine,
            decode_cache=decode_cache, sanitize=sanitize,
            tier2=tier2_cache if tier2_cache is not None else False)
        started = time.perf_counter()
        try:
            result = interpreter.run("main")
            observation = (result.return_value, result.output,
                           result.steps, result.exit_status)
        except ExecutionTrap as trap:
            # A trapping benchsuite program is itself a finding (the
            # sanitized suite must run clean); record it as an
            # observation so divergence checking still applies.
            observation = ("trap", trap.trap_number, trap.detail,
                           interpreter.steps)
        seconds.append(time.perf_counter() - started)
        observations.append(observation)
        if tier2_cache is not None and tier2_cache.async_compile:
            if iteration == 0:
                pending_at_exit = tier2_cache.pending_compiles
            # Land in-flight units off the clock so the next repeat
            # measures the compiled steady state.
            tier2_cache.drain()
        san = interpreter.memory.san
        faults += san.fault_count if san is not None else 0
        tier2_steps = getattr(interpreter, "tier2_steps", 0)
        tier2_calls = getattr(interpreter, "tier2_calls", 0)
        side_exits = getattr(interpreter, "t2_side_exits", 0)
        tier3_steps = getattr(interpreter, "tier3_steps", 0)
        tier3_calls = getattr(interpreter, "tier3_calls", 0)
    if tier2_cache is not None:
        if storage is not None:
            tier2_cache.flush_storage()
        warm_compiles = tier2_cache.stats.warm_compiles
        swap_ins = tier2_cache.stats.swap_ins
        swap_wait = tier2_cache.stats.swap_wait_seconds
        async_enqueued = tier2_cache.stats.async_enqueued
        tier2_cache.close()
    else:
        warm_compiles = swap_ins = async_enqueued = 0
        swap_wait = 0.0
    return {
        "warm_compiles": warm_compiles,
        "swap_ins": swap_ins,
        "swap_wait_seconds": swap_wait,
        "async_enqueued": async_enqueued,
        "pending_at_exit": pending_at_exit,
        "observation": observations[0],
        # Every repeat must observe the same architectural results;
        # a flaky engine is as wrong as a diverging one.
        "stable": all(obs == observations[0] for obs in observations),
        "seconds": min(seconds),
        "first_seconds": seconds[0],
        "decode_seconds": (decode_cache.stats.decode_seconds
                           if decode_cache is not None else 0.0),
        "compile_seconds": (tier2_cache.stats.compile_seconds
                            if tier2_cache is not None else 0.0),
        "functions_compiled": (tier2_cache.stats.functions_compiled
                               if tier2_cache is not None else 0),
        "tier2_pins": (tier2_cache.stats.pins
                       if tier2_cache is not None else 0),
        "tier2_steps": tier2_steps,
        "tier2_calls": tier2_calls,
        "superblocks_compiled": (tier2_cache.stats.superblocks_compiled
                                 if tier2_cache is not None else 0),
        "osr_entries": (tier2_cache.stats.osr_entries
                        if tier2_cache is not None else 0),
        "osr_upgrades": (tier2_cache.stats.osr_upgrades
                         if tier2_cache is not None else 0),
        "side_exits": side_exits,
        "tier3_steps": tier3_steps,
        "tier3_calls": tier3_calls,
        "tier3_compiled": (tier2_cache.stats.tier3_compiled
                           if tier2_cache is not None else 0),
        "tier3_pins": (tier2_cache.stats.tier3_pins
                       if tier2_cache is not None else 0),
        "tier3_deopts": (tier2_cache.stats.tier3_deopts
                         if tier2_cache is not None else 0),
        "tier3_compile_seconds": (
            tier2_cache.stats.tier3_compile_seconds
            if tier2_cache is not None else 0.0),
        "tier3_threaded_units": (
            tier2_cache.stats.tier3_threaded_units
            if tier2_cache is not None else 0),
        "tier3_step_units": (tier2_cache.stats.tier3_step_units
                             if tier2_cache is not None else 0),
        "tier3_degraded": (tier2_cache.stats.tier3_degraded
                           if tier2_cache is not None else 0),
        "faults": faults,
    }


def bench_program(name, scale, sanitize=False, repeat=1, tier2=False,
                  tier2_threshold=0, superblocks=False, osr=False,
                  async_compile=False, compile_workers=None,
                  tier3=False, tier3_threshold=0, tier3_target=None,
                  tier3_backend="threaded"):
    workload = load_workload(name, scale)
    module = compile_source(workload.source, name, optimization_level=2)
    ref = run_engine(module, "reference", sanitize, repeat=repeat)
    fast = run_engine(module, "fast", sanitize, repeat=repeat,
                      tier2=tier2, tier2_threshold=tier2_threshold,
                      superblocks=superblocks, osr=osr,
                      async_compile=async_compile,
                      compile_workers=compile_workers,
                      tier3=tier3, tier3_threshold=tier3_threshold,
                      tier3_target=tier3_target,
                      tier3_backend=tier3_backend)
    sync = warm = None
    async_first = sync_first = None
    if async_compile and not sanitize:
        # First-run latency: `repeat` *independent* cold starts per
        # configuration (fresh caches each time), interleaved so
        # machine drift hits both sides alike; min-of-N on each side.
        # A cold start is a single noisy sample — one per side is not
        # a measurement.
        async_samples, sync_samples = [], []
        for _ in range(repeat):
            cold = run_engine(module, "fast", sanitize, repeat=1,
                              tier2=tier2,
                              tier2_threshold=tier2_threshold,
                              superblocks=superblocks, osr=osr,
                              async_compile=True,
                              compile_workers=compile_workers)
            async_samples.append(cold["first_seconds"])
            # Same configuration, compilation forced back inline: the
            # first-run delta is the compile latency the service
            # moved off the critical path.
            sync = run_engine(module, "fast", sanitize, repeat=1,
                              tier2=tier2,
                              tier2_threshold=tier2_threshold,
                              superblocks=superblocks, osr=osr)
            sync_samples.append(sync["first_seconds"])
        async_first = min(async_samples)
        sync_first = min(sync_samples)
        # Warm sharing: a first tenant populates one shared storage,
        # then a *fresh* cache (second tenant) warm-starts from it —
        # its first run should compile nothing.
        from repro.llee.storage import InMemoryStorage

        shared = InMemoryStorage()
        run_engine(module, "fast", sanitize, repeat=1,
                   tier2=tier2, tier2_threshold=tier2_threshold,
                   superblocks=superblocks, osr=osr,
                   async_compile=True, compile_workers=compile_workers,
                   storage=shared, storage_key=name)
        warm = run_engine(module, "fast", sanitize, repeat=1,
                          tier2=tier2,
                          tier2_threshold=tier2_threshold,
                          superblocks=superblocks, osr=osr,
                          async_compile=True,
                          compile_workers=compile_workers,
                          storage=shared, storage_key=name)
    ref_obs, fast_obs = ref["observation"], fast["observation"]
    steps = ref_obs[2] if ref_obs[0] != "trap" else ref_obs[3]
    ref_seconds, fast_seconds = ref["seconds"], fast["seconds"]
    row = {
        "program": name,
        "scale": scale,
        "steps": steps,
        "sanitizer_faults": ref["faults"] + fast["faults"],
        "reference_seconds": round(ref_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "fast_decode_seconds": round(fast["decode_seconds"], 6),
        "reference_steps_per_sec": round(steps / ref_seconds, 1)
        if ref_seconds > 0 else None,
        "fast_steps_per_sec": round(steps / fast_seconds, 1)
        if fast_seconds > 0 else None,
        "speedup": round(ref_seconds / fast_seconds, 3)
        if fast_seconds > 0 else None,
        "diverged": (ref_obs != fast_obs or not ref["stable"]
                     or not fast["stable"]),
    }
    if tier2:
        # Per-tier breakdown: where the steps ran and where the
        # translation time went (decode = tier 1, compile = tier 2,
        # tier3_compile = native translation for the hosted executor).
        row["tier2_steps"] = fast["tier2_steps"]
        row["tier1_steps"] = max(steps - fast["tier2_steps"]
                                 - fast["tier3_steps"], 0)
        row["tier2_calls"] = fast["tier2_calls"]
        row["tier2_functions_compiled"] = fast["functions_compiled"]
        row["tier2_pins"] = fast["tier2_pins"]
        row["fast_compile_seconds"] = round(fast["compile_seconds"], 6)
        row["fast_first_run_seconds"] = round(fast["first_seconds"], 6)
    if tier3:
        row["tier3_steps"] = fast["tier3_steps"]
        row["tier3_calls"] = fast["tier3_calls"]
        row["tier3_functions_compiled"] = fast["tier3_compiled"]
        row["tier3_pins"] = fast["tier3_pins"]
        row["tier3_deopts"] = fast["tier3_deopts"]
        row["tier3_compile_seconds"] = round(
            fast["tier3_compile_seconds"], 6)
        row["tier3_backend"] = tier3_backend
        row["tier3_threaded_units"] = fast["tier3_threaded_units"]
        row["tier3_step_units"] = fast["tier3_step_units"]
        row["tier3_degraded"] = fast["tier3_degraded"]
    if superblocks or osr:
        row["tier2_superblocks"] = fast["superblocks_compiled"]
        row["tier2_osr_entries"] = fast["osr_entries"]
        row["tier2_osr_upgrades"] = fast["osr_upgrades"]
        row["tier2_side_exits"] = fast["side_exits"]
    if async_compile and not sanitize:
        # The async engine must agree with the sync one (and the warm
        # second tenant with both) — swap-in timing is not allowed to
        # change architectural results.
        row["diverged"] = (row["diverged"]
                           or sync["observation"] != ref_obs
                           or warm["observation"] != ref_obs
                           or not sync["stable"] or not warm["stable"])
        row["tier2_async_enqueued"] = fast["async_enqueued"]
        row["tier2_swap_ins"] = fast["swap_ins"]
        row["tier2_swap_wait_seconds"] = round(
            fast["swap_wait_seconds"], 6)
        row["tier2_pending_at_exit"] = fast["pending_at_exit"]
        row["async_first_run_seconds"] = round(async_first, 6)
        row["sync_first_run_seconds"] = round(sync_first, 6)
        row["first_run_speedup"] = round(sync_first / async_first, 3) \
            if async_first > 0 else None
        row["warm_first_run_seconds"] = round(warm["first_seconds"], 6)
        row["tier2_warm_compiles"] = warm["warm_compiles"]
        row["warm_recompiles"] = warm["functions_compiled"] \
            - warm["warm_compiles"]
    if row["diverged"]:
        row["reference_observation"] = repr(ref_obs)
        row["fast_observation"] = repr(fast_obs)
    return row


#: The numeric rows whose inner loops the autovectorizer targets —
#: the ``--vectorize`` mode's default selection.
VECTOR_PROGRAMS = ["art", "equake", "ammp", "ft"]


def _result_summary(observation):
    """Architectural results minus the step count: vectorization
    legitimately changes how many steps a program takes, and nothing
    else."""
    if observation[0] == "trap":
        return observation
    return (observation[0], observation[1], observation[3])


def bench_vector_program(name, scale, repeat=1):
    """One workload compiled twice — scalar -O2 and -O2 --vectorize —
    measured on the fast engine and under forced tier 2.

    The vectorized module must match the reference interpreter *on
    itself* byte for byte (including steps), and must produce the same
    return value, output, and exit status as the scalar build; the
    speedup columns are vector-off wall time over vector-on."""
    workload = load_workload(name, scale)
    scalar_mod = compile_source(workload.source, name,
                                optimization_level=2)
    vector_mod = compile_source(workload.source, name,
                                optimization_level=2, vectorize=True)
    reference = run_engine(vector_mod, "reference", repeat=1)
    runs = {}
    for label, module in (("scalar", scalar_mod),
                          ("vector", vector_mod)):
        runs[label] = {
            "fast": run_engine(module, "fast", repeat=repeat),
            "tier2": run_engine(module, "fast", repeat=repeat,
                                tier2=True, tier2_threshold=0),
        }
    ref_obs = reference["observation"]
    vec_fast = runs["vector"]["fast"]
    vec_tier2 = runs["vector"]["tier2"]
    scalar_fast = runs["scalar"]["fast"]
    scalar_tier2 = runs["scalar"]["tier2"]
    diverged = (
        vec_fast["observation"] != ref_obs
        or vec_tier2["observation"] != ref_obs
        or _result_summary(scalar_fast["observation"])
        != _result_summary(ref_obs)
        or scalar_fast["observation"] != scalar_tier2["observation"]
        or not all(m["stable"] for engines in runs.values()
                   for m in engines.values()))
    scalar_steps = scalar_fast["observation"][2] \
        if scalar_fast["observation"][0] != "trap" else 0
    vector_steps = vec_fast["observation"][2] \
        if vec_fast["observation"][0] != "trap" else 0
    row = {
        "program": name,
        "scale": scale,
        "scalar_steps": scalar_steps,
        "vector_steps": vector_steps,
        "step_ratio": round(scalar_steps / vector_steps, 3)
        if vector_steps else None,
        "scalar_fast_seconds": round(scalar_fast["seconds"], 6),
        "vector_fast_seconds": round(vec_fast["seconds"], 6),
        "vector_speedup": round(scalar_fast["seconds"]
                                / vec_fast["seconds"], 3)
        if vec_fast["seconds"] > 0 else None,
        "scalar_tier2_seconds": round(scalar_tier2["seconds"], 6),
        "vector_tier2_seconds": round(vec_tier2["seconds"], 6),
        "vector_speedup_tier2": round(scalar_tier2["seconds"]
                                      / vec_tier2["seconds"], 3)
        if vec_tier2["seconds"] > 0 else None,
        "diverged": diverged,
    }
    if diverged:
        row["reference_observation"] = repr(ref_obs)
        row["vector_fast_observation"] = repr(vec_fast["observation"])
    return row


#: Trivial program used to warm the translator machinery (codegen
#: imports, compile-service thread spin-up) before any timed run, so
#: the first measured program is not charged process one-time costs.
_WARMUP_SOURCE = """
int work(int n) { int s = 0; for (int i = 0; i < n; i = i + 1)
                  s = s + i; return s; }
int main() { return work(64); }
"""


def warm_translator(async_compile=False, tier3=False,
                    tier3_target=None, tier3_backend="threaded"):
    module = compile_source(_WARMUP_SOURCE, "benchwarm",
                            optimization_level=2)
    run_engine(module, "fast", repeat=1, tier2=True, tier2_threshold=0)
    if async_compile:
        run_engine(module, "fast", repeat=1, tier2=True,
                   tier2_threshold=0, async_compile=True)
    if tier3:
        # Pulls in the target back end + register allocator once, off
        # the clock.
        run_engine(module, "fast", repeat=1, tier2=True,
                   tier2_threshold=0, tier3=True, tier3_threshold=0,
                   tier3_target=tier3_target,
                   tier3_backend=tier3_backend)


def geomean(values):
    values = [v for v in values if v and v > 0]
    if not values:
        return None
    return round(math.exp(sum(math.log(v) for v in values)
                          / len(values)), 3)


def _vectorize_main(parser, args, programs, scale, out_path):
    """The ``--vectorize`` A/B report: per-program scalar-vs-vector
    wall time and step counts, gated by ``compare_bench.py
    --metric vector_geomean``."""
    warm_translator()
    rows = []
    diverged = False
    for name in programs:
        if name not in SUITE_ORDER:
            parser.error("unknown workload {0!r} (choose from {1})"
                         .format(name, ", ".join(SUITE_ORDER)))
        row = bench_vector_program(name, scale, repeat=args.repeat)
        rows.append(row)
        if row["diverged"]:
            status = "DIVERGED"
        else:
            status = ("fast {0:.2f}x  tier2 {1:.2f}x  steps "
                      "{2:.3f}x".format(row["vector_speedup"] or 0.0,
                                        row["vector_speedup_tier2"]
                                        or 0.0,
                                        row["step_ratio"] or 0.0))
        print("{0:<10} {1:>12,} -> {2:>12,} steps  {3}".format(
            name, row["scalar_steps"], row["vector_steps"], status))
        diverged = diverged or row["diverged"]
    report = {
        "scale": scale,
        "vectorize": True,
        "repeat": args.repeat,
        "programs": rows,
        "vector_geomean": geomean(
            [r["vector_speedup"] for r in rows]),
        "vector_geomean_tier2": geomean(
            [r["vector_speedup_tier2"] for r in rows]),
        "step_ratio_geomean": geomean(
            [r["step_ratio"] for r in rows]),
        "diverged": diverged,
    }
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print("vector geomean: fast {0}x, tier2 {1}x, steps {2}x -> {3}"
          .format(report["vector_geomean"],
                  report["vector_geomean_tier2"],
                  report["step_ratio_geomean"], out_path))
    if diverged:
        print("ERROR: vectorization diverged; see {0}".format(
            out_path), file=sys.stderr)
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fast-engine differential benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: {0} at scale {1}".format(
                            "/".join(QUICK_PROGRAMS), QUICK_SCALE))
    parser.add_argument("--scale", type=float, default=0.2,
                        help="workload scale factor (default 0.2)")
    parser.add_argument("--programs", nargs="+", metavar="NAME",
                        help="workloads to run (default: whole suite)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run both engines under llva-san; any "
                             "reported fault fails the run (the suite "
                             "must be sanitizer-clean)")
    parser.add_argument("--tier2", action="store_true",
                        help="enable the tier-2 translator on the fast "
                             "engine and report the per-tier breakdown")
    parser.add_argument("--tier2-threshold", type=int, default=0,
                        metavar="N",
                        help="tier-2 promotion threshold (default 0: "
                             "compile every function on first call)")
    parser.add_argument("--superblocks", action="store_true",
                        help="trace-guided superblock tier-2 codegen; "
                             "implies --tier2 and --osr (the profiling "
                             "stage upgrades mid-run via OSR)")
    parser.add_argument("--osr", action="store_true",
                        help="on-stack replacement at hot tier-1 loop "
                             "headers (implies --tier2)")
    parser.add_argument("--async-compile", action="store_true",
                        help="compile tier-2 units on the background "
                             "service (implies --tier2); adds the "
                             "sync-vs-async first-run-latency and "
                             "warm-sharing columns")
    parser.add_argument("--compile-workers", type=int, default=None,
                        metavar="N",
                        help="background compile worker threads "
                             "(default: service default)")
    parser.add_argument("--tier3", action="store_true",
                        help="promote hot tier-2 functions to hosted "
                             "native execution (implies --tier2); "
                             "reports the tier-3 step/compile columns")
    parser.add_argument("--tier3-threshold", type=int, default=0,
                        metavar="N",
                        help="tier-2 step credit before tier-3 "
                             "promotion (default 0: promote every "
                             "function on first lookup)")
    parser.add_argument("--tier3-target", default="x86",
                        choices=("x86", "sparc"),
                        help="back end for tier-3 native units "
                             "(default x86)")
    parser.add_argument("--tier3-backend", default="threaded",
                        choices=("threaded", "step"),
                        help="hosted execution backend: block-compiled "
                             "direct-threaded code (default) or the "
                             "one-instruction step interpreter")
    parser.add_argument("--vectorize", action="store_true",
                        help="A/B the loop autovectorizer: each "
                             "program compiled -O2 with and without "
                             "--vectorize, measured on the fast "
                             "engine and under forced tier 2; the "
                             "report (default programs: {0}) lands in "
                             "BENCH_vector.json".format(
                                 "/".join(VECTOR_PROGRAMS)))
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run each engine N times against shared "
                             "caches and report min-of-N (steady state)")
    parser.add_argument("--out", default=None,
                        help="JSON output path (default "
                             "BENCH_fastpath.json, BENCH_tierjit.json "
                             "with --tier2, BENCH_superblock.json "
                             "with --superblocks, or "
                             "BENCH_asyncjit.json with "
                             "--async-compile)")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")
    if args.superblocks:
        args.osr = True
    if args.osr or args.async_compile or args.tier3:
        args.tier2 = True
    out_path = args.out or (
        "BENCH_vector.json" if args.vectorize
        else "BENCH_tier3.json" if args.tier3
        else "BENCH_asyncjit.json" if args.async_compile
        else "BENCH_superblock.json" if args.superblocks
        else "BENCH_tierjit.json" if args.tier2
        else "BENCH_fastpath.json")

    programs = args.programs or (
        list(VECTOR_PROGRAMS) if args.vectorize else list(SUITE_ORDER))
    scale = args.scale
    if args.quick:
        programs = args.programs or (
            VECTOR_PROGRAMS if args.vectorize else QUICK_PROGRAMS)
        scale = QUICK_SCALE

    if args.vectorize:
        return _vectorize_main(parser, args, programs, scale, out_path)

    if args.tier2 and not args.sanitize:
        warm_translator(async_compile=args.async_compile,
                        tier3=args.tier3,
                        tier3_target=args.tier3_target,
                        tier3_backend=args.tier3_backend)

    rows = []
    diverged = False
    total_faults = 0
    for name in programs:
        if name not in SUITE_ORDER:
            parser.error("unknown workload {0!r} (choose from {1})"
                         .format(name, ", ".join(SUITE_ORDER)))
        row = bench_program(name, scale, sanitize=args.sanitize,
                            repeat=args.repeat, tier2=args.tier2,
                            tier2_threshold=args.tier2_threshold,
                            superblocks=args.superblocks, osr=args.osr,
                            async_compile=args.async_compile,
                            compile_workers=args.compile_workers,
                            tier3=args.tier3,
                            tier3_threshold=args.tier3_threshold,
                            tier3_target=args.tier3_target,
                            tier3_backend=args.tier3_backend)
        rows.append(row)
        if row["diverged"]:
            status = "DIVERGED"
        elif row["sanitizer_faults"]:
            status = "{0} SAN FAULTS".format(row["sanitizer_faults"])
        else:
            status = "{0:.2f}x".format(row["speedup"] or 0.0)
        if args.tier2 and not row["diverged"]:
            status += "  [t2 {0:.0f}%]".format(
                100.0 * row["tier2_steps"] / max(row["steps"], 1))
        if args.tier3 and not row["diverged"]:
            status += "  [t3 {0:.0f}% {1}]".format(
                100.0 * row["tier3_steps"] / max(row["steps"], 1),
                args.tier3_backend)
        if args.async_compile and not row["diverged"] \
                and not args.sanitize:
            status += "  [first {0:.2f}x, warm {1} cmp]".format(
                row["first_run_speedup"] or 0.0,
                row["tier2_warm_compiles"])
        print("{0:<10} {1:>12,} steps  ref {2:>8.3f}s  fast {3:>8.3f}s"
              "  {4}".format(name, row["steps"],
                             row["reference_seconds"],
                             row["fast_seconds"], status))
        diverged = diverged or row["diverged"]
        total_faults += row["sanitizer_faults"]

    report = {
        "scale": scale,
        "sanitize": args.sanitize,
        "tier2": args.tier2,
        "tier2_threshold": args.tier2_threshold,
        "superblocks": args.superblocks,
        "osr": args.osr,
        "tier3": args.tier3,
        "tier3_target": args.tier3_target if args.tier3 else None,
        "tier3_backend": args.tier3_backend if args.tier3 else None,
        "repeat": args.repeat,
        "programs": rows,
        "geomean_speedup": geomean([r["speedup"] for r in rows]),
        "diverged": diverged,
        "sanitizer_faults": total_faults,
    }
    if args.tier2:
        total_steps = sum(r["steps"] for r in rows)
        t2_steps = sum(r["tier2_steps"] for r in rows)
        t3_steps = sum(r.get("tier3_steps", 0) for r in rows)
        report["tier2_steps"] = t2_steps
        report["tier1_steps"] = total_steps - t2_steps - t3_steps
        report["tier2_step_fraction"] = round(
            t2_steps / max(total_steps, 1), 4)
        report["tier2_functions_compiled"] = sum(
            r["tier2_functions_compiled"] for r in rows)
        report["tier2_pins"] = sum(r["tier2_pins"] for r in rows)
        report["compile_seconds"] = round(
            sum(r["fast_compile_seconds"] for r in rows), 6)
    if args.tier3:
        total_steps = sum(r["steps"] for r in rows)
        t3_steps = sum(r["tier3_steps"] for r in rows)
        report["tier3_steps"] = t3_steps
        report["tier3_step_fraction"] = round(
            t3_steps / max(total_steps, 1), 4)
        report["tier3_functions_compiled"] = sum(
            r["tier3_functions_compiled"] for r in rows)
        report["tier3_pins"] = sum(r["tier3_pins"] for r in rows)
        report["tier3_deopts"] = sum(r["tier3_deopts"] for r in rows)
        report["tier3_compile_seconds"] = round(
            sum(r["tier3_compile_seconds"] for r in rows), 6)
        report["tier3_threaded_units"] = sum(
            r["tier3_threaded_units"] for r in rows)
        report["tier3_step_units"] = sum(
            r["tier3_step_units"] for r in rows)
        report["tier3_degraded"] = sum(
            r["tier3_degraded"] for r in rows)
    if args.superblocks or args.osr:
        report["tier2_superblocks"] = sum(
            r["tier2_superblocks"] for r in rows)
        report["tier2_osr_entries"] = sum(
            r["tier2_osr_entries"] for r in rows)
        report["tier2_osr_upgrades"] = sum(
            r["tier2_osr_upgrades"] for r in rows)
        report["tier2_side_exits"] = sum(
            r["tier2_side_exits"] for r in rows)
    if args.async_compile and not args.sanitize:
        report["async_compile"] = True
        report["compile_workers"] = args.compile_workers
        report["tier2_async_enqueued"] = sum(
            r["tier2_async_enqueued"] for r in rows)
        report["tier2_swap_ins"] = sum(
            r["tier2_swap_ins"] for r in rows)
        report["geomean_first_run_speedup"] = geomean(
            [r["first_run_speedup"] for r in rows])
        report["tier2_warm_compiles"] = sum(
            r["tier2_warm_compiles"] for r in rows)
        report["warm_recompiles"] = sum(
            r["warm_recompiles"] for r in rows)
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print("geomean speedup: {0}x -> {1}".format(
        report["geomean_speedup"], out_path))
    if args.async_compile and not args.sanitize:
        print("geomean first-run speedup (async vs sync compile): "
              "{0}x".format(report["geomean_first_run_speedup"]))
    if diverged:
        print("ERROR: engines diverged; see {0}".format(out_path),
              file=sys.stderr)
        return 1
    if args.sanitize and total_faults:
        print("ERROR: {0} sanitizer fault(s) in the suite; see {1}"
              .format(total_faults, out_path), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
