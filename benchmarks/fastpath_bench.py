#!/usr/bin/env python
"""Differential benchmark: fast engine vs reference interpreter.

For every selected benchsuite workload this script compiles the program
once (O2), runs it on both interpreter engines, *verifies the engines
agree* on return value, output, architectural step count, and exit
status, and reports steps/second for each engine plus the speedup.

Any divergence is a correctness failure: the script prints the
mismatch and exits nonzero, which is what the CI perf-smoke job keys
on.  Timing numbers are informational — CI never fails on them.

Usage:
    PYTHONPATH=src python benchmarks/fastpath_bench.py            # full
    PYTHONPATH=src python benchmarks/fastpath_bench.py --quick    # CI
    PYTHONPATH=src python benchmarks/fastpath_bench.py \\
        --programs ft ks --scale 0.1 --out BENCH_fastpath.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time

from repro.benchsuite import SUITE_ORDER, load_workload
from repro.execution import DecodeCache, ExecutionTrap, Interpreter
from repro.minic import compile_source

#: Small, fast-terminating programs for the CI smoke run.
QUICK_PROGRAMS = ["ft", "ks", "anagram"]
QUICK_SCALE = 0.05


def run_engine(module, engine, sanitize=False):
    """One timed run; returns (observation, seconds, decode_s, faults)."""
    decode_cache = None
    if engine == "fast":
        decode_cache = DecodeCache(module.target_data, sanitize=sanitize)
    interpreter = Interpreter(module, engine=engine,
                              decode_cache=decode_cache,
                              sanitize=sanitize)
    started = time.perf_counter()
    try:
        result = interpreter.run("main")
        observation = (result.return_value, result.output, result.steps,
                       result.exit_status)
    except ExecutionTrap as trap:
        # A trapping benchsuite program is itself a finding (the
        # sanitized suite must run clean); record it as an observation
        # so divergence checking still applies.
        observation = ("trap", trap.trap_number, trap.detail,
                       interpreter.steps)
    elapsed = time.perf_counter() - started
    decode_seconds = (decode_cache.stats.decode_seconds
                      if decode_cache is not None else 0.0)
    san = interpreter.memory.san
    faults = san.fault_count if san is not None else 0
    return observation, elapsed, decode_seconds, faults


def bench_program(name, scale, sanitize=False):
    workload = load_workload(name, scale)
    module = compile_source(workload.source, name, optimization_level=2)
    ref_obs, ref_seconds, _, ref_faults = run_engine(
        module, "reference", sanitize)
    fast_obs, fast_seconds, decode_seconds, fast_faults = run_engine(
        module, "fast", sanitize)
    steps = ref_obs[2] if ref_obs[0] != "trap" else ref_obs[3]
    row = {
        "program": name,
        "scale": scale,
        "steps": steps,
        "sanitizer_faults": ref_faults + fast_faults,
        "reference_seconds": round(ref_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "fast_decode_seconds": round(decode_seconds, 6),
        "reference_steps_per_sec": round(steps / ref_seconds, 1)
        if ref_seconds > 0 else None,
        "fast_steps_per_sec": round(steps / fast_seconds, 1)
        if fast_seconds > 0 else None,
        "speedup": round(ref_seconds / fast_seconds, 3)
        if fast_seconds > 0 else None,
        "diverged": ref_obs != fast_obs,
    }
    if row["diverged"]:
        row["reference_observation"] = repr(ref_obs)
        row["fast_observation"] = repr(fast_obs)
    return row


def geomean(values):
    values = [v for v in values if v and v > 0]
    if not values:
        return None
    return round(math.exp(sum(math.log(v) for v in values)
                          / len(values)), 3)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fast-engine differential benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: {0} at scale {1}".format(
                            "/".join(QUICK_PROGRAMS), QUICK_SCALE))
    parser.add_argument("--scale", type=float, default=0.2,
                        help="workload scale factor (default 0.2)")
    parser.add_argument("--programs", nargs="+", metavar="NAME",
                        help="workloads to run (default: whole suite)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run both engines under llva-san; any "
                             "reported fault fails the run (the suite "
                             "must be sanitizer-clean)")
    parser.add_argument("--out", default="BENCH_fastpath.json",
                        help="JSON output path (default "
                             "BENCH_fastpath.json)")
    args = parser.parse_args(argv)

    programs = args.programs or list(SUITE_ORDER)
    scale = args.scale
    if args.quick:
        programs = args.programs or QUICK_PROGRAMS
        scale = QUICK_SCALE

    rows = []
    diverged = False
    total_faults = 0
    for name in programs:
        if name not in SUITE_ORDER:
            parser.error("unknown workload {0!r} (choose from {1})"
                         .format(name, ", ".join(SUITE_ORDER)))
        row = bench_program(name, scale, sanitize=args.sanitize)
        rows.append(row)
        if row["diverged"]:
            status = "DIVERGED"
        elif row["sanitizer_faults"]:
            status = "{0} SAN FAULTS".format(row["sanitizer_faults"])
        else:
            status = "{0:.2f}x".format(row["speedup"] or 0.0)
        print("{0:<10} {1:>12,} steps  ref {2:>8.3f}s  fast {3:>8.3f}s"
              "  {4}".format(name, row["steps"],
                             row["reference_seconds"],
                             row["fast_seconds"], status))
        diverged = diverged or row["diverged"]
        total_faults += row["sanitizer_faults"]

    report = {
        "scale": scale,
        "sanitize": args.sanitize,
        "programs": rows,
        "geomean_speedup": geomean([r["speedup"] for r in rows]),
        "diverged": diverged,
        "sanitizer_faults": total_faults,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print("geomean speedup: {0}x -> {1}".format(
        report["geomean_speedup"], args.out))
    if diverged:
        print("ERROR: engines diverged; see {0}".format(args.out),
              file=sys.stderr)
        return 1
    if args.sanitize and total_faults:
        print("ERROR: {0} sanitizer fault(s) in the suite; see {1}"
              .format(total_faults, args.out), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
