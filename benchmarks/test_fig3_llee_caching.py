"""Figure 3: the LLEE execution manager and offline storage dataflow.

Regenerates the behaviour the paper's Figure 3 diagrams: the first
execution of a virtual executable pays online JIT translation and
writes native code to the offline cache through the storage API; later
executions load it back and pay nothing; processors without OS support
(the DAISY/Crusoe situation) retranslate every run; idle-time
translation removes even the first-run cost.
"""

import pytest

from repro.bitcode import write_module
from repro.llee import LLEE, InMemoryStorage
from repro.minic import compile_source
from repro.targets import make_target

PROGRAM = r"""
int work(int n) {
    int total = 0;
    int i;
    for (i = 0; i < n; i++) {
        total = (total * 31 + i) % 100003;
    }
    return total;
}

int helper_a(int x) { return work(x) + 1; }
int helper_b(int x) { return work(x + 3) * 2; }
int helper_c(int x) { return helper_a(x) + helper_b(x); }

int main() {
    int total = 0;
    int i;
    for (i = 0; i < 12; i++) {
        total = (total + helper_c(i * 17)) % 1000003;
    }
    return total;
}
"""


@pytest.fixture(scope="module")
def object_code():
    module = compile_source(PROGRAM, "fig3", optimization_level=2)
    return write_module(module)


def test_cold_then_warm(benchmark, object_code):
    """Cache hit eliminates all translation on the second run."""
    storage = InMemoryStorage()
    llee = LLEE(make_target("x86"), storage)
    cold = llee.run_executable(object_code)
    assert not cold.cache_hit and cold.functions_jitted > 0

    def warm_run():
        return llee.run_executable(object_code)

    warm = benchmark(warm_run)
    assert warm.cache_hit
    assert warm.functions_jitted == 0
    assert warm.return_value == cold.return_value
    assert warm.translate_seconds == 0.0


def test_no_storage_translates_every_run(benchmark, object_code):
    """Without the storage API, every launch pays online translation
    (DAISY and Crusoe 'cannot cache any translated code ... in
    off-processor storage')."""
    llee = LLEE(make_target("x86"), storage=None)

    def uncached_run():
        return llee.run_executable(object_code)

    report = benchmark(uncached_run)
    assert not report.cache_hit
    assert report.functions_jitted > 0
    assert report.translate_seconds > 0.0


def test_idle_time_translation(benchmark, object_code):
    """Idle-time translation fills the cache without executing."""
    storage = InMemoryStorage()
    llee = LLEE(make_target("sparc"), storage)

    def idle_translate():
        storage.delete_cache("llee-native")
        return llee.offline_translate(object_code)

    stats = benchmark(idle_translate)
    assert stats.functions_translated >= 5
    first = llee.run_executable(object_code)
    assert first.cache_hit and first.functions_jitted == 0


def test_lazy_jit_translates_only_reached_code(benchmark, object_code):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    """"the JIT translates functions on demand, so that unused code is
    not translated" — an entry that never calls the helpers leaves them
    untranslated."""
    module = compile_source(
        PROGRAM + "\nint tiny_entry() { return work(5); }\n",
        "fig3b", optimization_level=2)
    code = write_module(module)
    llee = LLEE(make_target("x86"), storage=None)
    report = llee.run_executable(code, entry="tiny_entry")
    # Only tiny_entry and work should have been translated.
    assert report.functions_jitted == 2
