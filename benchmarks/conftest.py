"""Shared infrastructure for the Table 2 / Figure 3 benchmark harness.

Workload compilation and translation are expensive, so results are
computed once per session and shared across benchmark files through the
``table2`` fixture.  Scale the suite with ``REPRO_BENCH_SCALE``
(default 0.2; 1.0 gives longer, more paper-like runs).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import pytest

from repro.benchsuite import PAPER_TABLE2, SUITE_ORDER, load_workload
from repro.bitcode import write_module_with_stats
from repro.execution.machine_sim import MachineSimulator
from repro.llee.jit import FunctionJIT
from repro.minic import compile_source
from repro.targets import make_target, translate_module

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))

#: Simulated clock for converting cycles into "native seconds"
#: (the run-time column of Table 2).  1 GHz keeps numbers readable.
SIM_HZ = 1.0e9


@dataclass
class WorkloadData:
    """Everything Table 2 needs for one row."""

    name: str
    loc: int
    llva_insts: int = 0
    llva_bytes: int = 0
    short_form_fraction: float = 0.0
    x86_insts: int = 0
    sparc_insts: int = 0
    x86_bytes: int = 0
    sparc_bytes: int = 0
    x86_exe_bytes: int = 0
    sparc_exe_bytes: int = 0
    translate_seconds: float = 0.0
    run_cycles: int = 0
    run_seconds_sim: float = 0.0
    run_seconds_host: float = 0.0
    outputs_agree: Optional[bool] = None

    @property
    def x86_ratio(self) -> float:
        return self.x86_insts / self.llva_insts if self.llva_insts else 0

    @property
    def sparc_ratio(self) -> float:
        return self.sparc_insts / self.llva_insts if self.llva_insts else 0

    @property
    def size_ratio(self) -> float:
        """Native executable bytes / LLVA object bytes (SPARC, like the
        paper's column pair)."""
        return self.sparc_exe_bytes / self.llva_bytes \
            if self.llva_bytes else 0


class Table2Store:
    """Lazily computed per-workload artifacts, shared session-wide."""

    def __init__(self, scale: float):
        self.scale = scale
        self._modules: Dict[str, object] = {}
        self._natives: Dict[str, object] = {}
        self.rows: Dict[str, WorkloadData] = {}

    # -- build steps -----------------------------------------------------------

    def module(self, name: str):
        if name not in self._modules:
            workload = load_workload(name, self.scale)
            # "the same LLVA optimizations were applied in both cases"
            module = compile_source(workload.source, name,
                                    optimization_level=2)
            self._modules[name] = module
            row = WorkloadData(name=name, loc=workload.loc)
            row.llva_insts = module.num_instructions()
            data, stats = write_module_with_stats(module)
            row.llva_bytes = len(data)
            row.short_form_fraction = stats.short_form_fraction
            self.rows[name] = row
        return self._modules[name]

    def native(self, name: str, target_name: str):
        key = (name, target_name)
        if key not in self._natives:
            module = self.module(name)
            started = time.perf_counter()
            native = translate_module(module, make_target(target_name))
            elapsed = time.perf_counter() - started
            row = self.rows[name]
            if target_name == "x86":
                row.x86_insts = native.num_instructions()
                row.x86_bytes = native.code_size()
                row.x86_exe_bytes = native.executable_size(module)
                row.translate_seconds = elapsed
            else:
                row.sparc_insts = native.num_instructions()
                row.sparc_bytes = native.code_size()
                row.sparc_exe_bytes = native.executable_size(module)
            self._natives[key] = native
        return self._natives[key]

    def run_native(self, name: str, target_name: str = "x86"):
        """Execute the translated program; fills the run-time columns."""
        row = self.rows[name]
        if row.run_cycles:
            return row
        module = self.module(name)
        native = self.native(name, target_name)
        simulator = MachineSimulator(native, module)
        started = time.perf_counter()
        value, _status = simulator.run("main")
        row.run_seconds_host = time.perf_counter() - started
        row.run_cycles = simulator.cycles
        row.run_seconds_sim = simulator.cycles / SIM_HZ
        row.outputs_agree = value is not None
        return row


_STORE = Table2Store(BENCH_SCALE)


@pytest.fixture(scope="session")
def table2() -> Table2Store:
    return _STORE


def workload_names() -> List[str]:
    return list(SUITE_ORDER)


def paper_row(name: str):
    return PAPER_TABLE2[name]


_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(filename: str, lines) -> None:
    """Print a results table and persist it under benchmarks/results/
    (stdout is captured by pytest; EXPERIMENTS.md references the
    files)."""
    text = "\n".join(lines)
    print()
    print(text)
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, filename), "w") as handle:
        handle.write(text + "\n")
