"""Ablations for the design decisions DESIGN.md calls out.

Each benchmark disables one design choice and measures what it was
buying:

* the fixed 32-bit short instruction form (vs all-long encoding);
* the two register allocators (spill-all vs linear scan, on one
  function set);
* typed-GEP lowering at translation time: one object file, two pointer
  sizes, different concrete offsets (the Section 3.2 portability
  property);
* trace-layout fallthrough removal (jumps deleted on the hot path).
"""

import pytest

from conftest import workload_names
from repro.bitcode import write_module_with_stats
from repro.bitcode.writer import _ModuleWriter
from repro.targets import make_target
from repro.targets.regalloc import LinearScanAllocator, SpillAllAllocator


def _encode_forced_long(module):
    writer = _ModuleWriter(module, strip_names=True)
    writer.out.force_long_form = True
    return writer.write()


def test_short_form_saves_bytes(benchmark, table2):
    """Ablation 2 of DESIGN.md: drop the 32-bit short form and measure
    the size regression that motivates it."""
    module = table2.module("gzip")
    data_long = benchmark(_encode_forced_long, module)
    data_short, stats = write_module_with_stats(module)
    saving = 1 - len(data_short) / len(data_long)
    print("short-form encoding: {0}B vs {1}B all-long "
          "({2:.0%} saved; {3:.0%} of instructions fit)".format(
              len(data_short), len(data_long), saving,
              stats.short_form_fraction))
    assert len(data_short) < len(data_long)
    assert saving > 0.10


def test_allocator_ablation(benchmark, table2):
    """Ablation 3: swap the allocators on the same lowered code.

    Linear scan must beat spill-all on instruction count — quantifying
    the paper's remark that the x86 back end's simple allocation causes
    'significant spill code'.
    """
    from repro.targets.codegen import FunctionLowering
    from repro.targets.sparc.target import _expand

    module = table2.module("mcf")
    target = make_target("sparc")

    def lower(allocator_factory):
        total = 0
        for function in module.functions.values():
            if function.is_declaration:
                continue
            machine = FunctionLowering(function, target).lower()
            _expand(machine)
            allocator_factory().run(machine)
            total += machine.num_instructions()
        return total

    linear_count = benchmark.pedantic(
        lower, args=(LinearScanAllocator,), iterations=1, rounds=1)
    spill_count = lower(SpillAllAllocator)
    print("sparc/mcf instructions: linear-scan {0}, spill-all {1} "
          "(+{2:.0%})".format(linear_count, spill_count,
                              spill_count / linear_count - 1))
    assert spill_count > linear_count * 1.15


def test_typed_gep_portability(benchmark):
    """Ablation 5: the same virtual object code yields different
    concrete offsets under 32- and 64-bit translators — i.e. pointer
    size is resolved at translation time, not in the object code."""
    from repro.bitcode import read_module, write_module
    from repro.minic import compile_source
    from repro.targets.machine import Mem, Semantics
    from repro.targets.x86.target import make_x86_target

    source = """
    struct Box { char tag; struct Box* left; struct Box* right; };
    long probe(struct Box* b) {
        b->right = null;
        return (long) b->left;
    }
    """
    module = compile_source(source, "portable")
    object_code = write_module(module)

    def offsets_for(pointer_size):
        decoded = read_module(object_code)
        target = make_x86_target(pointer_size=pointer_size)
        machine = target.translate_function(
            decoded.get_function("probe"))
        found = set()
        for instr in machine.instructions():
            for operand in instr.operands:
                if isinstance(operand, Mem) and operand.offset:
                    found.add(operand.offset)
        return found

    offsets_32 = benchmark.pedantic(offsets_for, args=(4,),
                                    iterations=1, rounds=1)
    offsets_64 = offsets_for(8)
    print("field offsets 32-bit: {0}, 64-bit: {1}".format(
        sorted(offsets_32), sorted(offsets_64)))
    # right is field #2: at 8 under 32-bit (1 pad to 4? char +pad -> 4,
    # left at 4, right at 8) and at 16 under 64-bit (left at 8).
    assert 8 in offsets_32
    assert 16 in offsets_64


def test_fallthrough_removal(benchmark, table2):
    """Trace-layout's enabler: how many jumps the lexical-successor
    peephole deletes on a real workload."""
    from repro.targets.codegen import (
        FunctionLowering,
        remove_fallthrough_jumps,
    )
    from repro.targets.sparc.target import (
        _expand,
        _insert_delay_slots,
        _insert_register_window_ops,
    )

    module = table2.module("yacr2")
    target = make_target("sparc")

    def removed_jumps():
        total = 0
        for function in module.functions.values():
            if function.is_declaration:
                continue
            machine = FunctionLowering(function, target).lower()
            _expand(machine)
            LinearScanAllocator().run(machine)
            _insert_register_window_ops(machine)
            _insert_delay_slots(machine)
            total += remove_fallthrough_jumps(machine)
        return total

    removed = benchmark.pedantic(removed_jumps, iterations=1, rounds=1)
    print("fallthrough peephole removed {0} jumps".format(removed))
    assert removed > 0


def test_use_list_rauw_vs_full_scan(benchmark, table2):
    """Ablation 1: eager def-use chains make replace-all-uses sparse.

    Compare chained RAUW against the naive alternative (scan every
    operand of every instruction in the function) on a large workload
    module: the sparse version must win by a wide margin per call.
    """
    module = table2.module("gap")
    functions = [f for f in module.functions.values()
                 if not f.is_declaration]
    biggest = max(functions, key=lambda f: f.num_instructions())

    # The sparse path: pick a heavily-used value and swap it in and out
    # (the full-scan alternative would walk every operand slot of the
    # function per call — the `total_operands` count asserted below).
    from repro.ir.values import Value

    candidates = [inst for inst in biggest.instructions()
                  if inst.produces_value and len(inst.uses) >= 2]
    assert candidates
    victim = max(candidates, key=lambda i: len(i.uses))
    stand_in = Value(victim.type, "stand-in")

    def sparse_rauw_round_trip():
        count = victim.replace_all_uses_with(stand_in)
        back = stand_in.replace_all_uses_with(victim)
        assert count == back
        return count

    sparse = benchmark(sparse_rauw_round_trip)
    assert sparse >= 2
    # The scan-based alternative touches every operand in the function;
    # the sparse one touches exactly the use list.
    total_operands = sum(i.num_operands for i in biggest.instructions())
    assert len(victim.uses) * 20 < total_operands, (
        "workload too small to demonstrate sparsity")
