"""Table 2, columns 10-12: JIT translation time vs run time.

Paper claim: "the JIT compilation times are negligible, except for large
codes with short running time ... it is possible to do a very fast,
non-optimizing translation of LLVA code to machine code at very low
cost" — the translate/run ratio stays below ~0.13 on every row and
under 1% for long-running programs.

Here both columns live in the same (host wall-clock) world: translation
is the Python JIT, run time is the simulated native execution.  Each
benchmark times whole-program JIT translation; native runs fill the
run-time column for the ratio table.
"""

import time

import pytest

from conftest import paper_row, workload_names
from repro.llee.jit import FunctionJIT
from repro.targets import make_target

#: Programs whose native runs are long enough to be worth simulating at
#: bench scale (all of them — but cap the set via slicing if needed).
RUN_SET = workload_names()


@pytest.mark.parametrize("name", workload_names())
def test_jit_translate_time(benchmark, table2, name):
    """Time function-at-a-time JIT translation of the whole program
    ("we show the compilation time for the entire program")."""
    module = table2.module(name)

    def translate_everything():
        return FunctionJIT(module, make_target("x86")).translate_all()

    native = benchmark.pedantic(translate_everything, iterations=1,
                                rounds=3)
    assert native.num_instructions() > 0


@pytest.mark.parametrize("name", RUN_SET)
def test_run_and_record(benchmark, table2, name):
    """Execute each translated workload once (fills the run column)."""
    row = benchmark.pedantic(table2.run_native, args=(name, "x86"),
                             iterations=1, rounds=1)
    assert row.run_cycles > 0


def test_print_translation_cost_table(benchmark, table2):
    benchmark.pedantic(lambda: None, iterations=1, rounds=1)
    from conftest import emit_table

    lines = ["Table 2 (translation cost): measured at scale={0}".format(
        table2.scale)]
    lines.append("{0:<9} {1:>12} {2:>12} {3:>8} {4:>8}".format(
        "program", "translate(s)", "run(s,host)", "ratio", "paper"))
    ratios = []
    for name in workload_names():
        row = table2.rows.get(name)
        if row is None or not row.run_cycles:
            continue
        translate = row.translate_seconds
        run_host = row.run_seconds_host
        ratio = translate / run_host if run_host else float("inf")
        ratios.append((name, ratio))
        lines.append(
            "{0:<9} {1:>12.4f} {2:>12.3f} {3:>8.4f} {4:>8.3f}".format(
                name, translate, run_host, ratio,
                paper_row(name).translate_ratio))
    emit_table("table2_translation_cost.txt", lines)
    assert ratios
    # Shape claim: translation is a small fraction of execution for
    # most programs (the paper's worst case is 0.129).
    small = [r for _n, r in ratios if r < 0.25]
    assert len(small) >= len(ratios) * 0.7, ratios
