"""Observability: trace and measure the compile -> translate -> execute
pipeline with ``repro.observe``.

Compiles a MiniC program, runs it through LLEE twice (cache miss then
cache hit), and writes ``observability-trace.json`` (to a temp dir) —
open it in chrome://tracing (or https://ui.perfetto.dev) to see the
nested spans — plus ``observability-metrics.json`` with every counter
and histogram.

Equivalent CLI::

    python -m repro run prog.bc --target x86 --trace t.json --metrics m.json
    python -m repro stats prog.bc -O 2 --target x86 --cache /tmp/llee-cache

Run:  python examples/observability.py
"""

import os
import tempfile

from repro import observe
from repro.bitcode import write_module
from repro.llee import LLEE, InMemoryStorage
from repro.minic import compile_source
from repro.targets import make_target

PROGRAM = """
int collatz_steps(int n) {
    int steps;
    steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2;
        else            n = 3 * n + 1;
        steps = steps + 1;
    }
    return steps;
}
int main() {
    int i;
    int total;
    total = 0;
    for (i = 1; i <= 60; i = i + 1) total = total + collatz_steps(i);
    print_int(total);
    print_newline();
    return 0;
}
"""


def main() -> None:
    with observe.capture() as obs:
        module = compile_source(PROGRAM, "collatz",
                                optimization_level=2)
        llee = LLEE(make_target("x86"), InMemoryStorage())
        code = write_module(module)
        first = llee.run_executable(code)    # translates online
        second = llee.run_executable(code)   # served from the cache

    print("program output: {0}".format(first.output.strip()))
    print("first run:  cache_hit={0} jitted={1}".format(
        first.cache_hit, first.functions_jitted))
    print("second run: cache_hit={0} jitted={1}".format(
        second.cache_hit, second.functions_jitted))

    registry = obs.registry
    print("cache counters: hit={0:.0f} miss={1:.0f} store={2:.0f}"
          .format(registry.value("llee.cache.hit", target="x86"),
                  registry.value("llee.cache.miss", target="x86"),
                  registry.value("llee.cache.store", target="x86")))
    expansion = registry.histogram("jit.expansion_ratio", target="x86")
    print("expansion ratio: count={0} mean={1:.2f}x "
          "min={2:.2f}x max={3:.2f}x".format(
              expansion.count, expansion.mean, expansion.minimum,
              expansion.maximum))
    print("per-pass time spent:")
    for name, seconds in sorted(
            registry.label_values("pass.seconds", "pass")):
        print("  {0:<16} {1:.4f}s".format(name, seconds))

    out_dir = tempfile.mkdtemp(prefix="repro-observe-")
    trace_path = os.path.join(out_dir, "observability-trace.json")
    metrics_path = os.path.join(out_dir, "observability-metrics.json")
    obs.tracer.write_chrome(trace_path)
    registry.write_json(metrics_path)
    print("wrote {0} (load it in chrome://tracing) and {1}".format(
        trace_path, metrics_path))


if __name__ == "__main__":
    main()
