"""Data Structure Analysis and Automatic Pool Allocation (Section 5.1).

"Automatic Pool Allocation is a powerful interprocedural transformation
that uses Data Structure Analysis to partition the heap into separate
pools for each data structure instance."

Flow: compile a list-building workload, show what DSA finds (disjoint
heap instances and their flags), run Automatic Pool Allocation, and
compare allocator traffic — individual mallocs/frees versus pool bump
allocation with bulk teardown.

Run:  python examples/pool_allocation.py
"""

from repro.analysis.dsa import DSGraph
from repro.execution import Interpreter
from repro.ir import verify_module
from repro.minic import compile_source
from repro.transforms import AutomaticPoolAllocation

PROGRAM = r"""
struct Cell {
    int value;
    struct Cell* next;
};

int sum_and_discard(int n, int seed) {
    // Builds a private list, folds it, frees it node by node: the
    // classic candidate for a pool — one disjoint, non-escaping
    // data structure instance.
    struct Cell* head = null;
    int i;
    for (i = 0; i < n; i++) {
        struct Cell* c = (struct Cell*) malloc(sizeof(struct Cell));
        c->value = (seed + i * 7) % 1000;
        c->next = head;
        head = c;
    }
    int total = 0;
    while (head != null) {
        total += head->value;
        struct Cell* dead = head;
        head = head->next;
        free((char*) dead);
    }
    return total;
}

int main() {
    int total = 0;
    int round;
    for (round = 0; round < 60; round++) {
        total = (total + sum_and_discard(40, round)) % 1000003;
    }
    print_str("total="); print_int(total); print_newline();
    return total;
}
"""


def allocator_traffic(module):
    interpreter = Interpreter(module)
    result = interpreter.run("main")
    runtime = interpreter.runtime
    return result, runtime


def main() -> None:
    module = compile_source(PROGRAM, "pools", optimization_level=1)

    # What DSA sees inside sum_and_discard.
    function = module.get_function("sum_and_discard")
    graph = DSGraph(function)
    print("DSA on sum_and_discard:")
    for node in graph.nodes():
        if node.allocation_sites:
            print("   heap instance {0!r}: {1} allocation site(s), "
                  "types {2}".format(node, len(node.allocation_sites),
                                     sorted(node.observed_types)))
    local = graph.local_heap_instances()
    print("   -> {0} disjoint non-escaping heap instance(s) eligible "
          "for pools".format(len(local)))

    result, runtime = allocator_traffic(module)
    print("\nbefore pool allocation: result={0}".format(
        result.return_value))
    print("   malloc calls: {0:5d}   free calls: {1:5d}".format(
        runtime.malloc_calls, runtime.free_calls))

    AutomaticPoolAllocation().run_module(module)
    verify_module(module)

    result2, runtime2 = allocator_traffic(module)
    assert result2.return_value == result.return_value
    assert result2.output == result.output
    print("\nafter pool allocation: result={0}".format(
        result2.return_value))
    print("   malloc calls: {0:5d}   free calls: {1:5d}".format(
        runtime2.malloc_calls, runtime2.free_calls))
    print("   pool allocations: {0}   slab mallocs: {1}".format(
        runtime2.pool_allocs, runtime2.pool_slab_mallocs))
    print("\ngeneral-purpose allocator operations: {0} -> {1}".format(
        runtime.malloc_calls + runtime.free_calls,
        runtime2.malloc_calls + runtime2.free_calls))


if __name__ == "__main__":
    main()
