"""The paper's Figure 2, end to end.

Compiles the exact C function from Figure 2 (``Sum3rdChildren`` over a
recursive QuadTree) with the MiniC front-end, prints the LLVA code so it
can be compared with the paper's listing, demonstrates the
``getelementptr`` offset portability claim (20 bytes on 32-bit targets,
32 on 64-bit — Section 3.1), and runs the function on a real tree.

Run:  python examples/figure2_quadtree.py
"""

from repro.execution import Interpreter
from repro.ir import print_function, types, verify_module
from repro.minic import compile_source

FIGURE2_SOURCE = r"""
struct QuadTree {
    double Data;
    struct QuadTree* Children[4];
};

void Sum3rdChildren(struct QuadTree* T, double* Result) {
    double Ret;
    if (T == null) {
        Ret = 0.0;
    } else {
        struct QuadTree* Child3 = T->Children[3];
        double V;
        Sum3rdChildren(Child3, &V);
        Ret = V + T->Data;
    }
    *Result = Ret;
}

// Test harness: build a chain of quadtrees along child #3.
struct QuadTree* make_chain(int depth, double base) {
    if (depth == 0) return null;
    struct QuadTree* t =
        (struct QuadTree*) malloc(sizeof(struct QuadTree));
    t->Data = base;
    int i;
    for (i = 0; i < 4; i++) t->Children[i] = null;
    t->Children[3] = make_chain(depth - 1, base * 2.0);
    return t;
}

int main() {
    struct QuadTree* root = make_chain(10, 1.0);
    double result;
    Sum3rdChildren(root, &result);
    print_str("sum of chain = ");
    print_double(result);          // 1+2+4+...+512 = 1023
    print_newline();
    return (int) result;
}
"""


def main() -> None:
    module = compile_source(FIGURE2_SOURCE, "figure2")
    verify_module(module)

    print("=== LLVA for Sum3rdChildren (compare with paper Fig. 2b) ===")
    print(print_function(module.get_function("Sum3rdChildren")))

    # The paper's offset claim for &T[0].Children[3].
    quadtree = module.named_types["struct.QuadTree"]
    offset_32 = types.TargetData(4).gep_offset(quadtree, [0, 1, 3])
    offset_64 = types.TargetData(8).gep_offset(quadtree, [0, 1, 3])
    print("gep offset of T[0].Children[3]: "
          "{0} bytes with 32-bit pointers, {1} with 64-bit "
          "(paper says 20 and 32)".format(offset_32, offset_64))
    assert (offset_32, offset_64) == (20, 32)

    result = Interpreter(module).run("main")
    print(result.output.strip())
    assert result.return_value == 1023


if __name__ == "__main__":
    main()
