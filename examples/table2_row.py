"""Regenerate one row of the paper's Table 2, end to end.

Picks a workload from the suite (default: mcf), compiles it with the
same optimizations on both sides, and measures every column the paper
reports: code sizes, instruction counts, expansion ratios, JIT
translation time, and (simulated) run time — printed next to the
paper's numbers for the original benchmark.

Run:  python examples/table2_row.py [workload] [scale]
"""

import sys
import time

from repro.benchsuite import PAPER_TABLE2, load_workload
from repro.bitcode import write_module_with_stats
from repro.execution.machine_sim import MachineSimulator
from repro.llee.jit import FunctionJIT
from repro.minic import compile_source
from repro.targets import make_target


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.2
    paper = PAPER_TABLE2[name]
    workload = load_workload(name, scale)
    print("workload {0!r} at scale {1} ({2} LOC of MiniC; the paper's "
          "{3} was {4} LOC of C)".format(name, scale, workload.loc,
                                         name, paper.loc))

    module = compile_source(workload.source, name, optimization_level=2)
    object_code, stats = write_module_with_stats(module)
    llva_insts = module.num_instructions()
    print("\nvirtual object code: {0} bytes, {1} LLVA instructions, "
          "{2:.0%} in the 32-bit short form".format(
              len(object_code), llva_insts, stats.short_form_fraction))

    natives = {}
    for target_name in ("x86", "sparc"):
        target = make_target(target_name)
        jit = FunctionJIT(module, target)
        started = time.perf_counter()
        native = jit.translate_all()
        translate_seconds = time.perf_counter() - started
        natives[target_name] = (native, translate_seconds)
        paper_ratio = paper.x86_ratio if target_name == "x86" \
            else paper.sparc_ratio
        print("{0:>6}: {1} instructions ({2:.2f}x expansion; paper "
              "{3:.2f}x), {4} code bytes, translated in {5:.4f}s".format(
                  target_name, native.num_instructions(),
                  native.num_instructions() / llva_insts, paper_ratio,
                  native.code_size(), translate_seconds))

    native, translate_seconds = natives["x86"]
    simulator = MachineSimulator(native, module)
    started = time.perf_counter()
    value, _status = simulator.run("main")
    run_seconds = time.perf_counter() - started
    print("\nnative run: result={0}, {1} cycles, {2:.2f}s host time"
          .format(value, simulator.cycles, run_seconds))
    print("program output: {0}".format(
        simulator.output_text().strip()))
    ratio = translate_seconds / run_seconds
    print("\ntranslate/run ratio: {0:.4f} (paper: {1:.3f}) — "
          "\"JIT compilation times are negligible, except for large "
          "codes with short running time\"".format(
              ratio, paper.translate_ratio))


if __name__ == "__main__":
    main()
