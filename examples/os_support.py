"""Operating-system mechanisms of the V-ISA (Sections 3.3-3.5).

Demonstrates, on the interpreter (the engine with full OS semantics):

* trap handlers: an LLVA function registered for the divide-by-zero
  trap via ``llva.trap.register`` — "a trap handler is an ordinary LLVA
  function with two arguments: the trap number and a void* pointer";
* the privileged bit: the registration intrinsic traps when invoked
  from unprivileged code;
* the ExceptionsEnabled attribute: the same faulting division is simply
  ignored once its bit is cleared;
* constrained self-modifying code: ``llva.smc.replace`` swaps a
  function's body, affecting only future invocations.

Run:  python examples/os_support.py
"""

from repro.asm import parse_module
from repro.execution import ExecutionTrap, Interpreter
from repro.ir import verify_module

KERNEL = r"""
target pointersize = 64
target endian = little

%trap_log = global int 0

declare void %llva.trap.register(uint, sbyte*)
declare bool %llva.priv.enabled()
declare void %llva.smc.replace(sbyte*, sbyte*)
declare void %print_str(sbyte*)
declare void %print_int(int)
declare void %print_newline()

%msg.trap = constant [16 x sbyte] c"trap handled: \0A\00"

; An ordinary LLVA function serving as the divide-by-zero trap handler.
void %on_divide_trap(uint %trapno, sbyte* %info) {
entry:
        %old = load int* %trap_log
        %new = add int %old, 1
        store int %new, int* %trap_log
        ret void
}

int %divide(int %a, int %b) {
entry:
        %q = div int %a, %b
        ret int %q
}

int %divide_unchecked(int %a, int %b) {
entry:
        %q = div int %a, %b !ee(false)
        ret int %q
}

; SMC demonstration targets.
int %behavior(int %x) {
entry:
        %y = mul int %x, 2
        ret int %y
}

int %behavior_v2(int %x) {
entry:
        %y = mul int %x, 10
        %z = add int %y, 1
        ret int %z
}

int %kernel_main() {
entry:
        ; Register the trap handler (requires the privileged bit).
        %h = cast void (uint, sbyte*)* %on_divide_trap to sbyte*
        call void %llva.trap.register(uint 2, sbyte* %h)

        ; This division traps; the handler runs; execution resumes with
        ; the faulting instruction's result defined as zero.
        %q1 = call int %divide(int 7, int 0)

        ; The same condition with ExceptionsEnabled=false is ignored.
        %q2 = call int %divide_unchecked(int 7, int 0)

        ; Self-modifying code: future calls see the new body.
        %before = call int %behavior(int 4)
        %old = cast int (int)* %behavior to sbyte*
        %new = cast int (int)* %behavior_v2 to sbyte*
        call void %llva.smc.replace(sbyte* %old, sbyte* %new)
        %after = call int %behavior(int 4)

        %handled = load int* %trap_log
        call void %print_int(int %handled)
        call void %print_int(int %before)
        call void %print_int(int %after)
        call void %print_newline()

        ; handled=1, before=8, after=41 -> encode as one value
        %t1 = mul int %handled, 10000
        %t2 = mul int %before, 100
        %t3 = add int %t1, %t2
        %t4 = add int %t3, %after
        ret int %t4
}
"""


def main() -> None:
    module = parse_module(KERNEL)
    verify_module(module)

    print("-- privileged kernel context --")
    kernel = Interpreter(module, privileged=True)
    result = kernel.run("kernel_main")
    print("trap count / before / after:", result.output.strip())
    assert result.return_value == 1 * 10000 + 8 * 100 + 41, \
        result.return_value
    print("kernel_main -> {0} (trap handled once, SMC switched the "
          "function body)".format(result.return_value))

    print("\n-- unprivileged context: registration must trap --")
    module2 = parse_module(KERNEL)
    user = Interpreter(module2, privileged=False)
    try:
        user.run("kernel_main")
        raise AssertionError("privilege violation not detected")
    except ExecutionTrap as trap:
        print("caught: {0}".format(trap))
        assert trap.trap_number == 5  # privilege violation


if __name__ == "__main__":
    main()
