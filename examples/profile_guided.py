"""Runtime profiling, the software trace cache, and idle-time PGO
(Section 4.2, items 3 and 4).

Flow:

1. compile a branchy MiniC workload and statically instrument every
   basic block with an LLVA counter update;
2. run it once under the interpreter (a stand-in for the end-user's
   machine) and read the profile out of simulated memory;
3. strip the instrumentation, form hot traces, and reoptimize
   idle-time-style (hot-call inlining + trace-order block layout);
4. translate before/after versions for x86 and compare executed native
   instructions and cycles.

Run:  python examples/profile_guided.py
"""

from repro.execution import Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.llee import (
    SoftwareTraceCache,
    idle_time_reoptimize,
    instrument_module,
    read_profile,
    strip_instrumentation,
)
from repro.llee.jit import FunctionJIT
from repro.minic import compile_source
from repro.targets import make_target

PROGRAM = r"""
int classify(int value) {
    // A skewed branch: ~90% of inputs take the small-value path.
    if (value % 10 != 0) {
        return value * 3 + 1;
    }
    // Cold path: rarely executed, deliberately bulky.
    int acc = value;
    int i;
    for (i = 0; i < 5; i++) {
        acc = acc * 7 + i;
        acc = acc % 10007;
    }
    return acc;
}

int hot_helper(int x) {
    return (x * x + 3) % 8191;
}

int main() {
    int total = 0;
    int i;
    for (i = 0; i < 4000; i++) {
        total = (total + classify(i)) % 1000003;
        total = (total + hot_helper(i)) % 1000003;
    }
    print_str("total="); print_int(total); print_newline();
    return total;
}
"""


def run_native(module, label):
    native = FunctionJIT(module, make_target("x86")).translate_all()
    simulator = MachineSimulator(native, module)
    value, _ = simulator.run("main")
    print("{0:>9}: result={1}, {2} native instructions executed, "
          "{3} cycles".format(label, value,
                              simulator.instructions_executed,
                              simulator.cycles))
    return value, simulator.cycles


def main() -> None:
    # Baseline module (what shipped to the user).
    module = compile_source(PROGRAM, "pgo-demo", optimization_level=1)
    baseline_value, baseline_cycles = run_native(module, "baseline")

    # Instrumented run on the user's machine.
    profiled = compile_source(PROGRAM, "pgo-demo", optimization_level=1)
    profile_map = instrument_module(profiled)
    interp = Interpreter(profiled)
    result = interp.run("main")
    assert result.return_value == baseline_value
    profile = read_profile(profile_map, interp)
    print("\nhottest blocks on the user's system:")
    for (function, block), count in profile.hottest_blocks(5):
        print("   {0}:{1:<14} {2}".format(function, block, count))

    # Idle-time reoptimization with that profile.
    strip_instrumentation(profiled)
    cache = SoftwareTraceCache(profiled)
    traces = cache.form_traces(profile)
    print("\nformed {0} traces covering {1:.0%} of execution".format(
        len(traces), cache.coverage(profile)))
    report = idle_time_reoptimize(profiled, profile, hot_calls=500)
    print("PGO: inlined {0} hot calls, relaid {1} functions".format(
        report.hot_calls_inlined, report.functions_relaid))

    value, cycles = run_native(profiled, "after PGO")
    assert value == baseline_value
    print("\ncycle change: {0} -> {1} ({2:+.1f}%)".format(
        baseline_cycles, cycles,
        100.0 * (cycles - baseline_cycles) / baseline_cycles))


if __name__ == "__main__":
    main()
