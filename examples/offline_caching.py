"""LLEE offline caching — the paper's Figure 3 dataflow.

Demonstrates the translation strategy of Section 4.1:

1. first execution with an OS storage API: the JIT translates on
   demand and the native code is written back to the offline cache;
2. second execution: cache hit, zero functions translated;
3. a *stale* cache (executable newer than its translation) is rejected;
4. idle-time translation fills the cache without running the program;
5. without a storage API (the DAISY/Crusoe situation), every run pays
   online translation.

Run:  python examples/offline_caching.py
"""

import time

from repro.bitcode import write_module
from repro.llee import LLEE, InMemoryStorage
from repro.minic import compile_source
from repro.targets import make_target

PROGRAM = r"""
int collatz_steps(long n) {
    int steps = 0;
    while (n != 1l && steps < 1000) {
        if (n % 2l == 0l) n = n / 2l;
        else n = 3l * n + 1l;
        steps++;
    }
    return steps;
}

int main() {
    int total = 0;
    long n;
    for (n = 1l; n <= 60l; n++) {
        total += collatz_steps(n);
    }
    print_str("total collatz steps: ");
    print_int(total);
    print_newline();
    return total;
}
"""


def main() -> None:
    module = compile_source(PROGRAM, "collatz", optimization_level=2)
    object_code = write_module(module)
    built_at = time.time()

    storage = InMemoryStorage()
    llee = LLEE(make_target("x86"), storage)

    print("-- run 1 (cold) --")
    report = llee.run_executable(object_code,
                                 executable_timestamp=built_at)
    print(report.output.strip())
    print("cache hit: {0}; functions JIT-compiled: {1}; "
          "translate {2:.4f}s".format(
              report.cache_hit, report.functions_jitted,
              report.translate_seconds))

    print("\n-- run 2 (warm: cached native code) --")
    report2 = llee.run_executable(object_code,
                                  executable_timestamp=built_at)
    print("cache hit: {0}; functions JIT-compiled: {1}".format(
        report2.cache_hit, report2.functions_jitted))
    assert report2.cache_hit and report2.functions_jitted == 0
    assert report2.return_value == report.return_value

    print("\n-- run 3 (executable rebuilt: timestamp invalidates) --")
    report3 = llee.run_executable(object_code,
                                  executable_timestamp=time.time() + 60)
    print("cache hit: {0}; functions JIT-compiled: {1}".format(
        report3.cache_hit, report3.functions_jitted))
    assert not report3.cache_hit

    print("\n-- idle-time translation, then run --")
    storage2 = InMemoryStorage()
    llee2 = LLEE(make_target("sparc"), storage2)
    stats = llee2.offline_translate(object_code)
    print("idle-time: translated {0} functions in {1:.4f}s".format(
        stats.functions_translated, stats.translate_seconds))
    report4 = llee2.run_executable(object_code,
                                   executable_timestamp=built_at)
    print("then: cache hit: {0}; functions JIT-compiled: {1}".format(
        report4.cache_hit, report4.functions_jitted))
    assert report4.cache_hit and report4.functions_jitted == 0

    print("\n-- no OS storage API (DAISY/Crusoe mode) --")
    llee3 = LLEE(make_target("x86"), storage=None)
    for attempt in (1, 2):
        report5 = llee3.run_executable(object_code)
        print("run {0}: cache hit: {1}; functions JIT-compiled: "
              "{2}".format(attempt, report5.cache_hit,
                           report5.functions_jitted))
        assert not report5.cache_hit and report5.functions_jitted > 0


if __name__ == "__main__":
    main()
