"""Quickstart: the whole VISC stack in one file.

Builds an LLVA function with the IR builder, verifies it, prints its
assembly, executes it three ways — directly (interpreter), and through
both translators on the simulated x86 and SPARC processors — and shows
the Table 2 metrics for it.

Run:  python examples/quickstart.py
"""

from repro.bitcode import write_module_with_stats
from repro.execution import Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.ir import IRBuilder, Module, print_module, types, verify_module
from repro.ir.values import const_int
from repro.targets import make_target, translate_module


def build_module() -> Module:
    """gcd(a, b) by Euclid's algorithm, plus a main that sums gcds."""
    module = Module("quickstart")
    int_t = types.INT

    gcd = module.create_function(
        "gcd", types.function_of(int_t, [int_t, int_t]), ["a", "b"])
    entry = gcd.add_block("entry")
    loop = gcd.add_block("loop")
    done = gcd.add_block("done")

    builder = IRBuilder(entry)
    builder.br(loop)

    builder.set_block(loop)
    a_phi = builder.phi(int_t, name="a.cur")
    b_phi = builder.phi(int_t, name="b.cur")
    a_phi.add_incoming(gcd.args[0], entry)
    b_phi.add_incoming(gcd.args[1], entry)
    remainder = builder.rem(a_phi, b_phi, name="r")
    remainder.exceptions_enabled = False  # b is never 0 on the back edge
    is_zero = builder.seteq(remainder, const_int(int_t, 0))
    a_phi.add_incoming(b_phi, loop)
    b_phi.add_incoming(remainder, loop)
    builder.cond_br(is_zero, done, loop)

    builder.set_block(done)
    builder.ret(b_phi)

    main = module.create_function("main", types.function_of(int_t, []))
    main_entry = main.add_block("entry")
    builder.set_block(main_entry)
    total = None
    for a, b in ((1071, 462), (270, 192), (35, 64)):
        value = builder.call(gcd, [const_int(int_t, a),
                                   const_int(int_t, b)])
        total = value if total is None else builder.add(total, value)
    builder.ret(total)
    return module


def main() -> None:
    module = build_module()
    verify_module(module)

    print("=== LLVA assembly ===")
    print(print_module(module))

    object_code, stats = write_module_with_stats(module)
    print("virtual object code: {0} bytes "
          "({1:.0%} of instructions in the 32-bit short form)".format(
              len(object_code), stats.short_form_fraction))

    result = Interpreter(module).run("main")
    print("\ninterpreter: gcd sum = {0} in {1} LLVA steps".format(
        result.return_value, result.steps))

    for target_name in ("x86", "sparc"):
        target = make_target(target_name)
        native = translate_module(module, target)
        simulator = MachineSimulator(native, module)
        value, _status = simulator.run("main")
        assert value == result.return_value, "translation bug!"
        print("{0:>6}: result={1}  {2} native instructions "
              "({3:.2f}x expansion), {4} bytes, {5} cycles".format(
                  target_name, value, native.num_instructions(),
                  native.num_instructions() / module.num_instructions(),
                  native.code_size(), simulator.cycles))


if __name__ == "__main__":
    main()
