"""``python -m repro`` — the LLVA toolchain entry point."""

import sys

from repro.tools import main

sys.exit(main())
