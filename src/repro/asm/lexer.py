"""Tokenizer for textual LLVA assembly."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

PUNCTUATION = ("...", "=", ",", "(", ")", "{", "}", "[", "]", "<", ">",
               "*", ":")


class LexerError(Exception):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line: int):
        super().__init__("line {0}: {1}".format(line, message))
        self.line = line


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``word`` (bare identifier/keyword), ``local``
    (``%name``), ``int``, ``float``, ``string`` (``c"..."``), ``bang``
    (``!ee(...)`` attribute), or a punctuation literal.
    """

    kind: str
    text: str
    line: int

    def __repr__(self) -> str:
        return "<{0} {1!r} @{2}>".format(self.kind, self.text, self.line)


def tokenize(source: str) -> List[Token]:
    """Split *source* into tokens, dropping comments and whitespace."""
    tokens: List[Token] = []
    line = 1
    position = 0
    length = len(source)
    while position < length:
        char = source[position]
        if char == "\n":
            line += 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            continue
        if char == ";":
            while position < length and source[position] != "\n":
                position += 1
            continue
        if char == "%":
            start = position + 1
            end = start
            while end < length and (source[end].isalnum()
                                    or source[end] in "._-"):
                end += 1
            if end == start:
                raise LexerError("empty %name", line)
            tokens.append(Token("local", source[start:end], line))
            position = end
            continue
        if char == "!":
            # !ee(true) / !ee(false)
            end = source.find(")", position)
            if end < 0:
                raise LexerError("unterminated ! attribute", line)
            tokens.append(Token("bang", source[position:end + 1], line))
            position = end + 1
            continue
        if char == "c" and position + 1 < length \
                and source[position + 1] == '"':
            end = position + 2
            while end < length and source[end] != '"':
                if source[end] == "\\":
                    end += 1
                end += 1
            if end >= length:
                raise LexerError("unterminated string", line)
            tokens.append(Token("string", source[position + 2:end], line))
            position = end + 1
            continue
        if char.isdigit() or (char == "-" and position + 1 < length
                              and (source[position + 1].isdigit()
                                   or source[position + 1] == ".")):
            token, position = _lex_number(source, position, line)
            tokens.append(token)
            continue
        if char == "-" and source.startswith("-inf", position):
            tokens.append(Token("float", "-inf", line))
            position += 4
            continue
        if char.isalpha() or char == "_":
            end = position
            while end < length and (source[end].isalnum()
                                    or source[end] in "._"):
                end += 1
            tokens.append(Token("word", source[position:end], line))
            position = end
            continue
        matched = False
        for punct in PUNCTUATION:
            if source.startswith(punct, position):
                tokens.append(Token(punct, punct, line))
                position += len(punct)
                matched = True
                break
        if not matched:
            raise LexerError("unexpected character {0!r}".format(char), line)
    tokens.append(Token("eof", "", line))
    return tokens


def _lex_number(source: str, position: int, line: int):
    start = position
    length = len(source)
    if source[position] == "-":
        position += 1
    while position < length and source[position].isdigit():
        position += 1
    is_float = False
    if position < length and source[position] == ".":
        is_float = True
        position += 1
        while position < length and source[position].isdigit():
            position += 1
    if position < length and source[position] in "eE":
        lookahead = position + 1
        if lookahead < length and source[lookahead] in "+-":
            lookahead += 1
        if lookahead < length and source[lookahead].isdigit():
            is_float = True
            position = lookahead
            while position < length and source[position].isdigit():
                position += 1
    text = source[start:position]
    kind = "float" if is_float else "int"
    return Token(kind, text, line), position
