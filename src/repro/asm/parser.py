"""Recursive-descent parser for textual LLVA assembly.

Accepts exactly what :mod:`repro.ir.printer` emits (plus insignificant
whitespace and comments), reconstructing a verified
:class:`~repro.ir.module.Module`.  Forward references — to basic blocks
and to registers defined later in a function — are resolved with
placeholder values that are patched once the function is complete.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.asm.lexer import Token, tokenize
from repro.ir import instructions as insts
from repro.ir import types, values
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.values import Constant, Value


class ParseError(Exception):
    """Raised on syntactically or semantically invalid assembly."""

    def __init__(self, message: str, token: Token):
        super().__init__("line {0}: {1} (at {2!r})"
                         .format(token.line, message, token.text))


class _Placeholder(Value):
    """Stand-in for a register referenced before its definition."""

    __slots__ = ()


def parse_module(source: str, name: str = "module") -> Module:
    """Parse *source* into a new module."""
    return _Parser(source, name).parse()


class _Parser:
    def __init__(self, source: str, name: str):
        self.tokens = tokenize(source)
        self.position = 0
        self.module = Module(name)

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.advance()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text if text is not None else kind
            raise ParseError("expected {0!r}".format(wanted), token)
        return token

    def accept(self, kind: str, text: Optional[str] = None
               ) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- module level ----------------------------------------------------------

    def parse(self) -> Module:
        while self.peek().kind != "eof":
            token = self.peek()
            if token.kind == "word" and token.text == "target":
                self._parse_target()
            elif token.kind == "word" and token.text == "declare":
                self._parse_declare()
            elif token.kind == "local":
                self._parse_named_definition()
            elif token.kind == "word":
                self._parse_function_definition()
            else:
                raise ParseError("unexpected token at module level", token)
        return self.module

    def _parse_target(self) -> None:
        self.expect("word", "target")
        key = self.expect("word")
        self.expect("=")
        if key.text == "pointersize":
            bits = int(self.expect("int").text)
            self.module.pointer_size = bits // 8
        elif key.text == "endian":
            self.module.endianness = self.expect("word").text
        else:
            raise ParseError("unknown target key", key)

    def _parse_declare(self) -> None:
        self.expect("word", "declare")
        return_type = self.parse_type()
        name = self.expect("local").text
        params, vararg = self._parse_param_types()
        fn_type = types.function_of(return_type, params, vararg)
        self.module.get_or_declare_function(name, fn_type)

    def _parse_param_types(self) -> Tuple[List[types.Type], bool]:
        self.expect("(")
        params: List[types.Type] = []
        vararg = False
        if not self.accept(")"):
            while True:
                if self.accept("..."):
                    vararg = True
                    break
                params.append(self.parse_type())
                if not self.accept(","):
                    break
            self.expect(")")
        return params, vararg

    def _parse_named_definition(self) -> None:
        """``%name = type ...`` or ``%name = [internal] global/constant``."""
        name = self.expect("local").text
        self.expect("=")
        if self.accept("word", "type"):
            struct = self._named_struct(name)
            body = self.parse_type()
            if not isinstance(body, types.StructType):
                raise ParseError("named types must be structs", self.peek())
            struct.set_body(body.fields)
            self.module.named_types.setdefault(name, struct)
            return
        internal = bool(self.accept("word", "internal"))
        external = bool(self.accept("word", "external"))
        keyword = self.expect("word")
        if keyword.text not in ("global", "constant"):
            raise ParseError("expected 'global' or 'constant'", keyword)
        is_constant = keyword.text == "constant"
        if external:
            value_type = self.parse_type()
            self.module.create_global(name, value_type, None,
                                      is_constant, internal)
            return
        value_type, initializer = self.parse_typed_constant()
        existing = self.module.globals.get(name)
        if existing is not None and existing.initializer is None:
            # Definition for a forward-synthesized declaration.
            if existing.value_type is not value_type:
                raise ParseError(
                    "global %{0} type conflicts with earlier use"
                    .format(name), keyword)
            existing.initializer = initializer
            existing.is_constant = is_constant
            existing.internal = internal
        else:
            self.module.create_global(name, value_type, initializer,
                                      is_constant, internal)

    def _named_struct(self, name: str) -> types.StructType:
        existing = self.module.named_types.get(name)
        if existing is not None:
            return existing
        struct = types.named_struct(name)
        self.module.named_types[name] = struct
        return struct

    # -- types --------------------------------------------------------------------

    def parse_type(self) -> types.Type:
        token = self.advance()
        base: types.Type
        if token.kind == "word" and token.text in types.PRIMITIVES:
            base = types.PRIMITIVES[token.text]
        elif token.kind == "local":
            base = self._named_struct(token.text)
        elif token.kind == "[":
            length = int(self.expect("int").text)
            self.expect("word", "x")
            element = self.parse_type()
            self.expect("]")
            base = types.array_of(element, length)
        elif token.kind == "<":
            lanes = int(self.expect("int").text)
            self.expect("word", "x")
            element = self.parse_type()
            self.expect(">")
            try:
                base = types.vector_of(element, lanes)
            except types.LlvaTypeError as error:
                raise ParseError(str(error), token)
        elif token.kind == "{":
            fields: List[types.Type] = []
            if not self.accept("}"):
                while True:
                    fields.append(self.parse_type())
                    if not self.accept(","):
                        break
                self.expect("}")
            base = types.struct_of(fields)
        else:
            raise ParseError("expected a type", token)
        # Suffixes: function '(...)' and pointer '*', repeatable.
        while True:
            if self.peek().kind == "(":
                params, vararg = self._parse_param_types()
                base = types.function_of(base, params, vararg)
            elif self.peek().kind == "*":
                self.advance()
                base = types.pointer_to(base)
            else:
                break
        return base

    # -- constants ---------------------------------------------------------------

    def parse_typed_constant(self) -> Tuple[types.Type, Constant]:
        """Parse ``<type> <literal>`` (global initializers)."""
        type_ = self.parse_type()
        return type_, self.parse_constant_literal(type_)

    def parse_constant_literal(self, type_: types.Type) -> Constant:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            if type_.is_floating_point:
                return values.const_fp(type_, float(token.text))
            return values.const_int(type_, int(token.text))
        if token.kind == "float":
            self.advance()
            return values.const_fp(type_, float(token.text))
        if token.kind == "word" and token.text in ("inf", "nan"):
            self.advance()
            return values.const_fp(type_, float(token.text))
        if token.kind == "word" and token.text in ("true", "false"):
            self.advance()
            return values.const_bool(token.text == "true")
        if token.kind == "word" and token.text == "null":
            self.advance()
            return values.const_null(type_)
        if token.kind == "word" and token.text == "undef":
            self.advance()
            return values.const_undef(type_)
        if token.kind == "word" and token.text == "zeroinitializer":
            self.advance()
            return values.const_zero(type_)
        if token.kind == "local":
            self.advance()
            return self._global_symbol(token, type_)
        if token.kind == "string":
            # c"..." is the literal byte content: no implicit NUL (write
            # \00 explicitly when one is wanted).
            self.advance()
            return values.make_byte_array(_unescape(token.text))
        if token.kind == "[":
            self.advance()
            if not isinstance(type_, types.ArrayType):
                raise ParseError("array literal for non-array type", token)
            elements: List[Constant] = []
            if not self.accept("]"):
                while True:
                    _t, element = self.parse_typed_constant()
                    elements.append(element)
                    if not self.accept(","):
                        break
                self.expect("]")
            return values.ConstantArray(type_.element, elements)
        if token.kind == "{":
            self.advance()
            if not isinstance(type_, types.StructType):
                raise ParseError("struct literal for non-struct type", token)
            elements = []
            if not self.accept("}"):
                while True:
                    _t, element = self.parse_typed_constant()
                    elements.append(element)
                    if not self.accept(","):
                        break
                self.expect("}")
            return values.ConstantStruct(type_, elements)
        raise ParseError("expected a constant", token)

    def _global_symbol(self, token: Token,
                       type_: Optional[types.Type] = None) -> Constant:
        name = token.text
        if name in self.module.functions:
            return self.module.functions[name]
        if name in self.module.globals:
            return self.module.globals[name]
        # Forward reference from an initializer; synthesize a declaration
        # from the expected type (the definition later adopts it).
        if type_ is not None and type_.is_pointer:
            pointee = type_.pointee
            if pointee.is_function:
                return self.module.get_or_declare_function(name, pointee)
            return self.module.create_global(name, pointee)
        raise ParseError("unknown global symbol", token)

    # -- function bodies -------------------------------------------------------------

    def _parse_function_definition(self) -> None:
        internal = bool(self.accept("word", "internal"))
        return_type = self.parse_type()
        name = self.expect("local").text
        self.expect("(")
        param_types: List[types.Type] = []
        param_names: List[str] = []
        vararg = False
        if not self.accept(")"):
            while True:
                if self.accept("..."):
                    vararg = True
                    break
                param_types.append(self.parse_type())
                param_names.append(self.expect("local").text)
                if not self.accept(","):
                    break
            self.expect(")")
        fn_type = types.function_of(return_type, param_types, vararg)
        existing = self.module.functions.get(name)
        if existing is not None:
            # A body for an earlier declaration (possibly implicit, from a
            # forward call).  Reuse the object so existing operand
            # references stay valid; adopt the definition's argument names.
            if not existing.is_declaration:
                raise ParseError("redefinition of function %" + name,
                                 self.peek())
            if existing.function_type is not fn_type:
                raise ParseError(
                    "definition of %{0} conflicts with earlier "
                    "declaration".format(name), self.peek())
            function = existing
            for arg, arg_name in zip(function.args, param_names):
                arg.name = arg_name
            function.internal = internal
        else:
            function = self.module.create_function(
                name, fn_type, param_names, internal)
        self.expect("{")
        _FunctionBodyParser(self, function).parse()

    def parse_instruction_body_end(self) -> None:
        self.expect("}")


class _FunctionBodyParser:
    """Parses the block list of one function."""

    def __init__(self, parser: _Parser, function: Function):
        self.p = parser
        self.function = function
        self.blocks: Dict[str, BasicBlock] = {}
        self.locals: Dict[str, Value] = {
            arg.name: arg for arg in function.args}
        self.placeholders: Dict[str, _Placeholder] = {}
        self.builder_block: Optional[BasicBlock] = None

    # -- entry ------------------------------------------------------------------

    def parse(self) -> None:
        while not self.p.accept("}"):
            token = self.p.peek()
            if token.kind == "word" and self.p.peek(1).kind == ":":
                label = self.p.advance().text
                self.p.expect(":")
                self._start_block(label)
            elif token.kind == "local" and self.p.peek(1).kind == ":":
                label = self.p.advance().text
                self.p.expect(":")
                self._start_block(label)
            else:
                self._parse_instruction()
        if self.placeholders:
            missing = ", ".join(sorted(self.placeholders))
            raise ParseError("undefined registers: " + missing,
                             self.p.peek())

    def _start_block(self, label: str) -> None:
        block = self._block(label)
        if block.parent is not None:
            raise ParseError("duplicate block label %" + label,
                             self.p.peek())
        block.parent = self.function
        self.function.blocks.append(block)
        self.builder_block = block

    def _block(self, label: str) -> BasicBlock:
        block = self.blocks.get(label)
        if block is None:
            block = BasicBlock(label)
            self.blocks[label] = block
        return block

    def _define(self, name: str, value: Value) -> None:
        if name in self.locals:
            raise ParseError("redefinition of %" + name, self.p.peek())
        value.name = name
        self.locals[name] = value
        placeholder = self.placeholders.pop(name, None)
        if placeholder is not None:
            if placeholder.type is not value.type:
                raise ParseError(
                    "type mismatch for %{0}: forward uses said {1}, "
                    "definition is {2}".format(
                        name, placeholder.type, value.type),
                    self.p.peek())
            placeholder.replace_all_uses_with(value)

    def _local(self, name: str, type_: types.Type) -> Value:
        value = self.locals.get(name)
        if value is not None:
            if value.type is not type_:
                raise ParseError(
                    "%{0} has type {1}, operand says {2}"
                    .format(name, value.type, type_), self.p.peek())
            return value
        if name in self.p.module.functions:
            return self.p.module.functions[name]
        if name in self.p.module.globals:
            return self.p.module.globals[name]
        if type_.is_pointer and type_.pointee.is_function:
            # Forward reference to a function used as a value (function
            # pointer): implicitly declare it, as for forward calls.
            return self.p.module.get_or_declare_function(
                name, type_.pointee)
        placeholder = self.placeholders.get(name)
        if placeholder is None:
            placeholder = _Placeholder(type_, name)
            self.placeholders[name] = placeholder
        return placeholder

    # -- operands ------------------------------------------------------------------

    def _typed_operand(self) -> Value:
        """``<type> <value>`` — including ``label %block``."""
        if self.p.accept("word", "label"):
            return self._block(self.p.expect("local").text)
        type_ = self.p.parse_type()
        return self._untyped_operand(type_)

    def _untyped_operand(self, type_: types.Type) -> Value:
        token = self.p.peek()
        if token.kind == "local":
            self.p.advance()
            return self._local(token.text, type_)
        return self.p.parse_constant_literal(type_)

    # -- instructions --------------------------------------------------------------

    def _append(self, inst: insts.Instruction,
                result_name: Optional[str]) -> None:
        if self.builder_block is None:
            raise ParseError("instruction outside any block", self.p.peek())
        bang = self.p.accept("bang")
        if bang is not None:
            if bang.text not in ("!ee(true)", "!ee(false)"):
                raise ParseError("unknown attribute", bang)
            inst.exceptions_enabled = bang.text == "!ee(true)"
        self.builder_block.append(inst)
        if result_name is not None:
            self._define(result_name, inst)

    def _parse_instruction(self) -> None:
        result_name: Optional[str] = None
        if self.p.peek().kind == "local" and self.p.peek(1).kind == "=":
            result_name = self.p.advance().text
            self.p.expect("=")
        opcode_token = self.p.expect("word")
        opcode = opcode_token.text
        if opcode in insts.BINARY_CLASSES \
                or opcode in insts.VECTOR_BINARY_CLASSES \
                or opcode in (
                    "seteq", "setne", "setlt", "setgt", "setle", "setge"):
            self._parse_binary(opcode, result_name)
        elif opcode == "ret":
            self._parse_ret(result_name)
        elif opcode == "br":
            self._parse_br()
        elif opcode == "mbr":
            self._parse_mbr()
        elif opcode == "call":
            self._parse_call(result_name)
        elif opcode == "invoke":
            self._parse_invoke(result_name)
        elif opcode == "unwind":
            self._append(insts.UnwindInst(), None)
        elif opcode == "load":
            pointer = self._typed_operand()
            self._append(insts.LoadInst(pointer), result_name)
        elif opcode == "store":
            value = self._typed_operand()
            self.p.expect(",")
            pointer = self._typed_operand()
            self._append(insts.StoreInst(value, pointer), None)
        elif opcode == "getelementptr":
            self._parse_gep(result_name)
        elif opcode == "alloca":
            self._parse_alloca(result_name)
        elif opcode == "cast":
            value = self._typed_operand()
            self.p.expect("word", "to")
            target = self.p.parse_type()
            self._append(insts.CastInst(value, target), result_name)
        elif opcode == "phi":
            self._parse_phi(result_name)
        elif opcode == "vsplat":
            vec_type = self.p.parse_type()
            if not vec_type.is_vector:
                raise ParseError("vsplat requires a vector type",
                                 opcode_token)
            scalar = self._untyped_operand(vec_type.element)
            self._append(insts.VSplatInst(vec_type, scalar), result_name)
        elif opcode in insts.VREDUCE_CLASSES:
            init = self._typed_operand()
            self.p.expect(",")
            vector = self._typed_operand()
            self._append(insts.VREDUCE_CLASSES[opcode](init, vector),
                         result_name)
        elif opcode == "vload":
            vec_type = self.p.parse_type()
            self.p.expect(",")
            pointer = self._typed_operand()
            self._append(insts.VLoadInst(vec_type, pointer), result_name)
        elif opcode == "vstore":
            value = self._typed_operand()
            self.p.expect(",")
            pointer = self._typed_operand()
            self._append(insts.VStoreInst(value, pointer), None)
        else:
            raise ParseError("unknown opcode", opcode_token)

    def _parse_binary(self, opcode: str,
                      result_name: Optional[str]) -> None:
        type_ = self.p.parse_type()
        lhs = self._untyped_operand(type_)
        self.p.expect(",")
        # Shifts print their ubyte amount with an explicit type.
        if opcode in ("shl", "shr") and _starts_type(self.p):
            rhs = self._typed_operand()
        else:
            rhs = self._untyped_operand(type_)
        if opcode in insts.BINARY_CLASSES:
            inst: insts.Instruction = insts.BINARY_CLASSES[opcode](lhs, rhs)
        elif opcode in insts.VECTOR_BINARY_CLASSES:
            inst = insts.VECTOR_BINARY_CLASSES[opcode](lhs, rhs)
        else:
            inst = insts.COMPARE_CLASSES[opcode[3:]](lhs, rhs)
        self._append(inst, result_name)

    def _parse_ret(self, result_name: Optional[str]) -> None:
        if self.p.accept("word", "void"):
            self._append(insts.RetInst(None), None)
            return
        value = self._typed_operand()
        self._append(insts.RetInst(value), None)

    def _parse_br(self) -> None:
        first = self._typed_operand()
        if isinstance(first, BasicBlock):
            self._append(insts.BranchInst(target=first), None)
            return
        self.p.expect(",")
        if_true = self._typed_operand()
        self.p.expect(",")
        if_false = self._typed_operand()
        self._append(insts.BranchInst(condition=first, if_true=if_true,
                                      if_false=if_false), None)

    def _parse_mbr(self) -> None:
        selector = self._typed_operand()
        self.p.expect(",")
        default = self._typed_operand()
        cases: List[Tuple[values.ConstantInt, BasicBlock]] = []
        while self.p.accept(","):
            self.p.expect("[")
            _type, constant = self.p.parse_typed_constant()
            self.p.expect(",")
            label = self._typed_operand()
            self.p.expect("]")
            cases.append((constant, label))  # type: ignore[arg-type]
        self._append(insts.MultiwayBranchInst(selector, default, cases),
                     None)

    def _parse_call_operands(self):
        return_type = self.p.parse_type()
        callee_token = self.p.expect("local")
        args: List[Value] = []
        self.p.expect("(")
        if not self.p.accept(")"):
            while True:
                args.append(self._typed_operand())
                if not self.p.accept(","):
                    break
            self.p.expect(")")
        callee = self._resolve_callee(callee_token, return_type, args)
        return callee, args

    def _resolve_callee(self, token: Token, return_type: types.Type,
                        args: List[Value]) -> Value:
        name = token.text
        if name in self.p.module.functions:
            return self.p.module.functions[name]
        if name in self.locals:
            return self.locals[name]
        # A forward reference to a function defined later in the module:
        # implicitly declare it with the signature the call site implies
        # (the later definition adopts this object).  Calls through local
        # function-pointer registers were caught by the `locals` lookup.
        fn_type = types.function_of(return_type, [a.type for a in args])
        return self.p.module.get_or_declare_function(name, fn_type)

    def _parse_call(self, result_name: Optional[str]) -> None:
        callee, args = self._parse_call_operands()
        self._append(insts.CallInst(callee, args), result_name)

    def _parse_invoke(self, result_name: Optional[str]) -> None:
        callee, args = self._parse_call_operands()
        self.p.expect("word", "to")
        normal = self._typed_operand()
        self.p.expect("word", "unwind")
        unwind = self._typed_operand()
        self._append(insts.InvokeInst(callee, args, normal, unwind),
                     result_name)

    def _parse_gep(self, result_name: Optional[str]) -> None:
        pointer = self._typed_operand()
        indices: List[Value] = []
        while self.p.accept(","):
            indices.append(self._typed_operand())
        self._append(insts.GetElementPtrInst(pointer, indices), result_name)

    def _parse_alloca(self, result_name: Optional[str]) -> None:
        allocated = self.p.parse_type()
        count: Optional[Value] = None
        if self.p.accept(","):
            count = self._typed_operand()
        self._append(insts.AllocaInst(allocated, count), result_name)

    def _parse_phi(self, result_name: Optional[str]) -> None:
        type_ = self.p.parse_type()
        incoming: List[Tuple[Value, Value]] = []
        while True:
            self.p.expect("[")
            value = self._untyped_operand(type_)
            self.p.expect(",")
            block = self._block(self.p.expect("local").text)
            self.p.expect("]")
            incoming.append((value, block))
            if not self.p.accept(","):
                break
        self._append(insts.PhiInst(type_, incoming), result_name)


def _starts_type(parser: _Parser) -> bool:
    token = parser.peek()
    if token.kind == "word" and token.text in types.PRIMITIVES:
        return True
    return token.kind in ("[", "{")


def _unescape(text: str) -> bytes:
    out = bytearray()
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 2 < len(text) + 1:
            out.append(int(text[index + 1:index + 3], 16))
            index += 3
        else:
            out.append(ord(char))
            index += 1
    return bytes(out)
