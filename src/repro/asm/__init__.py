"""Textual LLVA assembly front end (lexer + parser).

Round-trips with :mod:`repro.ir.printer`:

>>> from repro.asm import parse_module
>>> from repro.ir import print_module
>>> module = parse_module(print_module(other_module))   # doctest: +SKIP

Known limitation: a ``call`` through a function-pointer *register* must be
textually preceded by the register's definition (the paper's syntax does
not distinguish global from local names).
"""

from repro.asm.lexer import LexerError, tokenize
from repro.asm.parser import ParseError, parse_module

__all__ = ["LexerError", "tokenize", "ParseError", "parse_module"]
