"""repro — a reproduction of "LLVA: A Low-level Virtual Instruction Set
Architecture" (Adve, Lattner, Brukman, Shukla, Gaeke; MICRO-36, 2003).

The package implements the paper's full system:

* :mod:`repro.ir` — the LLVA V-ISA: typed SSA instruction set, explicit
  CFGs, verifier, assembly printer (the core contribution).
* :mod:`repro.asm` — textual assembly parser.
* :mod:`repro.bitcode` — compact virtual object code encoding.
* :mod:`repro.analysis` — alias analysis, call graphs, loops, DSA.
* :mod:`repro.transforms` — the optimizer (mem2reg, SCCP, GVN, LICM,
  inlining, link-time interprocedural passes, pool allocation).
* :mod:`repro.targets` — translators to two simulated hardware I-ISAs
  (x86-like CISC, SPARC-V9-like RISC).
* :mod:`repro.execution` — the LLVA interpreter (semantic oracle) and the
  native machine simulator, with the paper's exception model.
* :mod:`repro.llee` — the LLEE execution manager: JIT, offline caching
  through the OS-independent storage API, profiling, trace cache.
* :mod:`repro.minic` — a small C-like front-end used to author workloads.
* :mod:`repro.benchsuite` — the 17 synthetic Table 2 workloads.
* :mod:`repro.observe` — unified tracing + metrics across the
  compile -> translate -> execute pipeline (off by default).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
