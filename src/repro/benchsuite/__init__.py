"""The Table 2 workload suite (17 synthetic PtrDist/SPEC analogues)."""

from repro.benchsuite.suite import (
    PAPER_TABLE2,
    SUITE_ORDER,
    PaperRow,
    Workload,
    load_suite,
    load_workload,
)

__all__ = [
    "PAPER_TABLE2",
    "SUITE_ORDER",
    "PaperRow",
    "Workload",
    "load_suite",
    "load_workload",
]
