"""The Table 2 workload suite.

Seventeen synthetic MiniC programs, one per row of the paper's Table 2
(PtrDist + SPEC CINT2000), each reproducing the original benchmark's
dominant behaviour — pointer chasing, hashing, compression, annealing,
bitboards — at laptop-simulator scale.  Every program is deterministic
(LCG-generated inputs) and prints a checksum, so the same program
validates the interpreter, both translators, and the optimizer against
each other.

``PAPER`` rows carry the original Table 2 measurements for side-by-side
reporting in EXPERIMENTS.md.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 2."""

    name: str
    loc: int
    native_kb: float
    llva_kb: float
    llva_insts: int
    x86_insts: int
    x86_ratio: float
    sparc_insts: int
    sparc_ratio: float
    translate_s: float
    run_s: float
    translate_ratio: float

    @property
    def size_ratio(self) -> float:
        return self.native_kb / self.llva_kb


#: Table 2 of the paper, verbatim.
PAPER_TABLE2: Dict[str, PaperRow] = {
    row.name: row for row in (
        PaperRow("anagram", 647, 21.7, 10.7, 776, 1817, 2.34,
                 2550, 3.29, 0.0078, 1.317, 0.006),
        PaperRow("ks", 782, 24.9, 12.1, 1059, 2732, 2.58,
                 4446, 4.20, 0.0039, 1.694, 0.002),
        PaperRow("ft", 1803, 20.9, 10.1, 799, 1990, 2.49,
                 2818, 3.53, 0.0117, 2.797, 0.004),
        PaperRow("yacr2", 3982, 58.3, 36.5, 4279, 10881, 2.54,
                 12252, 2.86, 0.0429, 2.686, 0.016),
        PaperRow("bc", 7297, 112.0, 74.4, 7276, 19286, 2.65,
                 25697, 3.53, 0.1308, 1.307, 0.100),
        PaperRow("art", 1283, 37.8, 17.9, 2027, 5385, 2.66,
                 7031, 3.47, 0.0253, 114.723, 0.000),
        PaperRow("equake", 1513, 44.4, 23.9, 2863, 6409, 3.14,
                 8275, 2.89, 0.0273, 18.005, 0.002),
        PaperRow("mcf", 2412, 32.0, 17.3, 2039, 4707, 2.31,
                 4601, 2.26, 0.0175, 24.516, 0.001),
        PaperRow("bzip2", 4647, 73.5, 55.7, 5103, 11984, 2.35,
                 14157, 2.77, 0.0371, 20.896, 0.002),
        PaperRow("gzip", 8616, 94.0, 68.6, 7594, 17500, 2.30,
                 20880, 2.75, 0.0527, 19.332, 0.003),
        PaperRow("parser", 11391, 223.0, 175.3, 17138, 41671, 2.43,
                 57274, 3.34, 0.1601, 4.718, 0.034),
        PaperRow("ammp", 13483, 265.1, 163.2, 21961, 53529, 2.44,
                 67679, 3.08, 0.1074, 58.758, 0.002),
        PaperRow("vpr", 17729, 331.0, 184.4, 18041, 58982, 3.27,
                 74696, 4.14, 0.1425, 7.924, 0.018),
        PaperRow("twolf", 20459, 487.7, 330.0, 45017, 104613, 2.32,
                 119691, 2.66, 0.0156, 9.680, 0.002),
        PaperRow("crafty", 20650, 555.5, 336.4, 34080, 104093, 3.05,
                 110630, 3.25, 0.4531, 15.408, 0.029),
        PaperRow("vortex", 67223, 976.3, 719.3, 72039, 195648, 2.72,
                 224488, 3.12, 0.7773, 6.753, 0.115),
        PaperRow("gap", 71363, 1088.1, 854.4, 111482, 246102, 2.21,
                 272483, 2.44, 0.4824, 3.729, 0.129),
    )
}

#: Suite order (PtrDist first, then SPEC, as in the table).
SUITE_ORDER: List[str] = [
    "anagram", "ks", "ft", "yacr2", "bc",
    "art", "equake", "mcf", "bzip2", "gzip",
    "parser", "ammp", "vpr", "twolf", "crafty", "vortex", "gap",
]


@dataclass
class Workload:
    """One runnable suite entry."""

    name: str
    paper: PaperRow
    source: str
    #: Scale knob used (1.0 = the bench default).
    scale: float

    @property
    def loc(self) -> int:
        return sum(1 for line in self.source.splitlines()
                   if line.strip() and not line.strip().startswith("//"))


def load_workload(name: str, scale: float = 1.0) -> Workload:
    """Import the generator module for *name* and build its source."""
    if name not in PAPER_TABLE2:
        raise KeyError("unknown workload {0!r}".format(name))
    module = importlib.import_module(
        "repro.benchsuite.programs." + name)
    return Workload(name=name, paper=PAPER_TABLE2[name],
                    source=module.source(scale), scale=scale)


def load_suite(scale: float = 1.0,
               names: Optional[List[str]] = None) -> List[Workload]:
    """Build the whole suite (or the *names* subset), in table order."""
    selected = names if names is not None else SUITE_ORDER
    return [load_workload(name, scale) for name in selected]
