"""ptrdist-bc: an arbitrary-precision calculator.

Reproduces bc's core: bignums as digit arrays with add / subtract /
multiply / small division, driven by a deterministic stream of
calculator operations (including factorials and power towers) instead
of parsed script text.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    operations = scaled(60, scale)
    return (LCG + CHECKSUM + r"""
int DIGITS = 160;             // base-10000 limbs per number
int OPS = @OPS@;

// A small bank of bignum registers, each DIGITS limbs, limb 0 = LSB.
int bank[16][160];
int bank_len[16];

void big_zero(int r) {
    int i;
    for (i = 0; i < DIGITS; i++) bank[r][i] = 0;
    bank_len[r] = 1;
}

void big_set(int r, int value) {
    big_zero(r);
    int i = 0;
    while (value > 0 && i < DIGITS) {
        bank[r][i] = value % 10000;
        value = value / 10000;
        i++;
    }
    if (i == 0) i = 1;
    bank_len[r] = i;
}

void big_copy(int dst, int src) {
    int i;
    for (i = 0; i < DIGITS; i++) bank[dst][i] = bank[src][i];
    bank_len[dst] = bank_len[src];
}

// dst = a + b
void big_add(int dst, int a, int b) {
    int carry = 0;
    int i;
    int n = bank_len[a];
    if (bank_len[b] > n) n = bank_len[b];
    for (i = 0; i < n || carry > 0; i++) {
        if (i >= DIGITS) break;
        int s = bank[a][i] + bank[b][i] + carry;
        bank[dst][i] = s % 10000;
        carry = s / 10000;
    }
    bank_len[dst] = i;
    if (bank_len[dst] < 1) bank_len[dst] = 1;
    for (i = bank_len[dst]; i < DIGITS; i++) bank[dst][i] = 0;
}

// dst = a * small (small < 10000)
void big_mul_small(int dst, int a, int small) {
    int carry = 0;
    int i;
    for (i = 0; i < DIGITS; i++) {
        int p = bank[a][i] * small + carry;
        bank[dst][i] = p % 10000;
        carry = p / 10000;
    }
    bank_len[dst] = DIGITS;
    while (bank_len[dst] > 1 && bank[dst][bank_len[dst] - 1] == 0) {
        bank_len[dst] = bank_len[dst] - 1;
    }
}

// dst = a * b (schoolbook, truncated at DIGITS limbs)
int scratch[160];

void big_mul(int dst, int a, int b) {
    int i;
    int j;
    for (i = 0; i < DIGITS; i++) scratch[i] = 0;
    for (i = 0; i < bank_len[a]; i++) {
        int carry = 0;
        int ai = bank[a][i];
        if (ai == 0) continue;
        for (j = 0; j + i < DIGITS; j++) {
            int p = scratch[i + j] + ai * bank[b][j] + carry;
            scratch[i + j] = p % 10000;
            carry = p / 10000;
        }
    }
    for (i = 0; i < DIGITS; i++) bank[dst][i] = scratch[i];
    bank_len[dst] = DIGITS;
    while (bank_len[dst] > 1 && bank[dst][bank_len[dst] - 1] == 0) {
        bank_len[dst] = bank_len[dst] - 1;
    }
}

// dst = a / small; returns remainder
int big_div_small(int dst, int a, int small) {
    int remainder = 0;
    int i;
    for (i = DIGITS - 1; i >= 0; i--) {
        int cur = remainder * 10000 + bank[a][i];
        bank[dst][i] = cur / small;
        remainder = cur % small;
    }
    bank_len[dst] = DIGITS;
    while (bank_len[dst] > 1 && bank[dst][bank_len[dst] - 1] == 0) {
        bank_len[dst] = bank_len[dst] - 1;
    }
    return remainder;
}

int big_mod_hash(int r) {
    // Fold the number into a small checksum.
    int h = 0;
    int i;
    for (i = 0; i < bank_len[r]; i++) {
        h = (h * 7 + bank[r][i]) % 1000003;
    }
    return h;
}

void factorial(int dst, int n) {
    big_set(dst, 1);
    int k;
    for (k = 2; k <= n; k++) {
        big_mul_small(dst, dst, k);
    }
}

void power(int dst, int base, int exponent) {
    big_set(dst, 1);
    big_set(15, base);
    int k;
    for (k = 0; k < exponent; k++) {
        big_mul(dst, dst, 15);
    }
}

int main() {
    rng_seed(71ul);
    int op;
    int r;
    for (r = 0; r < 16; r++) big_zero(r);
    for (op = 0; op < OPS; op++) {
        int kind = rng_next(5);
        int a = rng_next(8);
        int b = rng_next(8);
        int dst = 8 + rng_next(6);
        if (kind == 0) {
            big_set(dst, 1 + rng_next(99999));
        } else if (kind == 1) {
            big_add(dst, a, b);
        } else if (kind == 2) {
            big_mul(dst, a, b);
        } else if (kind == 3) {
            factorial(dst, 5 + rng_next(40));
        } else {
            power(dst, 2 + rng_next(9), 3 + rng_next(17));
        }
        big_copy(rng_next(8), dst);
        checksum_add(big_mod_hash(dst));
    }
    print_str("bc checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@OPS@", str(operations))
