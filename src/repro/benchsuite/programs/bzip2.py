"""256.bzip2: block compression.

The original does BWT + MTF + Huffman.  This version compresses
deterministic blocks with the same stage structure at simulator scale:
run-length pre-pass, move-to-front transform over a 256-symbol
alphabet, and frequency-based recoding, then verifies by decompressing.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    block_size = min(scaled(2200, scale), 16000)
    blocks = 3
    return (LCG + CHECKSUM + r"""
int BLOCK = @B@;
int BLOCKS = @N@;

int raw[16384];
int rle[32768];
int mtf[32768];
int decoded_mtf[32768];
int decoded_rle[32768];
int decoded[32768];
int mtf_table[256];
int frequency[256];

void make_block(int b) {
    int i;
    int value = rng_next(256);
    for (i = 0; i < BLOCK; i++) {
        if (rng_next(100) < 55) {
            // runs are common in bzip2 inputs
        } else {
            value = rng_next(64) + (b * 16) % 128;
        }
        raw[i] = value;
    }
}

int run_length_encode(int n) {
    int out = 0;
    int i = 0;
    while (i < n) {
        int value = raw[i];
        int run = 1;
        while (i + run < n && raw[i + run] == value && run < 255) {
            run++;
        }
        if (run >= 4) {
            rle[out] = 256; out++;        // escape symbol
            rle[out] = value; out++;
            rle[out] = run; out++;
            i += run;
        } else {
            int k;
            for (k = 0; k < run; k++) {
                rle[out] = value; out++;
            }
            i += run;
        }
    }
    return out;
}

void mtf_init() {
    int i;
    for (i = 0; i < 256; i++) mtf_table[i] = i;
}

int mtf_encode_symbol(int value) {
    int position = 0;
    while (mtf_table[position] != value) position++;
    int p;
    for (p = position; p > 0; p--) {
        mtf_table[p] = mtf_table[p - 1];
    }
    mtf_table[0] = value;
    return position;
}

int mtf_decode_symbol(int position) {
    int value = mtf_table[position];
    int p;
    for (p = position; p > 0; p--) {
        mtf_table[p] = mtf_table[p - 1];
    }
    mtf_table[0] = value;
    return value;
}

int move_to_front(int n) {
    mtf_init();
    int i;
    for (i = 0; i < n; i++) {
        if (rle[i] == 256) {
            mtf[i] = 256;       // escape passes through
        } else {
            mtf[i] = mtf_encode_symbol(rle[i]);
        }
    }
    return n;
}

int entropy_estimate(int n) {
    // Frequency census — the stand-in for the Huffman stage.
    int i;
    for (i = 0; i < 256; i++) frequency[i] = 0;
    int bits = 0;
    for (i = 0; i < n; i++) {
        if (mtf[i] < 256) {
            frequency[mtf[i]]++;
            // small positions get short codes: cost ~ position magnitude
            int v = mtf[i];
            int cost = 1;
            while (v > 0) { cost++; v = v >> 1; }
            bits += cost;
        } else {
            bits += 9;
        }
    }
    return bits;
}

void decompress(int n, int original_length) {
    mtf_init();
    int i;
    for (i = 0; i < n; i++) {
        if (mtf[i] == 256) {
            decoded_mtf[i] = 256;
        } else {
            decoded_mtf[i] = mtf_decode_symbol(mtf[i]);
        }
    }
    int out = 0;
    i = 0;
    while (i < n) {
        if (decoded_mtf[i] == 256) {
            int value = decoded_mtf[i + 1];
            int run = decoded_mtf[i + 2];
            int k;
            for (k = 0; k < run; k++) {
                decoded[out] = value; out++;
            }
            i += 3;
        } else {
            decoded[out] = decoded_mtf[i]; out++;
            i++;
        }
    }
    if (out != original_length) {
        checksum_add(-999);
    }
}

int main() {
    rng_seed(173ul);
    int b;
    int total_bits = 0;
    for (b = 0; b < BLOCKS; b++) {
        make_block(b);
        int rle_length = run_length_encode(BLOCK);
        int mtf_length = move_to_front(rle_length);
        int bits = entropy_estimate(mtf_length);
        total_bits += bits;
        decompress(mtf_length, BLOCK);
        int i;
        int ok = 1;
        for (i = 0; i < BLOCK; i++) {
            if (decoded[i] != raw[i]) ok = 0;
        }
        checksum_add(ok * 1000 + rle_length % 1000);
        checksum_add(bits);
    }
    print_str("bzip2 bits="); print_int(total_bits);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@B@", str(block_size)).replace("@N@", str(blocks))
