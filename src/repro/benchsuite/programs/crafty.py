"""186.crafty: chess bitboards (64-bit integer heavy).

Crafty's signature workload is 64-bit bitboard manipulation: attack
generation by shifting occupancy masks, population counts, and a small
alpha-beta search.  This version plays a simplified rook/knight/king
endgame search over real bitboard operations (``ulong`` shifts, masks,
popcounts) with a material+mobility evaluation.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    positions = scaled(36, scale)
    depth = 3
    return (LCG + CHECKSUM + r"""
int POSITIONS = @P@;
int DEPTH = @D@;

ulong FILE_A = 72340172838076673ul;     // 0x0101010101010101
ulong FILE_H = 9259542123273814144ul;   // 0x8080808080808080
ulong not_a;
ulong not_h;

int popcount(ulong x) {
    int count = 0;
    while (x != 0ul) {
        x = x & (x - 1ul);
        count++;
    }
    return count;
}

int bit_scan(ulong x) {
    // Index of the lowest set bit (x must be nonzero).
    int index = 0;
    while ((x & 1ul) == 0ul) {
        x = x >> 1;
        index++;
    }
    return index;
}

ulong knight_attacks(ulong knights) {
    ulong l1 = (knights >> 1) & not_h;
    ulong l2 = (knights >> 2) & (not_h >> 1) & not_h;
    ulong r1 = (knights << 1) & not_a;
    ulong r2 = (knights << 2) & (not_a << 1) & not_a;
    ulong h1 = l1 | r1;
    ulong h2 = l2 | r2;
    return (h1 << 16) | (h1 >> 16) | (h2 << 8) | (h2 >> 8);
}

ulong king_attacks(ulong king) {
    ulong attacks = ((king << 1) & not_a) | ((king >> 1) & not_h);
    ulong row = king | attacks;
    return (attacks | (row << 8) | (row >> 8)) & ~king;
}

ulong rook_attacks(ulong rook, ulong occupied) {
    // Ray walks in four directions, stopping at blockers.
    ulong attacks = 0ul;
    ulong ray = rook;
    while ((ray & FILE_H) == 0ul) {
        ray = ray << 1;
        attacks = attacks | ray;
        if ((ray & occupied) != 0ul) break;
    }
    ray = rook;
    while ((ray & FILE_A) == 0ul) {
        ray = ray >> 1;
        attacks = attacks | ray;
        if ((ray & occupied) != 0ul) break;
    }
    ray = rook;
    while (ray != 0ul && (ray >> 56) == 0ul) {
        ray = ray << 8;
        attacks = attacks | ray;
        if ((ray & occupied) != 0ul) break;
    }
    ray = rook;
    while (ray != 0ul && (ray & 255ul) == 0ul) {
        ray = ray >> 8;
        attacks = attacks | ray;
        if ((ray & occupied) != 0ul) break;
    }
    return attacks;
}

// Board state: piece bitboards for both sides.
ulong white_rooks; ulong white_knights; ulong white_king;
ulong black_rooks; ulong black_knights; ulong black_king;
int nodes_searched = 0;

ulong white_pieces() { return white_rooks | white_knights | white_king; }
ulong black_pieces() { return black_rooks | black_knights | black_king; }

int evaluate() {
    ulong occupied = white_pieces() | black_pieces();
    int material = 5 * (popcount(white_rooks) - popcount(black_rooks))
                 + 3 * (popcount(white_knights) - popcount(black_knights));
    int mobility = 0;
    if (white_rooks != 0ul) {
        mobility += popcount(rook_attacks(white_rooks, occupied));
    }
    if (black_rooks != 0ul) {
        mobility -= popcount(rook_attacks(black_rooks, occupied));
    }
    mobility += popcount(knight_attacks(white_knights));
    mobility -= popcount(knight_attacks(black_knights));
    return material * 100 + mobility * 3;
}

int search(int depth, int side_to_move, int alpha, int beta) {
    nodes_searched++;
    if (depth == 0) return evaluate();
    ulong own_knights = white_knights;
    if (side_to_move == 1) own_knights = black_knights;
    ulong moves = knight_attacks(own_knights)
                & ~(white_pieces() | black_pieces());
    int best = -100000;
    if (moves == 0ul) {
        int stand = evaluate();
        if (side_to_move == 1) stand = 0 - stand;
        return stand;
    }
    int tried = 0;
    while (moves != 0ul && tried < 6) {
        int square = bit_scan(moves);
        ulong bit = 1ul << square;
        moves = moves & ~bit;
        // Make the move: relocate one knight (simplified).
        ulong saved_white = white_knights;
        ulong saved_black = black_knights;
        if (side_to_move == 0 && white_knights != 0ul) {
            ulong from = 1ul << bit_scan(white_knights);
            white_knights = (white_knights & ~from) | bit;
        } else if (black_knights != 0ul) {
            ulong from = 1ul << bit_scan(black_knights);
            black_knights = (black_knights & ~from) | bit;
        }
        int score = 0 - search(depth - 1, 1 - side_to_move,
                               0 - beta, 0 - alpha);
        white_knights = saved_white;
        black_knights = saved_black;
        if (score > best) best = score;
        if (best > alpha) alpha = best;
        if (alpha >= beta) break;      // beta cutoff
        tried++;
    }
    return best;
}

void random_position() {
    white_rooks = 1ul << rng_next(16);
    white_knights = 1ul << (16 + rng_next(16));
    white_king = 1ul << rng_next(8);
    black_rooks = 1ul << (48 + rng_next(16));
    black_knights = 1ul << (32 + rng_next(16));
    black_king = 1ul << (56 + rng_next(8));
}

int main() {
    rng_seed(313ul);
    not_a = ~FILE_A;
    not_h = ~FILE_H;
    int p;
    int total_score = 0;
    for (p = 0; p < POSITIONS; p++) {
        random_position();
        int score = search(DEPTH, 0, -100000, 100000);
        total_score += score;
        checksum_add(score);
    }
    checksum_add(nodes_searched);
    print_str("crafty nodes="); print_int(nodes_searched);
    print_str(" score="); print_int(total_score);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@P@", str(positions)).replace("@D@", str(depth))
