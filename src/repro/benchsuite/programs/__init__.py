"""Workload generator modules, one per Table 2 row."""
