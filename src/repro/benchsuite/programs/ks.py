"""ptrdist-ks: Kernighan-Schweikert/Lin-style graph partitioning.

Linked-list-heavy: nodes live in two partitions as singly linked lists;
each pass computes swap gains over the (synthetic, LCG-random) netlist
and greedily exchanges the best pair — the original's list splicing and
pointer-walk behaviour.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    nodes = min(scaled(96, scale), 512)
    passes = scaled(6, scale)
    return LCG + CHECKSUM + r"""
struct KsNode {
    int id;
    int side;
    struct KsNode* next;
};

int NODES = @NODES@;
int PASSES = @PASSES@;
int edge_weight[262144];      // NODES x NODES (max 512 x 512)

struct KsNode* side_a = null;
struct KsNode* side_b = null;

int weight(int a, int b) {
    return edge_weight[a * NODES + b];
}

struct KsNode* make_node(int id, int side) {
    struct KsNode* n = (struct KsNode*) malloc(sizeof(struct KsNode));
    n->id = id;
    n->side = side;
    n->next = null;
    return n;
}

void build_graph() {
    int i;
    int j;
    for (i = 0; i < NODES; i++) {
        for (j = 0; j < NODES; j++) {
            if (i < j && rng_next(100) < 8) {
                int w = 1 + rng_next(9);
                edge_weight[i * NODES + j] = w;
                edge_weight[j * NODES + i] = w;
            }
        }
    }
    for (i = NODES - 1; i >= 0; i--) {
        struct KsNode* n = make_node(i, i % 2);
        if (i % 2 == 0) {
            n->next = side_a;
            side_a = n;
        } else {
            n->next = side_b;
            side_b = n;
        }
    }
}

int external_cost(struct KsNode* n) {
    // Cost of edges crossing the cut for node n.
    int cost = 0;
    struct KsNode* other = side_b;
    if (n->side == 1) other = side_a;
    struct KsNode* walk = other;
    while (walk != null) {
        cost += weight(n->id, walk->id);
        walk = walk->next;
    }
    return cost;
}

int internal_cost(struct KsNode* n) {
    int cost = 0;
    struct KsNode* own = side_a;
    if (n->side == 1) own = side_b;
    struct KsNode* walk = own;
    while (walk != null) {
        if (walk != n) cost += weight(n->id, walk->id);
        walk = walk->next;
    }
    return cost;
}

int cut_size() {
    int cut = 0;
    struct KsNode* a = side_a;
    while (a != null) {
        struct KsNode* b = side_b;
        while (b != null) {
            cut += weight(a->id, b->id);
            b = b->next;
        }
        a = a->next;
    }
    return cut;
}

void swap_best() {
    struct KsNode* best_a = null;
    struct KsNode* best_b = null;
    int best_gain = 0;
    struct KsNode* a = side_a;
    while (a != null) {
        struct KsNode* b = side_b;
        while (b != null) {
            int gain = external_cost(a) - internal_cost(a)
                     + external_cost(b) - internal_cost(b)
                     - 2 * weight(a->id, b->id);
            if (gain > best_gain) {
                best_gain = gain;
                best_a = a;
                best_b = b;
            }
            b = b->next;
        }
        a = a->next;
    }
    if (best_a != null && best_b != null) {
        int tmp = best_a->id;
        best_a->id = best_b->id;
        best_b->id = tmp;
    }
}

int main() {
    rng_seed(29ul);
    build_graph();
    int before = cut_size();
    int p;
    for (p = 0; p < PASSES; p++) {
        swap_best();
        checksum_add(cut_size());
    }
    int after = cut_size();
    print_str("ks cut "); print_int(before);
    print_str(" -> "); print_int(after);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""".replace("@NODES@", str(nodes)).replace("@PASSES@", str(passes))
