"""164.gzip: LZ77 compression with hash chains.

The deflate core: a sliding window, 3-byte hash heads with chained
previous positions, greedy longest-match search with an early-exit
chain limit, and literal/match token emission — then decompression to
verify round-trip fidelity.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    input_size = min(scaled(5200, scale), 30000)
    return (LCG + CHECKSUM + r"""
int INPUT = @N@;
int HASH_SIZE = 4096;
int MAX_CHAIN = 32;
int MIN_MATCH = 3;
int MAX_MATCH = 64;

int data[32768];
int head[4096];          // hash -> most recent position
int previous[32768];     // position -> previous position in chain
int tokens[65536];       // (kind, a, b) triples
int token_count = 0;
int decoded[32768];

void make_input() {
    int i;
    // English-ish: sample from a skewed alphabet with repeats.
    for (i = 0; i < INPUT; i++) {
        if (i > 64 && rng_next(100) < 30) {
            // replay an earlier phrase to create matches
            int back = 8 + rng_next(56);
            data[i] = data[i - back];
        } else {
            int r = rng_next(100);
            if (r < 40)      data[i] = rng_next(6);
            else if (r < 75) data[i] = 6 + rng_next(10);
            else             data[i] = 16 + rng_next(48);
        }
    }
}

int hash3(int position) {
    int h = data[position] * 2654435;
    h = h + data[position + 1] * 40503;
    h = h + data[position + 2] * 70913;
    h = h % HASH_SIZE;
    if (h < 0) h = h + HASH_SIZE;
    return h;
}

void insert_position(int position) {
    int h = hash3(position);
    previous[position] = head[h];
    head[h] = position;
}

int match_length(int a, int b, int limit) {
    int n = 0;
    while (n < limit && data[a + n] == data[b + n]) n++;
    return n;
}

int longest_match(int position, int* best_distance) {
    int h = hash3(position);
    int candidate = head[h];
    int best = 0;
    int chain = 0;
    int limit = MAX_MATCH;
    if (position + limit > INPUT) limit = INPUT - position;
    while (candidate >= 0 && chain < MAX_CHAIN) {
        int length = match_length(candidate, position, limit);
        if (length > best) {
            best = length;
            *best_distance = position - candidate;
        }
        candidate = previous[candidate];
        chain++;
    }
    return best;
}

void emit(int kind, int a, int b) {
    tokens[token_count * 3] = kind;
    tokens[token_count * 3 + 1] = a;
    tokens[token_count * 3 + 2] = b;
    token_count++;
}

int deflate() {
    int i;
    for (i = 0; i < HASH_SIZE; i++) head[i] = -1;
    token_count = 0;
    int position = 0;
    int matched_bytes = 0;
    while (position < INPUT) {
        int distance = 0;
        int length = 0;
        if (position + MIN_MATCH <= INPUT) {
            length = longest_match(position, &distance);
        }
        if (length >= MIN_MATCH) {
            emit(1, distance, length);
            matched_bytes += length;
            int k;
            for (k = 0; k < length; k++) {
                if (position + MIN_MATCH <= INPUT) {
                    insert_position(position);
                }
                position++;
            }
        } else {
            emit(0, data[position], 0);
            if (position + MIN_MATCH <= INPUT) {
                insert_position(position);
            }
            position++;
        }
    }
    return matched_bytes;
}

int inflate() {
    int out = 0;
    int t;
    for (t = 0; t < token_count; t++) {
        int kind = tokens[t * 3];
        int a = tokens[t * 3 + 1];
        int b = tokens[t * 3 + 2];
        if (kind == 0) {
            decoded[out] = a; out++;
        } else {
            int k;
            for (k = 0; k < b; k++) {
                decoded[out] = decoded[out - a];
                out++;
            }
        }
    }
    return out;
}

int main() {
    rng_seed(191ul);
    make_input();
    int matched = deflate();
    int out = inflate();
    int ok = 1;
    if (out != INPUT) ok = 0;
    int i;
    for (i = 0; i < INPUT; i++) {
        if (decoded[i] != data[i]) ok = 0;
    }
    checksum_add(ok);
    checksum_add(token_count);
    checksum_add(matched);
    print_str("gzip tokens="); print_int(token_count);
    print_str(" matched="); print_int(matched);
    print_str(" ok="); print_int(ok);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@N@", str(input_size))
