"""175.vpr: FPGA placement by simulated annealing.

The original places netlist blocks on an FPGA grid minimizing
bounding-box wirelength under a cooling schedule.  Same here: blocks on
a grid, nets as block lists, half-perimeter wirelength cost,
swap-accept/reject annealing with a deterministic LCG in place of
``random()``.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    grid = min(scaled(13, scale), 40)
    nets = min(scaled(150, scale), 1200)
    moves_per_temp = scaled(260, scale)
    return (LCG + CHECKSUM + r"""
int GRID = @G@;
int BLOCKS = @G@ * @G@;
int NETS = @N@;
int MOVES = @M@;
int PINS = 4;

int block_x[1600];
int block_y[1600];
int cell_block[40][40];
int net_pins[4800];            // NETS x PINS block ids
int net_cost_cache[4800];

void initial_placement() {
    int b = 0;
    int x;
    int y;
    for (x = 0; x < GRID; x++) {
        for (y = 0; y < GRID; y++) {
            block_x[b] = x;
            block_y[b] = y;
            cell_block[x][y] = b;
            b++;
        }
    }
}

void make_nets() {
    int n;
    int p;
    for (n = 0; n < NETS; n++) {
        for (p = 0; p < PINS; p++) {
            net_pins[n * PINS + p] = rng_next(BLOCKS);
        }
    }
}

int net_cost(int n) {
    // Half-perimeter bounding box of the net's pins.
    int min_x = GRID; int max_x = 0;
    int min_y = GRID; int max_y = 0;
    int p;
    for (p = 0; p < PINS; p++) {
        int b = net_pins[n * PINS + p];
        if (block_x[b] < min_x) min_x = block_x[b];
        if (block_x[b] > max_x) max_x = block_x[b];
        if (block_y[b] < min_y) min_y = block_y[b];
        if (block_y[b] > max_y) max_y = block_y[b];
    }
    return (max_x - min_x) + (max_y - min_y);
}

int total_cost() {
    int cost = 0;
    int n;
    for (n = 0; n < NETS; n++) {
        net_cost_cache[n] = net_cost(n);
        cost += net_cost_cache[n];
    }
    return cost;
}

int nets_touching(int block, int* out) {
    int count = 0;
    int n;
    int p;
    for (n = 0; n < NETS && count < 64; n++) {
        for (p = 0; p < PINS; p++) {
            if (net_pins[n * PINS + p] == block) {
                out[count] = n;
                count++;
                break;
            }
        }
    }
    return count;
}

void swap_blocks(int a, int b) {
    int ax = block_x[a]; int ay = block_y[a];
    int bx = block_x[b]; int by = block_y[b];
    block_x[a] = bx; block_y[a] = by;
    block_x[b] = ax; block_y[b] = ay;
    cell_block[bx][by] = a;
    cell_block[ax][ay] = b;
}

int anneal() {
    int touched[64];
    int cost = total_cost();
    int temperature = GRID * 2;
    while (temperature > 0) {
        int m;
        for (m = 0; m < MOVES; m++) {
            int a = rng_next(BLOCKS);
            int b = rng_next(BLOCKS);
            if (a == b) continue;
            // Delta cost of the swap over affected nets only.
            int before = 0;
            int after = 0;
            int na = nets_touching(a, touched);
            int i;
            for (i = 0; i < na; i++) before += net_cost(touched[i]);
            swap_blocks(a, b);
            for (i = 0; i < na; i++) after += net_cost(touched[i]);
            int delta = after - before;
            int accept = 0;
            if (delta <= 0) accept = 1;
            else if (rng_next(1000) < 1000 / (1 + delta * 8 / (temperature + 1))) {
                accept = 1;
            }
            if (accept == 1) {
                cost += delta;
            } else {
                swap_blocks(a, b);   // undo
            }
        }
        checksum_add(cost);
        temperature = temperature * 3 / 4;
        if (temperature <= 1) temperature = 0;
    }
    return cost;
}

int main() {
    rng_seed(251ul);
    initial_placement();
    make_nets();
    int before = total_cost();
    int after = anneal();
    int verify = total_cost();
    checksum_add(verify);
    print_str("vpr cost "); print_int(before);
    print_str(" -> "); print_int(after);
    print_str(" verify="); print_int(verify);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@G@", str(grid)).replace("@N@", str(nets)) \
    .replace("@M@", str(moves_per_temp))
