"""197.parser: natural-language link parsing.

The original parses English against a link grammar with a word
dictionary.  This version generates deterministic sentences over a
synthetic vocabulary, looks words up in a chained hash dictionary,
tags them, and runs a chart-style connector-matching parse that counts
valid linkages — dictionary hashing plus nested parse loops, the
original's profile.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    vocabulary = 240
    sentences = scaled(90, scale)
    return (LCG + CHECKSUM + r"""
// Word classes (connector types).
int CLASS_DET = 0;
int CLASS_NOUN = 1;
int CLASS_VERB = 2;
int CLASS_ADJ = 3;
int CLASS_ADV = 4;
int CLASS_PREP = 5;

struct DictEntry {
    int word_id;
    int word_class;
    int frequency;
    struct DictEntry* next;
};

int VOCAB = @V@;
int SENTENCES = @S@;
int HASH_SIZE = 64;

struct DictEntry* dictionary[64];
int sentence[32];
int tags[32];
int chart[32][32];

int hash_word(int word_id) {
    int h = (word_id * 2654435) % HASH_SIZE;
    if (h < 0) h = h + HASH_SIZE;
    return h;
}

void dict_insert(int word_id, int word_class) {
    struct DictEntry* e =
        (struct DictEntry*) malloc(sizeof(struct DictEntry));
    e->word_id = word_id;
    e->word_class = word_class;
    e->frequency = 0;
    int h = hash_word(word_id);
    e->next = dictionary[h];
    dictionary[h] = e;
}

struct DictEntry* dict_lookup(int word_id) {
    struct DictEntry* e = dictionary[hash_word(word_id)];
    while (e != null) {
        if (e->word_id == word_id) return e;
        e = e->next;
    }
    return null;
}

void build_dictionary() {
    int w;
    for (w = 0; w < VOCAB; w++) {
        int cls = CLASS_NOUN;
        int r = w % 10;
        if (r < 2) cls = CLASS_DET;
        else if (r < 5) cls = CLASS_NOUN;
        else if (r < 7) cls = CLASS_VERB;
        else if (r < 8) cls = CLASS_ADJ;
        else if (r < 9) cls = CLASS_ADV;
        else cls = CLASS_PREP;
        dict_insert(w, cls);
    }
}

int make_sentence() {
    // Template: DET (ADJ)* NOUN VERB (ADV)? DET (ADJ)* NOUN (PREP ...)?
    int n = 0;
    int clauses = 1 + rng_next(3);
    int c;
    for (c = 0; c < clauses && n < 28; c++) {
        sentence[n] = rng_next(VOCAB / 10) * 10; n++;               // DET
        while (rng_next(100) < 30 && n < 28) {
            sentence[n] = rng_next(VOCAB / 10) * 10 + 7; n++;       // ADJ
        }
        sentence[n] = rng_next(VOCAB / 10) * 10 + 3; n++;           // NOUN
        sentence[n] = rng_next(VOCAB / 10) * 10 + 5; n++;           // VERB
        if (rng_next(100) < 25 && n < 28) {
            sentence[n] = rng_next(VOCAB / 10) * 10 + 8; n++;       // ADV
        }
        sentence[n] = rng_next(VOCAB / 10) * 10; n++;               // DET
        sentence[n] = rng_next(VOCAB / 10) * 10 + 3; n++;           // NOUN
        if (c + 1 < clauses && n < 28) {
            sentence[n] = rng_next(VOCAB / 10) * 10 + 9; n++;       // PREP
        }
    }
    return n;
}

int can_link(int left_class, int right_class) {
    if (left_class == CLASS_DET && right_class == CLASS_NOUN) return 1;
    if (left_class == CLASS_DET && right_class == CLASS_ADJ) return 1;
    if (left_class == CLASS_ADJ && right_class == CLASS_NOUN) return 1;
    if (left_class == CLASS_ADJ && right_class == CLASS_ADJ) return 1;
    if (left_class == CLASS_NOUN && right_class == CLASS_VERB) return 1;
    if (left_class == CLASS_VERB && right_class == CLASS_NOUN) return 1;
    if (left_class == CLASS_VERB && right_class == CLASS_ADV) return 1;
    if (left_class == CLASS_ADV && right_class == CLASS_DET) return 1;
    if (left_class == CLASS_VERB && right_class == CLASS_DET) return 1;
    if (left_class == CLASS_NOUN && right_class == CLASS_PREP) return 1;
    if (left_class == CLASS_PREP && right_class == CLASS_DET) return 1;
    return 0;
}

int parse_sentence(int n) {
    // CKY-flavoured chart: chart[i][j] = number of linkages spanning
    // [i, j), capped to keep arithmetic bounded.
    int i;
    int j;
    for (i = 0; i < n; i++) {
        struct DictEntry* e = dict_lookup(sentence[i]);
        if (e == null) {
            tags[i] = CLASS_NOUN;
        } else {
            tags[i] = e->word_class;
            e->frequency++;
        }
        for (j = 0; j <= n; j++) chart[i][j] = 0;
        chart[i][i + 1] = 1;
    }
    int span;
    for (span = 2; span <= n; span++) {
        for (i = 0; i + span <= n; i++) {
            int total = 0;
            int split;
            for (split = i + 1; split < i + span; split++) {
                int left = chart[i][split];
                int right = chart[split][i + span];
                if (left > 0 && right > 0) {
                    if (can_link(tags[split - 1], tags[split])) {
                        total += left * right;
                        if (total > 10000) total = 10000;
                    }
                }
            }
            chart[i][i + span] = total;
        }
    }
    return chart[0][n];
}

int main() {
    rng_seed(211ul);
    build_dictionary();
    int s;
    int parsed = 0;
    int linkages = 0;
    for (s = 0; s < SENTENCES; s++) {
        int n = make_sentence();
        int count = parse_sentence(n);
        if (count > 0) parsed++;
        linkages += count;
        checksum_add(count);
    }
    // Fold dictionary frequencies into the checksum (hash walk).
    int h;
    for (h = 0; h < HASH_SIZE; h++) {
        struct DictEntry* e = dictionary[h];
        while (e != null) {
            checksum_add(e->frequency);
            e = e->next;
        }
    }
    print_str("parser parsed="); print_int(parsed);
    print_str("/"); print_int(SENTENCES);
    print_str(" linkages="); print_int(linkages);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@V@", str(vocabulary)).replace("@S@", str(sentences))
