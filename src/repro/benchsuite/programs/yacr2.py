"""ptrdist-yacr2: VLSI channel routing.

Nets with left/right terminal columns are assigned to horizontal
tracks subject to (a) horizontal overlap constraints within a track and
(b) vertical constraints between nets sharing a column — the original's
greedy left-edge algorithm with constraint scanning over dense arrays.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    nets = min(scaled(260, scale), 1800)
    columns = min(scaled(160, scale), 1200)
    return (LCG + CHECKSUM + r"""
int NETS = @NETS@;
int COLS = @COLS@;

int net_left[2048];
int net_right[2048];
int net_track[2048];
int track_end[2048];          // rightmost occupied column per track
int top_terminal[1536];       // net id at the top of each column (or -1)
int bottom_terminal[1536];    // net id at the bottom of each column

void build_nets() {
    int i;
    for (i = 0; i < COLS; i++) {
        top_terminal[i] = 0 - 1;
        bottom_terminal[i] = 0 - 1;
    }
    for (i = 0; i < NETS; i++) {
        int a = rng_next(COLS);
        int span = 1 + rng_next(20);
        int b = a + span;
        if (b >= COLS) b = COLS - 1;
        if (a > b) { int t = a; a = b; b = t; }
        net_left[i] = a;
        net_right[i] = b;
        net_track[i] = 0 - 1;
        if (rng_next(2) == 0) {
            top_terminal[a] = i;
            bottom_terminal[b] = i;
        } else {
            bottom_terminal[a] = i;
            top_terminal[b] = i;
        }
    }
}

int vertical_conflict(int net, int track, int tracks_used) {
    // A net entering from the top of a column must sit above any net
    // leaving at the bottom of the same column.
    int c;
    for (c = net_left[net]; c <= net_right[net]; c++) {
        int top = top_terminal[c];
        int bottom = bottom_terminal[c];
        if (top >= 0 && top != net && net_track[top] >= 0) {
            if (net_track[top] >= track) return 1;
        }
        if (bottom >= 0 && bottom != net && net_track[bottom] >= 0) {
            if (net_track[bottom] <= track) return 1;
        }
    }
    return 0;
}

// Sort net ids by left edge (insertion sort over an index array).
int order[2048];

void sort_by_left_edge() {
    int i;
    for (i = 0; i < NETS; i++) order[i] = i;
    for (i = 1; i < NETS; i++) {
        int key = order[i];
        int j = i - 1;
        while (j >= 0 && net_left[order[j]] > net_left[key]) {
            order[j + 1] = order[j];
            j--;
        }
        order[j + 1] = key;
    }
}

int route() {
    int tracks_used = 0;
    int i;
    for (i = 0; i < NETS; i++) {
        int net = order[i];
        int placed = 0;
        int t;
        for (t = 0; t < tracks_used && placed == 0; t++) {
            if (track_end[t] < net_left[net]) {
                if (vertical_conflict(net, t, tracks_used) == 0) {
                    net_track[net] = t;
                    track_end[t] = net_right[net];
                    placed = 1;
                }
            }
        }
        if (placed == 0) {
            net_track[net] = tracks_used;
            track_end[tracks_used] = net_right[net];
            tracks_used++;
        }
    }
    return tracks_used;
}

int main() {
    rng_seed(59ul);
    build_nets();
    sort_by_left_edge();
    int tracks = route();
    int i;
    for (i = 0; i < NETS; i++) {
        checksum_add(net_track[i]);
    }
    print_str("yacr2 tracks="); print_int(tracks);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@NETS@", str(nets)).replace("@COLS@", str(columns))
