"""ptrdist-ft: minimum spanning tree over a sparse random graph.

The original uses Fibonacci heaps; this version keeps the same
pointer-structure flavour with a pairing-style lazy heap of linked
nodes (insert / extract-min / decrease-key by relink) driving Prim's
algorithm over an adjacency-list graph.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    vertices = min(scaled(220, scale), 1500)
    degree = 6
    return (LCG + CHECKSUM + r"""
struct Edge {
    int to;
    int weight;
    struct Edge* next;
};

struct HeapNode {
    int vertex;
    int key;
    struct HeapNode* next;
};

int V = @V@;
struct Edge* adjacency[2048];
int best_key[2048];
int in_tree[2048];

struct HeapNode* heap_head = null;

void heap_insert(int vertex, int key) {
    struct HeapNode* n = (struct HeapNode*) malloc(sizeof(struct HeapNode));
    n->vertex = vertex;
    n->key = key;
    n->next = heap_head;
    heap_head = n;
}

int heap_extract_min() {
    // Lazy heap: scan for the minimum live entry, unlink it.
    struct HeapNode* best = null;
    struct HeapNode* walk = heap_head;
    while (walk != null) {
        if (in_tree[walk->vertex] == 0) {
            if (best == null || walk->key < best->key) {
                if (walk->key == best_key[walk->vertex]) {
                    best = walk;
                }
            }
        }
        walk = walk->next;
    }
    if (best == null) return -1;
    return best->vertex;
}

void add_edge(int a, int b, int w) {
    struct Edge* e = (struct Edge*) malloc(sizeof(struct Edge));
    e->to = b;
    e->weight = w;
    e->next = adjacency[a];
    adjacency[a] = e;
}

void build_graph() {
    int i;
    int d;
    for (i = 0; i < V; i++) {
        adjacency[i] = null;
        best_key[i] = 1000000;
        in_tree[i] = 0;
    }
    for (i = 1; i < V; i++) {
        // Guarantee connectivity with a random back edge, then extras.
        int back = rng_next(i);
        int w = 1 + rng_next(97);
        add_edge(i, back, w);
        add_edge(back, i, w);
        for (d = 0; d < @DEGREE@ - 1; d++) {
            int other = rng_next(V);
            if (other != i) {
                int w2 = 1 + rng_next(97);
                add_edge(i, other, w2);
                add_edge(other, i, w2);
            }
        }
    }
}

int prim_mst() {
    int total = 0;
    best_key[0] = 0;
    heap_insert(0, 0);
    int remaining = V;
    while (remaining > 0) {
        int u = heap_extract_min();
        if (u < 0) break;
        in_tree[u] = 1;
        total += best_key[u];
        remaining--;
        struct Edge* e = adjacency[u];
        while (e != null) {
            if (in_tree[e->to] == 0 && e->weight < best_key[e->to]) {
                best_key[e->to] = e->weight;
                heap_insert(e->to, e->weight);   // decrease-key by relink
            }
            e = e->next;
        }
    }
    return total;
}

int main() {
    rng_seed(43ul);
    build_graph();
    int total = prim_mst();
    checksum_add(total);
    int i;
    for (i = 0; i < V; i++) {
        checksum_add(best_key[i]);
    }
    print_str("ft mst="); print_int(total);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@V@", str(vertices)).replace("@DEGREE@", str(degree))
