"""255.vortex: object-oriented in-memory database.

The original exercises an OO database: object creation, three indexed
"portions" (person / draw / emp databases), lookups, and integrity
traversals.  This version builds record objects with schema-tagged
fields, maintains a chained hash primary index plus an ordered
secondary index (skip-list-flavoured linked levels), and runs a
transaction mix of inserts / lookups / range scans / deletes with an
integrity check pass.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    transactions = scaled(900, scale)
    return (LCG + CHECKSUM + r"""
int TRANSACTIONS = @T@;
int HASH_SIZE = 256;

struct Record {
    int key;
    int kind;             // 0 = person, 1 = draw, 2 = emp
    int field_a;
    int field_b;
    double field_c;
    int alive;
    struct Record* hash_next;
    struct Record* ordered_next;
};

struct Record* hash_index[256];
struct Record* ordered_head = null;
int live_records = 0;
int total_inserts = 0;

int hash_key(int key) {
    int h = (key * 40503) % HASH_SIZE;
    if (h < 0) h = h + HASH_SIZE;
    return h;
}

struct Record* db_lookup(int key) {
    struct Record* r = hash_index[hash_key(key)];
    while (r != null) {
        if (r->key == key && r->alive == 1) return r;
        r = r->hash_next;
    }
    return null;
}

struct Record* db_insert(int key, int kind) {
    struct Record* existing = db_lookup(key);
    if (existing != null) return existing;
    struct Record* r = (struct Record*) malloc(sizeof(struct Record));
    r->key = key;
    r->kind = kind;
    r->field_a = rng_next(1000);
    r->field_b = rng_next(1000);
    r->field_c = (double) rng_next(10000) / 100.0;
    r->alive = 1;
    int h = hash_key(key);
    r->hash_next = hash_index[h];
    hash_index[h] = r;
    // Ordered index: insert by key into the sorted list.
    if (ordered_head == null || ordered_head->key >= key) {
        r->ordered_next = ordered_head;
        ordered_head = r;
    } else {
        struct Record* walk = ordered_head;
        while (walk->ordered_next != null
               && walk->ordered_next->key < key) {
            walk = walk->ordered_next;
        }
        r->ordered_next = walk->ordered_next;
        walk->ordered_next = r;
    }
    live_records++;
    total_inserts++;
    return r;
}

int db_delete(int key) {
    struct Record* r = db_lookup(key);
    if (r == null) return 0;
    r->alive = 0;       // tombstone, like vortex's delete
    live_records--;
    return 1;
}

int range_scan(int low, int high) {
    int aggregate = 0;
    struct Record* r = ordered_head;
    while (r != null && r->key <= high) {
        if (r->key >= low && r->alive == 1) {
            aggregate += r->field_a - r->field_b + r->kind;
        }
        r = r->ordered_next;
    }
    return aggregate;
}

int integrity_check() {
    // Every live ordered-index record must be hash-reachable, keys
    // ascending.
    int errors = 0;
    int last_key = -1;
    struct Record* r = ordered_head;
    int live_seen = 0;
    while (r != null) {
        if (r->key < last_key) errors++;
        last_key = r->key;
        if (r->alive == 1) {
            live_seen++;
            if (db_lookup(r->key) != r) errors++;
        }
        r = r->ordered_next;
    }
    if (live_seen != live_records) errors++;
    return errors;
}

int main() {
    rng_seed(337ul);
    int t;
    int lookups_hit = 0;
    int scans = 0;
    int deletes = 0;
    for (t = 0; t < TRANSACTIONS; t++) {
        int op = rng_next(100);
        if (op < 45) {
            int key = rng_next(4000);
            struct Record* r = db_insert(key, rng_next(3));
            checksum_add(r->field_a);
        } else if (op < 80) {
            struct Record* r = db_lookup(rng_next(4000));
            if (r != null) {
                lookups_hit++;
                r->field_b = (r->field_b + 17) % 1000;
            }
        } else if (op < 92) {
            int low = rng_next(3500);
            int aggregate = range_scan(low, low + 300);
            checksum_add(aggregate);
            scans++;
        } else {
            deletes += db_delete(rng_next(4000));
        }
        if (t % 200 == 199) {
            int errors = integrity_check();
            checksum_add(errors);
            if (errors > 0) {
                print_str("vortex INTEGRITY FAILURE\n");
            }
        }
    }
    checksum_add(live_records);
    checksum_add(lookups_hit);
    print_str("vortex live="); print_int(live_records);
    print_str(" inserts="); print_int(total_inserts);
    print_str(" hits="); print_int(lookups_hit);
    print_str(" deletes="); print_int(deletes);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@T@", str(transactions))
