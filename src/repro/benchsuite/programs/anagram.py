"""ptrdist-anagram: dictionary anagram search.

The original finds anagrams of a phrase against a dictionary using
letter-count signatures.  This version synthesizes a deterministic
dictionary of packed 5-letter words, builds 26-bucket letter-frequency
signatures, and counts signature-compatible word pairs — the same
hashing + bitmask + small-array access pattern.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    words = scaled(420, scale)
    queries = scaled(160, scale)
    return LCG + CHECKSUM + r"""
int WORDS = @WORDS@;
int QUERIES = @QUERIES@;

int dict_letters[16384];     // WORDS x 5 letters, flattened
int dict_mask[4096];         // letter bitmask per word
int dict_counts[4096];       // packed letter counts (5 x 5 bits)

int word_letter(int w, int i) {
    return dict_letters[w * 5 + i];
}

void make_word(int w) {
    int i;
    int mask = 0;
    int packed = 0;
    for (i = 0; i < 5; i++) {
        int letter = rng_next(26);
        dict_letters[w * 5 + i] = letter;
        mask = mask | (1 << (letter % 26));
        packed = packed + (1 << ((letter % 5) * 5));
    }
    dict_mask[w] = mask;
    dict_counts[w] = packed;
}

int signature_compatible(int a, int b) {
    // b's letters must be a subset of a's letter set.
    int need = dict_mask[b];
    if ((dict_mask[a] & need) != need) return 0;
    return 1;
}

int count_anagram_pairs(int query) {
    int hits = 0;
    int w;
    for (w = 0; w < WORDS; w++) {
        if (w == query) continue;
        if (signature_compatible(query, w)) {
            if (dict_counts[query] == dict_counts[w]) {
                hits++;
            }
        }
    }
    return hits;
}

int main() {
    rng_seed(17ul);
    int w;
    for (w = 0; w < WORDS; w++) {
        make_word(w);
    }
    int q;
    int total = 0;
    for (q = 0; q < QUERIES; q++) {
        int query = rng_next(WORDS);
        int hits = count_anagram_pairs(query);
        total = total + hits;
        checksum_add(hits);
    }
    print_str("anagram pairs="); print_int(total);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""".replace("@WORDS@", str(min(words, 3200))).replace("@QUERIES@", str(queries))
