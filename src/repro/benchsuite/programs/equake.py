"""183.equake: seismic wave propagation (sparse FP).

The original integrates a finite-element earthquake model.  This
version keeps its computational core: a sparse symmetric stiffness
matrix in CSR form, explicit time stepping of displacement/velocity
vectors, and an excitation source — sparse double-precision
matrix-vector products against irregular index arrays.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    grid = min(scaled(22, scale), 64)          # grid x grid nodes
    steps = scaled(36, scale)
    return (LCG + CHECKSUM + r"""
int GRID = @G@;
int NODES = @G@ * @G@;
int STEPS = @S@;

// CSR sparse matrix: 5-point stencil => at most 5 entries per row.
int row_start[4160];
int col_index[20800];
double matrix_value[20800];
int nnz = 0;

double displacement[4160];
double velocity[4160];
double acceleration[4160];
double force[4160];

void add_entry(int column, double value) {
    col_index[nnz] = column;
    matrix_value[nnz] = value;
    nnz++;
}

void assemble() {
    int r;
    int c;
    for (r = 0; r < GRID; r++) {
        for (c = 0; c < GRID; c++) {
            int node = r * GRID + c;
            row_start[node] = nnz;
            double stiffness = 2.0 + (double) rng_next(100) / 100.0;
            add_entry(node, 4.0 * stiffness);
            if (r > 0)        add_entry(node - GRID, 0.0 - stiffness);
            if (r < GRID - 1) add_entry(node + GRID, 0.0 - stiffness);
            if (c > 0)        add_entry(node - 1, 0.0 - stiffness);
            if (c < GRID - 1) add_entry(node + 1, 0.0 - stiffness);
        }
    }
    row_start[NODES] = nnz;
}

void spmv(double* y, double* x) {
    int node;
    for (node = 0; node < NODES; node++) {
        double sum = 0.0;
        int k;
        for (k = row_start[node]; k < row_start[node + 1]; k++) {
            sum = sum + matrix_value[k] * x[col_index[k]];
        }
        y[node] = sum;
    }
}

void time_step(int step) {
    double dt = 0.004;
    int source = (GRID / 2) * GRID + GRID / 2;
    spmv(acceleration, displacement);
    int node;
    for (node = 0; node < NODES; node++) {
        double f = 0.0 - acceleration[node] - 0.12 * velocity[node];
        if (node == source && step < 10) {
            f = f + 50.0;   // excitation pulse
        }
        force[node] = f;
        velocity[node] = velocity[node] + dt * f;
        displacement[node] = displacement[node] + dt * velocity[node];
    }
}

double energy() {
    double total = 0.0;
    int node;
    for (node = 0; node < NODES; node++) {
        total = total + velocity[node] * velocity[node]
              + displacement[node] * displacement[node];
    }
    return total;
}

int main() {
    rng_seed(131ul);
    assemble();
    int step;
    for (step = 0; step < STEPS; step++) {
        time_step(step);
        if (step % 8 == 0) {
            checksum_add((int) (energy() * 100000.0));
        }
    }
    double final_energy = energy();
    checksum_add((int) (final_energy * 100000.0));
    print_str("equake energy="); print_double(final_energy);
    print_str(" nnz="); print_int(nnz);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@G@", str(grid)).replace("@S@", str(steps))
