"""179.art: Adaptive Resonance Theory neural network (FP-heavy).

The original runs an ART-2 image recognizer.  This version trains the
same style of network: an F1/F2 two-layer net with bottom-up and
top-down weight matrices, winner-take-all competition, vigilance reset,
and weight adaptation — dense double-precision array math throughout.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    inputs = min(scaled(48, scale), 256)
    features = 64
    categories = 24
    epochs = scaled(4, scale)
    return (LCG + CHECKSUM + r"""
int FEATURES = @F@;
int CATEGORIES = @C@;
int INPUTS = @I@;
int EPOCHS = @E@;

double bottom_up[64][24];
double top_down[24][64];
double f1_activation[64];
double f2_activation[24];
double patterns[256][64];
int assignments[256];

double vigilance = 0.62;
double learning_rate = 0.45;

void init_network() {
    int i;
    int j;
    for (i = 0; i < FEATURES; i++) {
        for (j = 0; j < CATEGORIES; j++) {
            bottom_up[i][j] = 1.0 / (1.0 + (double) FEATURES);
            top_down[j][i] = 1.0;
        }
    }
}

void make_patterns() {
    int p;
    int i;
    for (p = 0; p < INPUTS; p++) {
        int archetype = rng_next(8);
        for (i = 0; i < FEATURES; i++) {
            int on = 0;
            if ((i * 8 / FEATURES) == archetype) on = 1;
            if (rng_next(100) < 10) on = 1 - on;   // noise
            patterns[p][i] = (double) on;
        }
    }
}

double norm1(double* v, int n) {
    double s = 0.0;
    int i;
    for (i = 0; i < n; i++) s = s + v[i];
    return s;
}

int compete(int p) {
    int j;
    int best = -1;
    double best_score = -1.0;
    for (j = 0; j < CATEGORIES; j++) {
        double score = 0.0;
        int i;
        for (i = 0; i < FEATURES; i++) {
            score = score + patterns[p][i] * bottom_up[i][j];
        }
        f2_activation[j] = score;
        if (score > best_score) {
            best_score = score;
            best = j;
        }
    }
    return best;
}

int resonates(int p, int winner) {
    int i;
    double match = 0.0;
    double total = 0.0;
    for (i = 0; i < FEATURES; i++) {
        double masked = patterns[p][i] * top_down[winner][i];
        f1_activation[i] = masked;
        match = match + masked;
        total = total + patterns[p][i];
    }
    if (total == 0.0) return 1;
    if (match / total >= vigilance) return 1;
    return 0;
}

void adapt(int p, int winner) {
    int i;
    double norm = norm1(f1_activation, FEATURES);
    for (i = 0; i < FEATURES; i++) {
        double target = f1_activation[i];
        top_down[winner][i] = (1.0 - learning_rate) * top_down[winner][i]
                            + learning_rate * target;
        double denominator = 0.5 + norm;
        bottom_up[i][winner] = (1.0 - learning_rate) * bottom_up[i][winner]
                             + learning_rate * (target / denominator);
    }
}

int classify(int p) {
    int tried[24];
    int j;
    for (j = 0; j < CATEGORIES; j++) tried[j] = 0;
    int round;
    for (round = 0; round < CATEGORIES; round++) {
        int winner = -1;
        double best_score = -1.0;
        for (j = 0; j < CATEGORIES; j++) {
            if (tried[j] == 0 && f2_activation[j] >= 0.0) {
                double score = 0.0;
                int i;
                for (i = 0; i < FEATURES; i++) {
                    score = score + patterns[p][i] * bottom_up[i][j];
                }
                if (score > best_score) {
                    best_score = score;
                    winner = j;
                }
            }
        }
        if (winner < 0) return CATEGORIES - 1;
        if (resonates(p, winner)) {
            adapt(p, winner);
            return winner;
        }
        tried[winner] = 1;   // vigilance reset: exclude and re-compete
    }
    return CATEGORIES - 1;
}

int main() {
    rng_seed(101ul);
    init_network();
    make_patterns();
    int e;
    int p;
    int moves = 0;
    for (e = 0; e < EPOCHS; e++) {
        for (p = 0; p < INPUTS; p++) {
            compete(p);
            int category = classify(p);
            if (e > 0 && assignments[p] != category) moves++;
            assignments[p] = category;
        }
    }
    for (p = 0; p < INPUTS; p++) checksum_add(assignments[p]);
    double weight_mass = 0.0;
    int i;
    int j;
    for (i = 0; i < FEATURES; i++) {
        for (j = 0; j < CATEGORIES; j++) {
            weight_mass = weight_mass + bottom_up[i][j];
        }
    }
    checksum_add((int) (weight_mass * 1000.0));
    print_str("art moves="); print_int(moves);
    print_str(" mass="); print_double(weight_mass);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@F@", str(features)).replace("@C@", str(categories)) \
    .replace("@I@", str(inputs)).replace("@E@", str(epochs))
