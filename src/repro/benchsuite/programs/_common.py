"""Shared MiniC snippets for the workload generators."""

#: Deterministic LCG so every engine sees identical inputs.
LCG = r"""
ulong rng_state = 88172645463325252ul;

int rng_next(int bound) {
    rng_state = rng_state * 6364136223846793005ul + 1442695040888963407ul;
    ulong x = rng_state >> 33;
    return (int)(x % (ulong)bound);
}

void rng_seed(ulong s) {
    rng_state = s + 1ul;
}
"""

CHECKSUM = r"""
int checksum_state = 0;

void checksum_add(int v) {
    checksum_state = checksum_state * 31 + v;
}
"""


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale a workload size parameter, clamped below."""
    return max(int(value * scale), minimum)
