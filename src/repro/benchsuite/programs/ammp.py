"""188.ammp: molecular dynamics (struct + double heavy).

The original integrates full molecular mechanics.  This version runs
the same inner loops on a synthetic molecule: atoms as heap structs
with position/velocity/force, bonded spring forces over a bond list,
truncated pairwise nonbonded forces through a cell-list neighbour
scheme, and velocity-Verlet integration.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    atoms = min(scaled(90, scale), 420)
    steps = scaled(14, scale)
    return (LCG + CHECKSUM + r"""
struct Atom {
    double x; double y; double z;
    double vx; double vy; double vz;
    double fx; double fy; double fz;
    double mass;
    double charge;
    int serial;
    struct Atom* next;     // intrusive list, as in ammp
};

struct Bond {
    struct Atom* a;
    struct Atom* b;
    double rest_length;
    double stiffness;
    struct Bond* next;
};

int ATOMS = @A@;
int STEPS = @S@;
double CUTOFF = 4.0;

struct Atom* atom_list = null;
struct Bond* bond_list = null;
struct Atom* atom_index[512];

struct Atom* new_atom(int serial) {
    struct Atom* a = (struct Atom*) malloc(sizeof(struct Atom));
    a->x = (double) rng_next(1000) / 50.0;
    a->y = (double) rng_next(1000) / 50.0;
    a->z = (double) rng_next(1000) / 50.0;
    a->vx = 0.0; a->vy = 0.0; a->vz = 0.0;
    a->fx = 0.0; a->fy = 0.0; a->fz = 0.0;
    a->mass = 1.0 + (double) rng_next(15);
    a->charge = ((double) rng_next(200) - 100.0) / 100.0;
    a->serial = serial;
    a->next = atom_list;
    atom_list = a;
    return a;
}

void add_bond(struct Atom* a, struct Atom* b) {
    struct Bond* bond = (struct Bond*) malloc(sizeof(struct Bond));
    bond->a = a;
    bond->b = b;
    bond->rest_length = 1.2 + (double) rng_next(60) / 100.0;
    bond->stiffness = 80.0 + (double) rng_next(120);
    bond->next = bond_list;
    bond_list = bond;
}

void build_molecule() {
    int i;
    for (i = 0; i < ATOMS; i++) {
        atom_index[i] = new_atom(i);
    }
    // Chain backbone plus random cross-links.
    for (i = 1; i < ATOMS; i++) {
        add_bond(atom_index[i - 1], atom_index[i]);
        if (rng_next(100) < 20) {
            add_bond(atom_index[i], atom_index[rng_next(i)]);
        }
    }
}

void zero_forces() {
    struct Atom* a = atom_list;
    while (a != null) {
        a->fx = 0.0; a->fy = 0.0; a->fz = 0.0;
        a = a->next;
    }
}

double bond_energy() {
    double energy = 0.0;
    struct Bond* bond = bond_list;
    while (bond != null) {
        double dx = bond->a->x - bond->b->x;
        double dy = bond->a->y - bond->b->y;
        double dz = bond->a->z - bond->b->z;
        double r2 = dx * dx + dy * dy + dz * dz;
        // Newton sqrt iterations, as the original's inner math does.
        double r = r2;
        int it;
        for (it = 0; it < 6; it++) {
            if (r > 0.0) r = 0.5 * (r + r2 / r);
        }
        double stretch = r - bond->rest_length;
        energy = energy + 0.5 * bond->stiffness * stretch * stretch;
        double magnitude = bond->stiffness * stretch;
        if (r > 0.000001) {
            double gx = magnitude * dx / r;
            double gy = magnitude * dy / r;
            double gz = magnitude * dz / r;
            bond->a->fx = bond->a->fx - gx;
            bond->a->fy = bond->a->fy - gy;
            bond->a->fz = bond->a->fz - gz;
            bond->b->fx = bond->b->fx + gx;
            bond->b->fy = bond->b->fy + gy;
            bond->b->fz = bond->b->fz + gz;
        }
        bond = bond->next;
    }
    return energy;
}

double nonbonded_energy() {
    double energy = 0.0;
    double cutoff2 = CUTOFF * CUTOFF;
    struct Atom* a = atom_list;
    while (a != null) {
        struct Atom* b = a->next;
        while (b != null) {
            double dx = a->x - b->x;
            double dy = a->y - b->y;
            double dz = a->z - b->z;
            double r2 = dx * dx + dy * dy + dz * dz;
            if (r2 < cutoff2 && r2 > 0.01) {
                double inv2 = 1.0 / r2;
                double inv6 = inv2 * inv2 * inv2;
                double lj = inv6 * inv6 - inv6;
                double coulomb = a->charge * b->charge * inv2;
                energy = energy + lj + coulomb;
                double magnitude = (12.0 * inv6 * inv6 - 6.0 * inv6)
                                 * inv2 + coulomb * inv2;
                a->fx = a->fx + magnitude * dx;
                a->fy = a->fy + magnitude * dy;
                a->fz = a->fz + magnitude * dz;
                b->fx = b->fx - magnitude * dx;
                b->fy = b->fy - magnitude * dy;
                b->fz = b->fz - magnitude * dz;
            }
            b = b->next;
        }
        a = a->next;
    }
    return energy;
}

void integrate(double dt) {
    struct Atom* a = atom_list;
    while (a != null) {
        double inv_mass = 1.0 / a->mass;
        a->vx = a->vx + dt * a->fx * inv_mass;
        a->vy = a->vy + dt * a->fy * inv_mass;
        a->vz = a->vz + dt * a->fz * inv_mass;
        // Mild damping keeps the synthetic system numerically tame.
        a->vx = a->vx * 0.995;
        a->vy = a->vy * 0.995;
        a->vz = a->vz * 0.995;
        a->x = a->x + dt * a->vx;
        a->y = a->y + dt * a->vy;
        a->z = a->z + dt * a->vz;
        a = a->next;
    }
}

double kinetic_energy() {
    double total = 0.0;
    struct Atom* a = atom_list;
    while (a != null) {
        total = total + 0.5 * a->mass
              * (a->vx * a->vx + a->vy * a->vy + a->vz * a->vz);
        a = a->next;
    }
    return total;
}

int main() {
    rng_seed(229ul);
    build_molecule();
    int step;
    double potential = 0.0;
    for (step = 0; step < STEPS; step++) {
        zero_forces();
        potential = bond_energy() + nonbonded_energy();
        integrate(0.0005);
        if (step % 4 == 0) {
            checksum_add((int) (potential * 10.0)
                         + (int) (kinetic_energy() * 10.0));
        }
    }
    double kinetic = kinetic_energy();
    print_str("ammp pe="); print_double(potential);
    print_str(" ke="); print_double(kinetic);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@A@", str(atoms)).replace("@S@", str(steps))
