"""181.mcf: minimum-cost flow (pointer-chasing network code).

The original runs network simplex for vehicle scheduling.  This version
solves min-cost max-flow on a random layered network with successive
shortest paths (Bellman-Ford over adjacency lists with residual arcs)
— the same irregular pointer-walk profile over arc structures.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    layer_width = min(scaled(14, scale), 48)
    layers = 5
    rounds = scaled(10, scale)
    return (LCG + CHECKSUM + r"""
struct Arc {
    int to;
    int capacity;
    int cost;
    int flow;
    struct Arc* reverse;
    struct Arc* next;
};

int WIDTH = @W@;
int LAYERS = @L@;
int ROUNDS = @R@;

struct Arc* adjacency[256];
int node_count = 0;

int distance_to[256];
struct Arc* parent_arc[256];

struct Arc* add_arc(int from, int to, int capacity, int cost) {
    struct Arc* forward = (struct Arc*) malloc(sizeof(struct Arc));
    struct Arc* backward = (struct Arc*) malloc(sizeof(struct Arc));
    forward->to = to;        forward->capacity = capacity;
    forward->cost = cost;    forward->flow = 0;
    forward->reverse = backward;
    forward->next = adjacency[from];
    adjacency[from] = forward;
    backward->to = from;     backward->capacity = 0;
    backward->cost = 0 - cost; backward->flow = 0;
    backward->reverse = forward;
    backward->next = adjacency[to];
    adjacency[to] = backward;
    return forward;
}

void build_network() {
    // Node 0 = source, last = sink; LAYERS layers of WIDTH nodes.
    node_count = LAYERS * WIDTH + 2;
    int sink = node_count - 1;
    int i;
    for (i = 0; i < WIDTH; i++) {
        add_arc(0, 1 + i, 2 + rng_next(4), 1 + rng_next(8));
    }
    int layer;
    for (layer = 0; layer + 1 < LAYERS; layer++) {
        int a;
        for (a = 0; a < WIDTH; a++) {
            int from = 1 + layer * WIDTH + a;
            int fanout = 2 + rng_next(3);
            int f;
            for (f = 0; f < fanout; f++) {
                int b = rng_next(WIDTH);
                add_arc(from, 1 + (layer + 1) * WIDTH + b,
                        1 + rng_next(5), 1 + rng_next(12));
            }
        }
    }
    for (i = 0; i < WIDTH; i++) {
        add_arc(1 + (LAYERS - 1) * WIDTH + i, sink,
                2 + rng_next(4), 1 + rng_next(8));
    }
}

int find_augmenting_path() {
    // Bellman-Ford on residual costs.
    int INF = 1000000000;
    int i;
    for (i = 0; i < node_count; i++) {
        distance_to[i] = INF;
        parent_arc[i] = null;
    }
    distance_to[0] = 0;
    int changed = 1;
    int pass = 0;
    while (changed == 1 && pass < node_count) {
        changed = 0;
        pass++;
        for (i = 0; i < node_count; i++) {
            if (distance_to[i] == INF) continue;
            struct Arc* arc = adjacency[i];
            while (arc != null) {
                if (arc->capacity - arc->flow > 0) {
                    int candidate = distance_to[i] + arc->cost;
                    if (candidate < distance_to[arc->to]) {
                        distance_to[arc->to] = candidate;
                        parent_arc[arc->to] = arc;
                        changed = 1;
                    }
                }
                arc = arc->next;
            }
        }
    }
    if (distance_to[node_count - 1] == INF) return 0;
    return 1;
}

int push_along_path() {
    int sink = node_count - 1;
    // Find the bottleneck.
    int bottleneck = 1000000000;
    int node = sink;
    while (node != 0) {
        struct Arc* arc = parent_arc[node];
        int residual = arc->capacity - arc->flow;
        if (residual < bottleneck) bottleneck = residual;
        node = arc->reverse->to;
    }
    // Apply it.
    int cost = 0;
    node = sink;
    while (node != 0) {
        struct Arc* arc = parent_arc[node];
        arc->flow += bottleneck;
        arc->reverse->flow -= bottleneck;
        cost += bottleneck * arc->cost;
        node = arc->reverse->to;
    }
    checksum_add(bottleneck);
    return cost;
}

int main() {
    rng_seed(151ul);
    int total_flow_cost = 0;
    int round;
    for (round = 0; round < ROUNDS; round++) {
        int n;
        for (n = 0; n < 256; n++) adjacency[n] = null;
        rng_seed((ulong) (151 + round));
        build_network();
        int pushed = 0;
        while (find_augmenting_path() == 1) {
            total_flow_cost += push_along_path();
            pushed++;
        }
        checksum_add(pushed);
    }
    print_str("mcf cost="); print_int(total_flow_cost);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@W@", str(layer_width)).replace("@L@", str(layers)) \
    .replace("@R@", str(rounds))
