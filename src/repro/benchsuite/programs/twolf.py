"""300.twolf: standard-cell placement and global routing.

Row-based standard-cell placement: cells with widths sit in rows; the
optimizer anneals cell swaps and inter-row moves against a cost with
wirelength *and* row-overflow penalty terms, then a greedy channel
assignment routes the nets — the original's two phases at simulator
scale.
"""

from repro.benchsuite.programs._common import CHECKSUM, LCG, scaled


def source(scale: float = 1.0) -> str:
    cells = min(scaled(130, scale), 800)
    rows = 8
    nets = min(scaled(180, scale), 1400)
    iterations = scaled(550, scale)
    return (LCG + CHECKSUM + r"""
int CELLS = @C@;
int ROWS = @R@;
int NETS = @N@;
int ITERATIONS = @I@;
int ROW_CAPACITY = 0;

int cell_width[1024];
int cell_row[1024];
int cell_offset[1024];
int row_usage[8];
int net_a[2048];
int net_b[2048];
int channel_load[8];

void build_cells() {
    int c;
    int total_width = 0;
    for (c = 0; c < CELLS; c++) {
        cell_width[c] = 2 + rng_next(7);
        total_width += cell_width[c];
    }
    ROW_CAPACITY = total_width / ROWS + 12;
    int r;
    for (r = 0; r < ROWS; r++) row_usage[r] = 0;
    for (c = 0; c < CELLS; c++) {
        int row = rng_next(ROWS);
        cell_row[c] = row;
        cell_offset[c] = row_usage[row];
        row_usage[row] += cell_width[c];
    }
}

void build_nets() {
    int n;
    for (n = 0; n < NETS; n++) {
        net_a[n] = rng_next(CELLS);
        net_b[n] = rng_next(CELLS);
    }
}

int wire_cost(int n) {
    int a = net_a[n];
    int b = net_b[n];
    int dx = cell_offset[a] - cell_offset[b];
    if (dx < 0) dx = 0 - dx;
    int dy = cell_row[a] - cell_row[b];
    if (dy < 0) dy = 0 - dy;
    return dx + dy * 10;     // crossing rows is expensive
}

int overflow_penalty() {
    int penalty = 0;
    int r;
    for (r = 0; r < ROWS; r++) {
        if (row_usage[r] > ROW_CAPACITY) {
            penalty += (row_usage[r] - ROW_CAPACITY) * 25;
        }
    }
    return penalty;
}

int total_cost() {
    int cost = overflow_penalty();
    int n;
    for (n = 0; n < NETS; n++) cost += wire_cost(n);
    return cost;
}

void move_cell(int c, int row, int offset) {
    row_usage[cell_row[c]] -= cell_width[c];
    cell_row[c] = row;
    cell_offset[c] = offset;
    row_usage[row] += cell_width[c];
}

int anneal() {
    int cost = total_cost();
    int temperature = 40;
    int iteration = 0;
    while (iteration < ITERATIONS) {
        int c = rng_next(CELLS);
        int old_row = cell_row[c];
        int old_offset = cell_offset[c];
        int new_row = rng_next(ROWS);
        int new_offset = rng_next(ROW_CAPACITY);
        int before = total_cost();
        move_cell(c, new_row, new_offset);
        int after = total_cost();
        int delta = after - before;
        int accept = 0;
        if (delta <= 0) accept = 1;
        else if (temperature > 0
                 && rng_next(100) < 50 / (1 + delta / (temperature + 1))) {
            accept = 1;
        }
        if (accept == 0) {
            move_cell(c, old_row, old_offset);
        } else {
            cost = after;
        }
        iteration++;
        if (iteration % 300 == 0) {
            temperature = temperature * 4 / 5;
            checksum_add(cost);
        }
    }
    return cost;
}

int route() {
    // Greedy channel assignment: each inter-row net takes the least
    // loaded channel between its rows.
    int r;
    for (r = 0; r < ROWS; r++) channel_load[r] = 0;
    int congestion = 0;
    int n;
    for (n = 0; n < NETS; n++) {
        int lo = cell_row[net_a[n]];
        int hi = cell_row[net_b[n]];
        if (lo > hi) { int t = lo; lo = hi; hi = t; }
        int best = lo;
        int best_load = 1000000;
        for (r = lo; r < hi; r++) {
            if (channel_load[r] < best_load) {
                best_load = channel_load[r];
                best = r;
            }
        }
        if (hi > lo) {
            channel_load[best] += 1;
            if (channel_load[best] > NETS / ROWS) congestion++;
        }
    }
    return congestion;
}

int main() {
    rng_seed(271ul);
    build_cells();
    build_nets();
    int before = total_cost();
    int after = anneal();
    int congestion = route();
    checksum_add(after);
    checksum_add(congestion);
    print_str("twolf cost "); print_int(before);
    print_str(" -> "); print_int(after);
    print_str(" congestion="); print_int(congestion);
    print_str(" checksum="); print_int(checksum_state);
    print_newline();
    return checksum_state & 32767;
}
""").replace("@C@", str(cells)).replace("@R@", str(rows)) \
    .replace("@N@", str(nets)).replace("@I@", str(iterations))
