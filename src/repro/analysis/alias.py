"""Alias analysis over LLVA pointers.

Section 3.3: "the type, control-flow, and SSA information enable
sophisticated alias analysis algorithms in the translator" — this is the
paper's answer to the load/store-dependence problem that plagued DAISY
and Crusoe.  Two cooperating analyses are provided:

* **Basic AA** — tracks pointers to their underlying objects through
  ``getelementptr`` and pointer casts: distinct stack/heap/global objects
  never alias; geps off the same base with different constant leading
  indices never alias.

* **Type-based AA** — exploits LLVA's typed loads/stores: accesses
  through pointers to differently-sized primitives cannot alias unless
  one of the pointers was manufactured by a non-pointer cast (the escape
  hatch non-type-safe code uses).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ir import instructions as insts
from repro.ir import types
from repro.ir.module import Function, GlobalVariable
from repro.ir.values import Argument, Constant, ConstantNull, Value


class AliasResult:
    NO_ALIAS = "no"
    MAY_ALIAS = "may"
    MUST_ALIAS = "must"


def underlying_object(pointer: Value, max_depth: int = 32) -> Value:
    """Trace *pointer* through geps and pointer-to-pointer casts to the
    object that produced it (an alloca, global, argument, call, ...)."""
    current = pointer
    for _ in range(max_depth):
        if isinstance(current, insts.GetElementPtrInst):
            current = current.pointer
        elif isinstance(current, insts.CastInst) and current.is_noop:
            current = current.value
        else:
            return current
    return current


def _is_identified_object(value: Value) -> bool:
    """Objects with a unique, known allocation site."""
    if isinstance(value, insts.AllocaInst):
        return True
    if isinstance(value, GlobalVariable):
        return True
    if isinstance(value, insts.CallInst):
        callee = value.callee
        return isinstance(callee, Function) and callee.name == "malloc"
    return False


class AliasAnalysis:
    """Combined basic + type-based alias analysis."""

    def __init__(self, use_tbaa: bool = True):
        self.use_tbaa = use_tbaa

    def alias(self, a: Value, b: Value) -> str:
        """Classify the relationship of two pointer values."""
        if a is b:
            return AliasResult.MUST_ALIAS
        if isinstance(a, ConstantNull) or isinstance(b, ConstantNull):
            return AliasResult.NO_ALIAS

        base_a = underlying_object(a)
        base_b = underlying_object(b)

        if base_a is not base_b:
            if _is_identified_object(base_a) and _is_identified_object(base_b):
                return AliasResult.NO_ALIAS
            # An identified local object cannot alias a pointer that came
            # in from outside the function (argument or load), unless its
            # address escaped — conservatively require non-escaping.
            for local, other in ((base_a, base_b), (base_b, base_a)):
                if isinstance(local, insts.AllocaInst) \
                        and isinstance(other, (Argument, insts.LoadInst)) \
                        and not _address_escapes(local):
                    return AliasResult.NO_ALIAS
        else:
            result = self._same_base_geps(a, b)
            if result is not None:
                return result

        if self.use_tbaa:
            result = self._type_based(a, b)
            if result is not None:
                return result
        return AliasResult.MAY_ALIAS

    # -- helpers -----------------------------------------------------------

    def _same_base_geps(self, a: Value, b: Value) -> Optional[str]:
        """Compare two pointers derived from the same underlying object
        by computing their constant byte offsets under both V-ABI
        layouts; byte-disjoint access intervals cannot alias."""
        verdict: Optional[str] = None
        for layout in (types.TARGET_32_LE, types.TARGET_64_LE):
            offset_a = _constant_offset(a, layout)
            offset_b = _constant_offset(b, layout)
            if offset_a is None or offset_b is None:
                return None
            size_a = _access_size(a, layout)
            size_b = _access_size(b, layout)
            if size_a is None or size_b is None:
                return None
            disjoint = (offset_a + size_a <= offset_b
                        or offset_b + size_b <= offset_a)
            exact = offset_a == offset_b and size_a == size_b
            if disjoint:
                step = AliasResult.NO_ALIAS
            elif exact:
                step = AliasResult.MUST_ALIAS
            else:
                return None
            if verdict is None:
                verdict = step
            elif verdict != step:
                return None  # layouts disagree: stay conservative
        return verdict

    def _type_based(self, a: Value, b: Value) -> Optional[str]:
        if _was_cast_from_non_pointer(a) or _was_cast_from_non_pointer(b):
            return None
        pointee_a = a.type.pointee if a.type.is_pointer else None
        pointee_b = b.type.pointee if b.type.is_pointer else None
        if pointee_a is None or pointee_b is None:
            return None
        if not (pointee_a.is_scalar and pointee_b.is_scalar):
            return None
        if pointee_a is pointee_b:
            return None
        # Distinctly-typed scalar accesses: LLVA's typed memory rules say
        # type-safe code never overlays them.
        return AliasResult.NO_ALIAS


def _constant_offset(pointer: Value,
                     layout: types.TargetData) -> Optional[int]:
    """Byte offset of *pointer* from its underlying object, if every gep
    step on the way is constant and no cast intervenes."""
    offset = 0
    current = pointer
    for _ in range(32):
        if isinstance(current, insts.GetElementPtrInst):
            indices = current.constant_indices()
            if indices is None:
                return None
            pointee = current.pointer.type.pointee
            offset += layout.gep_offset(pointee, list(indices))
            current = current.pointer
        elif isinstance(current, insts.CastInst):
            return None
        else:
            return offset
    return None


def _access_size(pointer: Value,
                 layout: types.TargetData) -> Optional[int]:
    pointee = pointer.type.pointee if pointer.type.is_pointer else None
    if pointee is None:
        return None
    try:
        return layout.size_of(pointee)
    except types.LlvaTypeError:
        return None


def _was_cast_from_non_pointer(pointer: Value) -> bool:
    current = pointer
    for _ in range(32):
        if isinstance(current, insts.GetElementPtrInst):
            current = current.pointer
        elif isinstance(current, insts.CastInst):
            if not current.value.type.is_pointer:
                return True
            current = current.value
        else:
            return False
    return True  # too deep: be conservative


def _address_escapes(alloca: insts.AllocaInst) -> bool:
    """Does the alloca's address flow somewhere we cannot see?

    Follows gep/cast derivations; an address escapes if it is stored,
    passed to a call/invoke, returned, or compared (pointer identity can
    be laundered through comparisons only in contrived code, but stay
    safe).
    """
    worklist = [alloca]
    seen = set()
    while worklist:
        value = worklist.pop()
        if id(value) in seen:
            continue
        seen.add(id(value))
        for user in value.users():
            if isinstance(user, (insts.GetElementPtrInst, insts.CastInst)):
                worklist.append(user)
            elif isinstance(user, insts.LoadInst):
                continue
            elif isinstance(user, insts.StoreInst):
                if user.value is value:
                    return True  # the address itself is stored
            elif isinstance(user, (insts.CallInst, insts.InvokeInst,
                                   insts.RetInst, insts.PhiInst,
                                   insts.CompareInst)):
                return True
            else:
                return True
    return False
