"""Program analyses over LLVA IR: liveness, loops, alias analysis, call
graphs, and (simplified) Data Structure Analysis — the capabilities
Section 5.1 uses to argue the V-ISA supports "sophisticated program
analysis and transformations"."""

from repro.analysis.alias import AliasAnalysis, AliasResult, underlying_object
from repro.analysis.callgraph import CallGraph
from repro.analysis.dsa import DSGraph, DSNode, ModuleDSA
from repro.analysis.liveness import LivenessInfo
from repro.analysis.loops import Loop, LoopInfo

__all__ = [
    "AliasAnalysis",
    "AliasResult",
    "underlying_object",
    "CallGraph",
    "DSGraph",
    "DSNode",
    "ModuleDSA",
    "LivenessInfo",
    "Loop",
    "LoopInfo",
]
