"""Natural-loop detection from the explicit CFG.

The paper's runtime-optimization strategy uses the CFG "to perform path
profiling within frequently executed loop regions while avoiding
interpretation" (Section 4.2); loop structure also drives LICM and the
software trace cache's region selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.ir import instructions as insts
from repro.ir.cfg import DominatorTree
from repro.ir.module import BasicBlock, Function
from repro.ir.values import ConstantInt, Value


@dataclass
class InductionVariable:
    """A counted loop's induction variable: ``i = phi(init, i + stride)``.

    *phi* lives in the loop header; *init* is the loop-invariant value it
    takes on entry; *step* is the in-loop ``add`` that advances it by the
    constant *stride* each iteration.
    """

    phi: insts.PhiInst
    init: Value
    step: insts.Instruction
    stride: int


@dataclass
class TripCount:
    """A counted loop's symbolic trip structure.

    The loop runs while ``relation(iv, bound)`` holds, where *bound* is
    loop-invariant and *compare* is the header comparison feeding the
    header's conditional branch (true edge enters the loop, false edge
    exits).  ``constant_trips()`` folds the count when everything is
    constant — useful to unrolling heuristics; the autovectorizer only
    needs the symbolic form.
    """

    induction: InductionVariable
    bound: Value
    compare: insts.CompareInst
    relation: str

    def constant_trips(self) -> Optional[int]:
        init = self.induction.init
        if not isinstance(init, ConstantInt) \
                or not isinstance(self.bound, ConstantInt):
            return None
        start, stop = init.value, self.bound.value
        stride = self.induction.stride
        if self.relation == "lt" and stride > 0:
            if stop <= start:
                return 0
            return -(-(stop - start) // stride)
        if self.relation == "gt" and stride < 0:
            if stop >= start:
                return 0
            return -(-(start - stop) // -stride)
        return None


class Loop:
    """One natural loop: a header plus the blocks of its body."""

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: List[BasicBlock] = [header]
        self._block_ids: Set[int] = {id(header)}
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        #: Back-edge source blocks (latches).
        self.latches: List[BasicBlock] = []

    def contains(self, block: BasicBlock) -> bool:
        return id(block) in self._block_ids

    def add_block(self, block: BasicBlock) -> None:
        if id(block) not in self._block_ids:
            self._block_ids.add(id(block))
            self.blocks.append(block)

    @property
    def depth(self) -> int:
        depth = 1
        walk = self.parent
        while walk is not None:
            depth += 1
            walk = walk.parent
        return depth

    def exit_edges(self):
        """(inside_block, outside_successor) pairs leaving the loop."""
        for block in self.blocks:
            for successor in block.successors():
                if not self.contains(successor):
                    yield block, successor

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any."""
        outside = [p for p in self.header.predecessors()
                   if not self.contains(p)]
        if len(outside) == 1 and len(outside[0].successors()) == 1:
            return outside[0]
        return None

    def is_invariant(self, value: Value) -> bool:
        """True if *value* cannot change across iterations of this loop:
        a constant, argument, global, or instruction defined outside."""
        if isinstance(value, insts.Instruction):
            return value.parent is not None \
                and not self.contains(value.parent)
        return not isinstance(value, BasicBlock)

    def induction_variable(self) -> Optional[InductionVariable]:
        """Recognize the loop's integer induction variable, if any.

        Matches the canonical counted-loop shape the front-end emits: a
        unique header phi of integer type with exactly two incoming
        values — a loop-invariant init from outside and an in-loop
        ``add %phi, <constant>`` step.  Returns ``None`` when no phi (or
        more than one) matches, so callers never guess between
        candidates.
        """
        found: Optional[InductionVariable] = None
        for inst in self.header.instructions:
            if not isinstance(inst, insts.PhiInst):
                break
            if not inst.type.is_integer or inst.num_incoming != 2:
                continue
            init: Optional[Value] = None
            step: Optional[Value] = None
            for value, pred in inst.incoming():
                if self.contains(pred):
                    step = value
                else:
                    init = value
            if init is None or step is None \
                    or not self.is_invariant(init):
                continue
            if not (isinstance(step, insts.AddInst)
                    and step.parent is not None
                    and self.contains(step.parent)
                    and step.lhs is inst
                    and isinstance(step.rhs, ConstantInt)):
                continue
            if found is not None:
                return None  # ambiguous: two candidate counters
            found = InductionVariable(inst, init, step, step.rhs.value)
        return found

    def trip_count(self) -> Optional[TripCount]:
        """Recognize the loop's counted exit condition, if any.

        Requires :meth:`induction_variable` plus a header of the form::

            %cond = setlt int %iv, %bound   ; bound loop-invariant
            br bool %cond, label %body, label %exit

        where the true edge stays in the loop and the false edge leaves
        it (``setgt`` with a negative stride is the mirrored form).
        """
        induction = self.induction_variable()
        if induction is None:
            return None
        terminator = self.header.instructions[-1] \
            if self.header.instructions else None
        if not (isinstance(terminator, insts.BranchInst)
                and terminator.is_conditional):
            return None
        condition = terminator.condition
        if not (isinstance(condition, insts.CompareInst)
                and condition.parent is self.header):
            return None
        if condition.lhs is not induction.phi \
                or not self.is_invariant(condition.rhs):
            return None
        relation = condition.relation
        if not ((relation == "lt" and induction.stride > 0)
                or (relation == "gt" and induction.stride < 0)):
            return None
        on_true, on_false = terminator.successors()
        if not (self.contains(on_true) and not self.contains(on_false)):
            return None
        return TripCount(induction, condition.rhs, condition, relation)

    def __repr__(self) -> str:
        return "<Loop header=%{0} blocks={1} depth={2}>".format(
            self.header.name, len(self.blocks), self.depth)


class LoopInfo:
    """All natural loops of a function, nested."""

    def __init__(self, function: Function,
                 domtree: Optional[DominatorTree] = None):
        self.function = function
        self.domtree = domtree or DominatorTree(function)
        self.top_level: List[Loop] = []
        self._loop_of: Dict[int, Loop] = {}
        self._discover()

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing *block*."""
        return self._loop_of.get(id(block))

    def depth_of(self, block: BasicBlock) -> int:
        loop = self.loop_for(block)
        return loop.depth if loop is not None else 0

    def all_loops(self) -> List[Loop]:
        out: List[Loop] = []
        stack = list(self.top_level)
        while stack:
            loop = stack.pop()
            out.append(loop)
            stack.extend(loop.children)
        return out

    # -- construction ---------------------------------------------------------

    def _discover(self) -> None:
        # Find back edges (tail -> header where header dominates tail),
        # innermost-first by processing headers in reverse RPO order.
        headers: Dict[int, Loop] = {}
        order = self.domtree.rpo
        for block in order:
            for successor in block.successors():
                if self.domtree.dominates(successor, block):
                    loop = headers.get(id(successor))
                    if loop is None:
                        loop = Loop(successor)
                        headers[id(successor)] = loop
                    loop.latches.append(block)
        # Fill loop bodies by walking back from each latch to the header.
        for loop in headers.values():
            for latch in loop.latches:
                self._fill_body(loop, latch)
        loops = list(headers.values())
        # Parent(L) = the smallest other loop whose body contains L's
        # header (loops sharing a header were already merged above).
        for loop in loops:
            candidates = [
                other for other in loops
                if other is not loop and other.contains(loop.header)
            ]
            if candidates:
                parent = min(candidates, key=lambda lp: len(lp.blocks))
                loop.parent = parent
                parent.children.append(loop)
        # The innermost-loop map: assign blocks starting from the
        # biggest loops so nested (smaller) loops overwrite their share.
        for loop in sorted(loops, key=lambda lp: -len(lp.blocks)):
            for block in loop.blocks:
                self._loop_of[id(block)] = loop
        self.top_level = [lp for lp in loops if lp.parent is None]

    def _fill_body(self, loop: Loop, latch: BasicBlock) -> None:
        stack = [latch]
        while stack:
            block = stack.pop()
            if loop.contains(block):
                continue
            loop.add_block(block)
            for pred in block.predecessors():
                if not loop.contains(pred):
                    stack.append(pred)
