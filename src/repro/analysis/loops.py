"""Natural-loop detection from the explicit CFG.

The paper's runtime-optimization strategy uses the CFG "to perform path
profiling within frequently executed loop regions while avoiding
interpretation" (Section 4.2); loop structure also drives LICM and the
software trace cache's region selection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.cfg import DominatorTree
from repro.ir.module import BasicBlock, Function


class Loop:
    """One natural loop: a header plus the blocks of its body."""

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: List[BasicBlock] = [header]
        self._block_ids: Set[int] = {id(header)}
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        #: Back-edge source blocks (latches).
        self.latches: List[BasicBlock] = []

    def contains(self, block: BasicBlock) -> bool:
        return id(block) in self._block_ids

    def add_block(self, block: BasicBlock) -> None:
        if id(block) not in self._block_ids:
            self._block_ids.add(id(block))
            self.blocks.append(block)

    @property
    def depth(self) -> int:
        depth = 1
        walk = self.parent
        while walk is not None:
            depth += 1
            walk = walk.parent
        return depth

    def exit_edges(self):
        """(inside_block, outside_successor) pairs leaving the loop."""
        for block in self.blocks:
            for successor in block.successors():
                if not self.contains(successor):
                    yield block, successor

    def preheader(self) -> Optional[BasicBlock]:
        """The unique out-of-loop predecessor of the header, if any."""
        outside = [p for p in self.header.predecessors()
                   if not self.contains(p)]
        if len(outside) == 1 and len(outside[0].successors()) == 1:
            return outside[0]
        return None

    def __repr__(self) -> str:
        return "<Loop header=%{0} blocks={1} depth={2}>".format(
            self.header.name, len(self.blocks), self.depth)


class LoopInfo:
    """All natural loops of a function, nested."""

    def __init__(self, function: Function,
                 domtree: Optional[DominatorTree] = None):
        self.function = function
        self.domtree = domtree or DominatorTree(function)
        self.top_level: List[Loop] = []
        self._loop_of: Dict[int, Loop] = {}
        self._discover()

    def loop_for(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost loop containing *block*."""
        return self._loop_of.get(id(block))

    def depth_of(self, block: BasicBlock) -> int:
        loop = self.loop_for(block)
        return loop.depth if loop is not None else 0

    def all_loops(self) -> List[Loop]:
        out: List[Loop] = []
        stack = list(self.top_level)
        while stack:
            loop = stack.pop()
            out.append(loop)
            stack.extend(loop.children)
        return out

    # -- construction ---------------------------------------------------------

    def _discover(self) -> None:
        # Find back edges (tail -> header where header dominates tail),
        # innermost-first by processing headers in reverse RPO order.
        headers: Dict[int, Loop] = {}
        order = self.domtree.rpo
        for block in order:
            for successor in block.successors():
                if self.domtree.dominates(successor, block):
                    loop = headers.get(id(successor))
                    if loop is None:
                        loop = Loop(successor)
                        headers[id(successor)] = loop
                    loop.latches.append(block)
        # Fill loop bodies by walking back from each latch to the header.
        for loop in headers.values():
            for latch in loop.latches:
                self._fill_body(loop, latch)
        loops = list(headers.values())
        # Parent(L) = the smallest other loop whose body contains L's
        # header (loops sharing a header were already merged above).
        for loop in loops:
            candidates = [
                other for other in loops
                if other is not loop and other.contains(loop.header)
            ]
            if candidates:
                parent = min(candidates, key=lambda lp: len(lp.blocks))
                loop.parent = parent
                parent.children.append(loop)
        # The innermost-loop map: assign blocks starting from the
        # biggest loops so nested (smaller) loops overwrite their share.
        for loop in sorted(loops, key=lambda lp: -len(lp.blocks)):
            for block in loop.blocks:
                self._loop_of[id(block)] = loop
        self.top_level = [lp for lp in loops if lp.parent is None]

    def _fill_body(self, loop: Loop, latch: BasicBlock) -> None:
        stack = [latch]
        while stack:
            block = stack.pop()
            if loop.contains(block):
                continue
            loop.add_block(block)
            for pred in block.predecessors():
                if not loop.contains(pred):
                    stack.append(pred)
