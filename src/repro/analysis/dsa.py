"""Data Structure Analysis (simplified).

Section 5.1: "Data Structure Analysis is an efficient, context-sensitive
pointer analysis, which computes both an accurate call graph and
points-to information.  Most importantly, it is able to identify
information about logical data structures (e.g., an entire list,
hashtable, or graph), including disjoint instances of such structures."

This reproduction implements the unification-based core of DSA:

* one **DS graph** per function: every pointer value maps to a *DS node*
  standing for the set of memory objects it may reference;
* nodes carry the classic flags — Heap, Stack, Global, Unknown (from
  int-to-pointer casts), Modified, Read, Escaping;
* ``store``/``phi``/``cast`` unify nodes (union-find), ``load`` follows
  the node's points-to edge, ``getelementptr`` stays within the node
  (objects are the granularity at which *disjoint instances* matter);
* calls mark argument nodes escaping, except for ``malloc``/``free``
  whose semantics are modelled directly.

The headline client is Automatic Pool Allocation
(:mod:`repro.transforms.poolalloc`), which needs exactly what this
computes: heap nodes that form disjoint, non-escaping data-structure
instances.  The full bottom-up/top-down context-sensitive propagation of
the original is out of scope (the paper only *uses* DSA; its algorithm is
a separate publication), and its absence only makes results more
conservative, never wrong.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir import instructions as insts
from repro.ir import types
from repro.ir.module import Function, GlobalVariable, Module
from repro.ir.values import Argument, Constant, ConstantNull, Value


class DSNode:
    """One points-to equivalence class (union-find element)."""

    HEAP = "H"
    STACK = "S"
    GLOBAL = "G"
    UNKNOWN = "U"
    MODIFIED = "M"
    READ = "R"
    ESCAPING = "E"

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.flags: Set[str] = set()
        self._parent: Optional["DSNode"] = None
        self._pointee: Optional["DSNode"] = None
        #: Allocation sites folded into this node.
        self.allocation_sites: List[Value] = []
        #: Declared pointee types observed (for instance typing).
        self.observed_types: Set[str] = set()

    # -- union-find ---------------------------------------------------------

    def find(self) -> "DSNode":
        root = self
        while root._parent is not None:
            root = root._parent
        # Path compression.
        walk = self
        while walk._parent is not None:
            walk._parent, walk = root, walk._parent
        return root

    def union(self, other: "DSNode") -> "DSNode":
        a, b = self.find(), other.find()
        if a is b:
            return a
        b._parent = a
        a.flags |= b.flags
        a.allocation_sites.extend(b.allocation_sites)
        a.observed_types |= b.observed_types
        pointee_a, pointee_b = a._pointee, b._pointee
        b._pointee = None
        if pointee_a is not None and pointee_b is not None:
            pointee_a.union(pointee_b)
        elif pointee_b is not None:
            a._pointee = pointee_b
        return a

    # -- edges ------------------------------------------------------------------

    def pointee(self, graph: "DSGraph") -> "DSNode":
        root = self.find()
        if root._pointee is None:
            root._pointee = graph._new_node()
        return root._pointee.find()

    def has_flag(self, flag: str) -> bool:
        return flag in self.find().flags

    def add_flag(self, flag: str) -> None:
        self.find().flags.add(flag)

    def __repr__(self) -> str:
        root = self.find()
        return "<DSNode #{0} [{1}]>".format(
            root.node_id, "".join(sorted(root.flags)))


class DSGraph:
    """The DS graph of one function."""

    def __init__(self, function: Function):
        self.function = function
        self._nodes: List[DSNode] = []
        self._value_nodes: Dict[int, DSNode] = {}
        self._build()

    # -- node plumbing ---------------------------------------------------------

    def _new_node(self) -> DSNode:
        node = DSNode(len(self._nodes))
        self._nodes.append(node)
        return node

    def node_for(self, value: Value) -> DSNode:
        existing = self._value_nodes.get(id(value))
        if existing is not None:
            return existing.find()
        node = self._new_node()
        self._value_nodes[id(value)] = node
        if isinstance(value, Argument):
            node.add_flag(DSNode.ESCAPING)  # callers hold it too
        if value.type.is_pointer:
            node.observed_types.add(str(value.type.pointee))
        return node

    def _merge(self, a: Value, b: Value) -> None:
        self.node_for(a).union(self.node_for(b))

    # -- construction --------------------------------------------------------------

    def _build(self) -> None:
        for inst in self.function.instructions():
            self._visit(inst)

    def _visit(self, inst: insts.Instruction) -> None:
        if isinstance(inst, insts.AllocaInst):
            node = self.node_for(inst)
            node.add_flag(DSNode.STACK)
            node.allocation_sites.append(inst)
        elif isinstance(inst, insts.GetElementPtrInst):
            # Field steps stay inside the object: same node.
            self._merge(inst, inst.pointer)
            self._note_global(inst.pointer)
        elif isinstance(inst, insts.CastInst):
            if inst.type.is_pointer:
                node = self.node_for(inst)
                if inst.value.type.is_pointer:
                    node.union(self.node_for(inst.value))
                else:
                    node.add_flag(DSNode.UNKNOWN)
        elif isinstance(inst, insts.LoadInst):
            self._note_global(inst.pointer)
            pointer_node = self.node_for(inst.pointer)
            pointer_node.add_flag(DSNode.READ)
            if inst.type.is_pointer:
                self.node_for(inst).union(pointer_node.pointee(self))
        elif isinstance(inst, insts.StoreInst):
            self._note_global(inst.pointer)
            pointer_node = self.node_for(inst.pointer)
            pointer_node.add_flag(DSNode.MODIFIED)
            if inst.value.type.is_pointer:
                pointer_node.pointee(self).union(
                    self.node_for(inst.value))
        elif isinstance(inst, insts.PhiInst):
            if inst.type.is_pointer:
                node = self.node_for(inst)
                for value, _block in inst.incoming():
                    if not isinstance(value, ConstantNull):
                        node.union(self.node_for(value))
        elif isinstance(inst, (insts.CallInst, insts.InvokeInst)):
            self._visit_call(inst)

    def _visit_call(self, inst) -> None:
        callee = inst.callee
        callee_name = callee.name if isinstance(callee, Function) else None
        if callee_name == "malloc":
            node = self.node_for(inst)
            node.add_flag(DSNode.HEAP)
            node.allocation_sites.append(inst)
            return
        if callee_name == "free":
            return  # deallocation keeps the node local
        for arg in inst.args:
            if arg.type.is_pointer:
                node = self.node_for(arg)
                node.add_flag(DSNode.ESCAPING)
                node.pointee(self).add_flag(DSNode.ESCAPING)
        if inst.produces_value and inst.type.is_pointer:
            self.node_for(inst).add_flag(DSNode.UNKNOWN)

    def _note_global(self, pointer: Value) -> None:
        if isinstance(pointer, GlobalVariable):
            self.node_for(pointer).add_flag(DSNode.GLOBAL)

    # -- queries ----------------------------------------------------------------------

    def nodes(self) -> List[DSNode]:
        """All distinct root nodes."""
        seen: Set[int] = set()
        out: List[DSNode] = []
        for node in self._nodes:
            root = node.find()
            if id(root) not in seen:
                seen.add(id(root))
                out.append(root)
        return out

    def heap_instances(self) -> List[DSNode]:
        """Disjoint heap data-structure instances: distinct root nodes
        with the Heap flag.  Each is a candidate pool for Automatic Pool
        Allocation (Section 5.1)."""
        return [n for n in self.nodes() if n.has_flag(DSNode.HEAP)]

    def local_heap_instances(self) -> List[DSNode]:
        """Heap instances that never escape this function."""
        return [n for n in self.heap_instances()
                if not n.has_flag(DSNode.ESCAPING)
                and not n.has_flag(DSNode.UNKNOWN)]

    def points_to_same(self, a: Value, b: Value) -> bool:
        """May *a* and *b* reference the same data-structure instance?"""
        if id(a) not in self._value_nodes or id(b) not in self._value_nodes:
            return True  # unknown values: be conservative
        return self._value_nodes[id(a)].find() \
            is self._value_nodes[id(b)].find()


class ModuleDSA:
    """Per-function DS graphs for a whole module."""

    def __init__(self, module: Module):
        self.module = module
        self.graphs: Dict[str, DSGraph] = {
            f.name: DSGraph(f)
            for f in module.functions.values() if not f.is_declaration}

    def graph(self, function: Function) -> DSGraph:
        return self.graphs[function.name]

    def total_heap_instances(self) -> int:
        return sum(len(g.heap_instances()) for g in self.graphs.values())
