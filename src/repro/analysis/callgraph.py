"""Call-graph construction.

Direct calls are read off the instruction stream; indirect calls (through
function-pointer registers) are resolved conservatively to every
address-taken function of a compatible type.  Data Structure Analysis
(:mod:`repro.analysis.dsa`) refines this — "Data Structure Analysis ...
computes both an accurate call graph and points-to information"
(Section 5.1).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.ir import instructions as insts
from repro.ir import types
from repro.ir.module import Function, Module


class CallGraphNode:
    """One function plus its outgoing call edges."""

    def __init__(self, function: Function):
        self.function = function
        self.callees: List[Function] = []
        self.callers: List[Function] = []
        #: Whether this node contains an unresolved indirect call.
        self.calls_unknown = False

    def __repr__(self) -> str:
        return "<CallGraphNode %{0} -> {1}>".format(
            self.function.name, [c.name for c in self.callees])


class CallGraph:
    """The module call graph."""

    def __init__(self, module: Module):
        self.module = module
        self.nodes: Dict[str, CallGraphNode] = {
            f.name: CallGraphNode(f) for f in module.functions.values()}
        self._address_taken = self._find_address_taken()
        self._build()

    def node(self, function: Function) -> CallGraphNode:
        return self.nodes[function.name]

    def address_taken_functions(self) -> Set[str]:
        return set(self._address_taken)

    # -- construction --------------------------------------------------------

    def _find_address_taken(self) -> Set[str]:
        """Functions whose address is used other than as a direct callee."""
        taken: Set[str] = set()
        for function in self.module.functions.values():
            for use in function.uses:
                user = use.user
                if isinstance(user, (insts.CallInst, insts.InvokeInst)) \
                        and use.index == 0:
                    continue  # direct call
                taken.add(function.name)
        # Functions referenced from global initializers (vtables etc.).
        for variable in self.module.globals.values():
            if variable.initializer is not None:
                for name in _functions_in_constant(variable.initializer):
                    taken.add(name)
        return taken

    def _compatible_indirect_targets(
            self, signature: types.FunctionType) -> List[Function]:
        return [
            f for f in self.module.functions.values()
            if f.name in self._address_taken
            and f.function_type is signature
        ]

    def _build(self) -> None:
        for function in self.module.functions.values():
            node = self.nodes[function.name]
            seen: Set[int] = set()
            for inst in function.instructions():
                if not isinstance(inst, (insts.CallInst, insts.InvokeInst)):
                    continue
                callee = inst.callee
                if isinstance(callee, Function):
                    targets = [callee]
                else:
                    node.calls_unknown = True
                    targets = self._compatible_indirect_targets(
                        inst.signature)
                for target in targets:
                    if id(target) not in seen:
                        seen.add(id(target))
                        node.callees.append(target)
                        self.nodes[target.name].callers.append(function)

    # -- queries -----------------------------------------------------------------

    def post_order(self) -> List[Function]:
        """Functions in bottom-up (callee before caller) order; cycles
        (recursion) are broken at the back edge."""
        out: List[Function] = []
        visited: Set[str] = set()

        def visit(name: str) -> None:
            stack: List[Tuple[str, int]] = [(name, 0)]
            visited.add(name)
            while stack:
                current, index = stack[-1]
                callees = self.nodes[current].callees
                if index < len(callees):
                    stack[-1] = (current, index + 1)
                    callee = callees[index].name
                    if callee not in visited:
                        visited.add(callee)
                        stack.append((callee, 0))
                else:
                    stack.pop()
                    out.append(self.nodes[current].function)

        for function_name in self.nodes:
            if function_name not in visited:
                visit(function_name)
        return out

    def is_recursive(self, function: Function) -> bool:
        """Whether *function* can (transitively) call itself."""
        target = function.name
        seen: Set[str] = set()
        worklist = [c.name for c in self.nodes[target].callees]
        while worklist:
            name = worklist.pop()
            if name == target:
                return True
            if name in seen:
                continue
            seen.add(name)
            worklist.extend(c.name for c in self.nodes[name].callees)
        return False


def _functions_in_constant(constant) -> Iterator[str]:
    from repro.ir.values import ConstantAggregate

    if isinstance(constant, Function):
        yield constant.name
    elif isinstance(constant, ConstantAggregate):
        for element in constant.elements:
            yield from _functions_in_constant(element)
