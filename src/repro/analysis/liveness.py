"""Per-block liveness analysis over LLVA virtual registers.

A backwards dataflow analysis producing live-in/live-out sets, used by the
register allocators in :mod:`repro.targets.regalloc` — the paper's claim
that "this type information and the SSA representation together provide
the information needed for simple or aggressive register allocation
algorithms" (Section 3.1) is exactly this computation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.ir.instructions import Instruction, PhiInst
from repro.ir.module import BasicBlock, Function
from repro.ir.values import Argument, Constant, Value


def _is_register(value: Value) -> bool:
    """Virtual-register values: instruction results and arguments."""
    if isinstance(value, Constant):
        return False
    return isinstance(value, (Instruction, Argument))


class LivenessInfo:
    """Live-in/live-out register sets for every block of a function."""

    def __init__(self, function: Function):
        self.function = function
        self.live_in: Dict[int, Set[Value]] = {}
        self.live_out: Dict[int, Set[Value]] = {}
        self._compute()

    def _block_local_sets(self, block: BasicBlock):
        """(use, def) sets: `use` holds registers read before any local
        definition.  Phi operands count as uses in the *predecessor*, so
        they are excluded here and added on the CFG edge instead."""
        uses: Set[Value] = set()
        defs: Set[Value] = set()
        for inst in block.instructions:
            if not isinstance(inst, PhiInst):
                for operand in inst.operands:
                    if _is_register(operand) and operand not in defs:
                        uses.add(operand)
            if inst.produces_value:
                defs.add(inst)
        return uses, defs

    def _compute(self) -> None:
        blocks = self.function.blocks
        use_sets: Dict[int, Set[Value]] = {}
        def_sets: Dict[int, Set[Value]] = {}
        for block in blocks:
            uses, defs = self._block_local_sets(block)
            use_sets[id(block)] = uses
            def_sets[id(block)] = defs
            self.live_in[id(block)] = set()
            self.live_out[id(block)] = set()
        # Phi inputs are live-out of the corresponding predecessor.
        phi_edge_uses: Dict[int, Set[Value]] = {
            id(block): set() for block in blocks}
        for block in blocks:
            for phi in block.phis():
                for value, pred in phi.incoming():
                    if _is_register(value) and id(pred) in phi_edge_uses:
                        phi_edge_uses[id(pred)].add(value)
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                key = id(block)
                out: Set[Value] = set(phi_edge_uses[key])
                for successor in block.successors():
                    out |= self.live_in.get(id(successor), set())
                    # Phi results become live at the head of the successor
                    # but their operands were handled above.
                new_in = use_sets[key] | (out - def_sets[key])
                if out != self.live_out[key] or new_in != self.live_in[key]:
                    self.live_out[key] = out
                    self.live_in[key] = new_in
                    changed = True

    def live_out_of(self, block: BasicBlock) -> FrozenSet[Value]:
        return frozenset(self.live_out[id(block)])

    def live_in_of(self, block: BasicBlock) -> FrozenSet[Value]:
        return frozenset(self.live_in[id(block)])

    def max_pressure(self) -> int:
        """Upper bound on simultaneously-live registers, a proxy for
        spill pressure used by the register-allocation ablation bench."""
        best = 0
        for block in self.function.blocks:
            live = set(self.live_out[id(block)])
            best = max(best, len(live))
            for inst in reversed(block.instructions):
                if inst.produces_value:
                    live.discard(inst)
                if not isinstance(inst, PhiInst):
                    for operand in inst.operands:
                        if _is_register(operand):
                            live.add(operand)
                best = max(best, len(live))
        return best
