"""Virtual object code reader — inverse of :mod:`repro.bitcode.writer`.

Reconstruction is two-phase within each function body: instruction
records are decoded into typed placeholders first, so operands may
forward-reference instructions that appear later in the stream (legal
whenever a dominating definition lives in a block stored later), then
every placeholder is patched to the materialized instruction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bitcode.encoding import BitcodeError, Reader
from repro.bitcode.writer import (
    CONST_ARRAY,
    CONST_BOOL,
    CONST_FP,
    CONST_INT,
    CONST_NULL,
    CONST_STRUCT,
    CONST_SYMBOL,
    CONST_UNDEF,
    CONST_ZERO,
    KIND_ARRAY,
    KIND_FUNCTION,
    KIND_POINTER,
    KIND_STRUCT,
    KIND_VECTOR,
    MAGIC,
    PRIMITIVE_ORDER,
    VERSION,
)
from repro.ir import instructions as insts
from repro.ir import types, values
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module
from repro.ir.values import Placeholder, Value


def read_module(data: bytes, name: str = "module") -> Module:
    """Deserialize object-code bytes into a fresh module."""
    return _ModuleReader(data, name).read()


class _ModuleReader:
    def __init__(self, data: bytes, name: str):
        self.reader = Reader(data)
        self.module = Module(name)
        self.types: List[types.Type] = []
        self.symbols: List = []

    def read(self) -> Module:
        reader = self.reader
        if reader.raw(4) != MAGIC:
            raise BitcodeError("bad magic")
        version = reader.u8()
        if version != VERSION:
            raise BitcodeError("unsupported version {0}".format(version))
        self.module.pointer_size = reader.u8()
        self.module.endianness = "little" if reader.u8() == 0 else "big"
        self.has_names = reader.u8() == 1
        self._read_type_table()
        self._read_symbol_table()
        self._read_bodies()
        return self.module

    # -- types ---------------------------------------------------------------

    def _read_type_table(self) -> None:
        reader = self.reader
        self.types = list(PRIMITIVE_ORDER)
        named_count = reader.vbr()
        named: List[Tuple[str, int]] = []
        named_structs: Dict[int, types.StructType] = {}
        for _ in range(named_count):
            struct_name = reader.string()
            index = reader.vbr()
            named.append((struct_name, index))
            struct = types.named_struct(struct_name)
            named_structs[index] = struct
            self.module.named_types[struct_name] = struct
        derived_count = reader.vbr()
        # First pass: create shells so records may reference any index.
        records: List[Tuple[int, List[int], int]] = []
        base = len(PRIMITIVE_ORDER)
        for offset in range(derived_count):
            index = base + offset
            kind = reader.u8()
            if kind == KIND_POINTER:
                records.append((kind, [reader.vbr()], index))
            elif kind in (KIND_ARRAY, KIND_VECTOR):
                element = reader.vbr()
                length = reader.vbr()
                records.append((kind, [element, length], index))
            elif kind == KIND_STRUCT:
                count = reader.vbr()
                fields = [reader.vbr() for _ in range(count)]
                records.append((kind, fields, index))
            elif kind == KIND_FUNCTION:
                return_index = reader.vbr()
                count = reader.vbr()
                params = [reader.vbr() for _ in range(count)]
                vararg = reader.u8()
                records.append(
                    (kind, [return_index] + params + [vararg], index))
            else:
                raise BitcodeError("bad type kind {0}".format(kind))
            self.types.append(named_structs.get(index))  # shell or None
        # Second pass: materialize in dependency order via memoized
        # resolution.  Named structs already exist; only their bodies are
        # deferred.
        self._records = {index: (kind, payload)
                         for kind, payload, index in records}
        for _, _, index in records:
            self._resolve_type(index)
        # Third pass: fill named-struct bodies.
        for _name, index in named:
            kind, payload = self._records[index]
            if kind != KIND_STRUCT:
                raise BitcodeError("named type is not a struct")
            struct = self.types[index]
            assert isinstance(struct, types.StructType)
            if struct.is_opaque:
                struct.set_body(
                    self._resolve_type(i) for i in payload)

    def _resolve_type(self, index: int) -> types.Type:
        existing = self.types[index]
        if existing is not None:
            if not (isinstance(existing, types.StructType)
                    and existing.is_opaque):
                return existing
            return existing  # opaque named struct: usable as-is
        kind, payload = self._records[index]
        if kind == KIND_POINTER:
            result: types.Type = types.pointer_to(
                self._resolve_type(payload[0]))
        elif kind == KIND_ARRAY:
            result = types.array_of(self._resolve_type(payload[0]),
                                    payload[1])
        elif kind == KIND_VECTOR:
            result = types.vector_of(self._resolve_type(payload[0]),
                                     payload[1])
        elif kind == KIND_STRUCT:
            result = types.struct_of(
                self._resolve_type(i) for i in payload)
        else:
            vararg = bool(payload[-1])
            return_type = self._resolve_type(payload[0])
            params = [self._resolve_type(i) for i in payload[1:-1]]
            result = types.function_of(return_type, params, vararg)
        self.types[index] = result
        return result

    def _type(self, index: int) -> types.Type:
        type_ = self.types[index]
        if type_ is None:
            raise BitcodeError("unresolved type index {0}".format(index))
        return type_

    # -- symbols ----------------------------------------------------------------

    def _read_symbol_table(self) -> None:
        reader = self.reader
        global_count = reader.vbr()
        pending_inits: List[Tuple[GlobalVariable, int]] = []
        # Two passes over globals are not possible in a stream, so
        # initializers referencing functions use symbol indices resolved
        # after functions are read; we decode initializers lazily by
        # storing their constants only after all symbols exist.  To keep
        # the format single-pass, initializer records may only reference
        # symbol indices, which we patch below.
        raw_inits: List[Tuple[GlobalVariable, "_LazyConstant"]] = []
        for _ in range(global_count):
            symbol_name = reader.string()
            value_type = self._type(reader.vbr())
            flags = reader.u8()
            variable = self.module.create_global(
                symbol_name, value_type,
                initializer=None,
                is_constant=bool(flags & 1),
                internal=bool(flags & 2))
            self.symbols.append(variable)
            if flags & 4:
                raw_inits.append((variable, self._read_lazy_constant()))
        function_count = reader.vbr()
        self._defined_functions: List[Function] = []
        for _ in range(function_count):
            symbol_name = reader.string()
            function_type = self._type(reader.vbr())
            flags = reader.u8()
            if not isinstance(function_type, types.FunctionType):
                raise BitcodeError("function symbol with non-function type")
            arg_names: Optional[List[str]] = None
            if self.has_names:
                arg_names = [reader.string()
                             for _ in function_type.params]
            function = self.module.create_function(
                symbol_name, function_type, arg_names,
                internal=bool(flags & 1))
            self.symbols.append(function)
            if flags & 2:
                self._defined_functions.append(function)
        for variable, lazy in raw_inits:
            variable.initializer = lazy.materialize(self)

    def _read_lazy_constant(self) -> "_LazyConstant":
        return _LazyConstant.parse(self.reader)

    def _constant_from_record(self, record) -> values.Constant:
        kind, payload = record
        if kind == CONST_INT:
            return values.const_int(self._type(payload[0]), payload[1])
        if kind == CONST_FP:
            return values.const_fp(self._type(payload[0]), payload[1])
        if kind == CONST_BOOL:
            return values.const_bool(bool(payload[0]))
        if kind == CONST_NULL:
            return values.const_null(self._type(payload[0]))
        if kind == CONST_UNDEF:
            return values.const_undef(self._type(payload[0]))
        if kind == CONST_SYMBOL:
            return self.symbols[payload[0]]
        if kind == CONST_ZERO:
            return values.const_zero(self._type(payload[0]))
        if kind == CONST_ARRAY:
            array_type = self._type(payload[0])
            elements = [self._constant_from_record(r) for r in payload[1]]
            return values.ConstantArray(array_type.element, elements)
        if kind == CONST_STRUCT:
            struct_type = self._type(payload[0])
            elements = [self._constant_from_record(r) for r in payload[1]]
            return values.ConstantStruct(struct_type, elements)
        raise BitcodeError("bad constant kind {0}".format(kind))

    # -- bodies --------------------------------------------------------------------

    def _read_bodies(self) -> None:
        for function in self._defined_functions:
            self._read_body(function)

    def _read_body(self, function: Function) -> None:
        reader = self.reader
        pool_count = reader.vbr()
        pool: List[values.Constant] = []
        for _ in range(pool_count):
            record = _LazyConstant.parse(reader)
            pool.append(record.materialize(self))
        block_count = reader.vbr()
        blocks = [BasicBlock("bb{0}".format(i)) for i in range(block_count)]
        for block in blocks:
            block.parent = function
            function.blocks.append(block)
        # Decode raw instruction records.
        records: List[Tuple[int, bool, int, Tuple[int, ...], int]] = []
        counts: List[int] = []
        for block_index in range(block_count):
            inst_count = reader.vbr()
            counts.append(inst_count)
            for _ in range(inst_count):
                opcode_index, ee_flag, type_index, operand_ids = \
                    reader.instruction()
                records.append((opcode_index, ee_flag, type_index,
                                operand_ids, block_index))
        # Unified id space.
        id_base_args = len(pool)
        id_base_blocks = id_base_args + len(function.args)
        id_base_insts = id_base_blocks + block_count
        placeholders: Dict[int, Placeholder] = {}

        def lookup(value_id: int) -> Value:
            if value_id < id_base_args:
                return pool[value_id]
            if value_id < id_base_blocks:
                return function.args[value_id - id_base_args]
            if value_id < id_base_insts:
                return blocks[value_id - id_base_blocks]
            index = value_id - id_base_insts
            built = materialized[index]
            if built is not None:
                return built
            placeholder = placeholders.get(index)
            if placeholder is None:
                record_type = self._type(records[index][2])
                placeholder = Placeholder(record_type)
                placeholders[index] = placeholder
            return placeholder

        materialized: List[Optional[insts.Instruction]] = \
            [None] * len(records)
        for index, (opcode_index, ee_flag, type_index, operand_ids,
                    block_index) in enumerate(records):
            opcode = insts.ALL_OPCODES[opcode_index]
            operands = [lookup(value_id) for value_id in operand_ids]
            inst = self._build_instruction(
                opcode, self._type(type_index), operands)
            ee_default = opcode in insts.DEFAULT_EXCEPTIONS_ENABLED
            inst.exceptions_enabled = ee_default != ee_flag
            blocks[block_index].instructions.append(inst)
            inst.parent = blocks[block_index]
            materialized[index] = inst
            placeholder = placeholders.pop(index, None)
            if placeholder is not None:
                placeholder.replace_all_uses_with(inst)
        if placeholders:
            raise BitcodeError("dangling forward references in body")
        if self.has_names:
            named_count = reader.vbr()
            for _ in range(named_count):
                value_id = reader.vbr()
                value_name = reader.string()
                lookup(value_id).name = value_name

    def _build_instruction(self, opcode: str, result_type: types.Type,
                           operands: List[Value]) -> insts.Instruction:
        if opcode in insts.BINARY_CLASSES:
            return insts.BINARY_CLASSES[opcode](operands[0], operands[1])
        if opcode.startswith("set"):
            return insts.COMPARE_CLASSES[opcode[3:]](
                operands[0], operands[1])
        if opcode == "ret":
            return insts.RetInst(operands[0] if operands else None)
        if opcode == "br":
            if len(operands) == 1:
                return insts.BranchInst(target=operands[0])
            return insts.BranchInst(condition=operands[0],
                                    if_true=operands[1],
                                    if_false=operands[2])
        if opcode == "mbr":
            cases = [(operands[i], operands[i + 1])
                     for i in range(2, len(operands), 2)]
            return insts.MultiwayBranchInst(operands[0], operands[1],
                                            cases)
        if opcode == "invoke":
            return insts.InvokeInst(operands[0], operands[3:],
                                    operands[1], operands[2])
        if opcode == "unwind":
            return insts.UnwindInst()
        if opcode == "call":
            return insts.CallInst(operands[0], operands[1:])
        if opcode == "load":
            return insts.LoadInst(operands[0])
        if opcode == "store":
            return insts.StoreInst(operands[0], operands[1])
        if opcode == "getelementptr":
            return insts.GetElementPtrInst(operands[0], operands[1:])
        if opcode == "alloca":
            if not result_type.is_pointer:
                raise BitcodeError("alloca with non-pointer result type")
            return insts.AllocaInst(
                result_type.pointee,
                operands[0] if operands else None)
        if opcode == "cast":
            return insts.CastInst(operands[0], result_type)
        if opcode == "phi":
            pairs = [(operands[i], operands[i + 1])
                     for i in range(0, len(operands), 2)]
            return insts.PhiInst(result_type, pairs)
        if opcode in insts.VECTOR_BINARY_CLASSES:
            return insts.VECTOR_BINARY_CLASSES[opcode](
                operands[0], operands[1])
        if opcode == "vsplat":
            return insts.VSplatInst(result_type, operands[0])
        if opcode in insts.VREDUCE_CLASSES:
            return insts.VREDUCE_CLASSES[opcode](operands[0], operands[1])
        if opcode == "vload":
            return insts.VLoadInst(result_type, operands[0])
        if opcode == "vstore":
            return insts.VStoreInst(operands[0], operands[1])
        raise BitcodeError("bad opcode {0!r}".format(opcode))


class _LazyConstant:
    """A parsed-but-unmaterialized constant record.

    Parsing and materialization are split so global initializers can
    reference function symbols that appear later in the symbol table.
    """

    def __init__(self, kind: int, payload):
        self.kind = kind
        self.payload = payload

    @classmethod
    def parse(cls, reader: Reader) -> "_LazyConstant":
        kind = reader.u8()
        if kind == CONST_INT:
            return cls(kind, [reader.vbr(), reader.svbr()])
        if kind == CONST_FP:
            return cls(kind, [reader.vbr(), reader.f64()])
        if kind == CONST_BOOL:
            return cls(kind, [reader.u8()])
        if kind in (CONST_NULL, CONST_UNDEF, CONST_ZERO):
            return cls(kind, [reader.vbr()])
        if kind == CONST_SYMBOL:
            return cls(kind, [reader.vbr()])
        if kind in (CONST_ARRAY, CONST_STRUCT):
            type_index = reader.vbr()
            count = reader.vbr()
            elements = [cls.parse(reader) for _ in range(count)]
            return cls(kind, [type_index, elements])
        raise BitcodeError("bad constant kind {0}".format(kind))

    def materialize(self, module_reader: _ModuleReader) -> values.Constant:
        payload = self.payload
        if self.kind in (CONST_ARRAY, CONST_STRUCT):
            elements = [lazy.materialize(module_reader)
                        for lazy in payload[1]]
            type_ = module_reader._type(payload[0])
            if self.kind == CONST_ARRAY:
                return values.ConstantArray(type_.element, elements)
            return values.ConstantStruct(type_, elements)
        return module_reader._constant_from_record((self.kind, payload))
