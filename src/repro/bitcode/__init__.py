"""Virtual object code: the persistent, compact encoding of LLVA modules
(Section 3.1's self-extending encoding with a fixed 32-bit short form)."""

from repro.bitcode.encoding import BitcodeError
from repro.bitcode.reader import read_module
from repro.bitcode.writer import (
    WriteStats,
    write_module,
    write_module_with_stats,
)

__all__ = [
    "BitcodeError",
    "read_module",
    "WriteStats",
    "write_module",
    "write_module_with_stats",
]
