"""Virtual object code writer.

File layout::

    magic "LLVA" | version u8 | pointer_size u8 | endian u8 | flags u8
    type table          (named-struct names first, then all records)
    symbol table        (globals with initializers, function signatures)
    function bodies     (constant pool + blocks + instructions)
    [name table]        (optional, when names are not stripped)

Value ids within a function body are assigned in one unified space::

    [function constant pool] [arguments] [basic blocks] [instructions]

so every operand of every instruction is a single integer, which is what
lets most instructions hit the fixed 32-bit short form (the compactness
property measured in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bitcode.encoding import BitcodeError, Writer
from repro.ir import instructions as insts
from repro.ir import types, values
from repro.ir.module import Function, GlobalVariable, Module

MAGIC = b"LLVA"
VERSION = 1

#: Fixed primitive indices 0..12, in this order.
PRIMITIVE_ORDER: Tuple[types.PrimitiveType, ...] = (
    types.VOID, types.LABEL, types.BOOL,
    types.UBYTE, types.SBYTE, types.USHORT, types.SHORT,
    types.UINT, types.INT, types.ULONG, types.LONG,
    types.FLOAT, types.DOUBLE,
)

KIND_POINTER = 0
KIND_ARRAY = 1
KIND_STRUCT = 2
KIND_FUNCTION = 3
KIND_VECTOR = 4

CONST_INT = 0
CONST_FP = 1
CONST_BOOL = 2
CONST_NULL = 3
CONST_UNDEF = 4
CONST_SYMBOL = 5
CONST_ARRAY = 6
CONST_STRUCT = 7
CONST_ZERO = 8

OPCODE_INDEX: Dict[str, int] = {
    opcode: index for index, opcode in enumerate(insts.ALL_OPCODES)}


@dataclass
class WriteStats:
    """Size accounting for the Table 2 code-size experiment."""

    total_bytes: int = 0
    short_instructions: int = 0
    long_instructions: int = 0

    @property
    def short_form_fraction(self) -> float:
        total = self.short_instructions + self.long_instructions
        return self.short_instructions / total if total else 1.0


class _TypeTable:
    """Assigns indices to every type reachable from the module."""

    def __init__(self):
        self.index: Dict[int, int] = {
            id(t): i for i, t in enumerate(PRIMITIVE_ORDER)}
        self.entries: List[types.Type] = list(PRIMITIVE_ORDER)
        self.named: List[types.StructType] = []

    def add(self, type_: types.Type) -> int:
        existing = self.index.get(id(type_))
        if existing is not None:
            return existing
        if isinstance(type_, types.StructType) and type_.name is not None:
            # Allocate the index before visiting fields so recursive
            # types terminate.
            index = self._allocate(type_)
            self.named.append(type_)
            for fieldtype in type_.fields:
                self.add(fieldtype)
            return index
        if isinstance(type_, types.PointerType):
            self.add(type_.pointee)
        elif isinstance(type_, (types.ArrayType, types.VectorType)):
            self.add(type_.element)
        elif isinstance(type_, types.StructType):
            for fieldtype in type_.fields:
                self.add(fieldtype)
        elif isinstance(type_, types.FunctionType):
            self.add(type_.return_type)
            for param in type_.params:
                self.add(param)
        else:
            raise BitcodeError("unknown type {0}".format(type_))
        return self._allocate(type_)

    def _allocate(self, type_: types.Type) -> int:
        index = len(self.entries)
        self.index[id(type_)] = index
        self.entries.append(type_)
        return index

    def of(self, type_: types.Type) -> int:
        return self.index[id(type_)]


def write_module(module: Module, strip_names: bool = True) -> bytes:
    """Serialize *module*; returns the object-code bytes.

    ``strip_names`` drops local value/block names (the production
    configuration whose size Table 2 reports); keep them for debugging
    round trips.
    """
    return _ModuleWriter(module, strip_names).write()


def write_module_with_stats(module: Module,
                            strip_names: bool = True
                            ) -> Tuple[bytes, WriteStats]:
    """Like :func:`write_module` but also returns size statistics."""
    writer = _ModuleWriter(module, strip_names)
    data = writer.write()
    stats = WriteStats(
        total_bytes=len(data),
        short_instructions=writer.out.short_instructions,
        long_instructions=writer.out.long_instructions,
    )
    return data, stats


class _ModuleWriter:
    def __init__(self, module: Module, strip_names: bool):
        self.module = module
        self.strip_names = strip_names
        self.out = Writer()
        self.types = _TypeTable()
        # Symbol indices: globals first, then functions (file order).
        self.symbols: List = (list(module.globals.values())
                              + list(module.functions.values()))
        self.symbol_index = {id(s): i for i, s in enumerate(self.symbols)}

    # -- driver ------------------------------------------------------------

    def write(self) -> bytes:
        self._collect_types()
        out = self.out
        out.raw(MAGIC)
        out.u8(VERSION)
        out.u8(self.module.pointer_size)
        out.u8(0 if self.module.endianness == "little" else 1)
        out.u8(0 if self.strip_names else 1)
        self._write_type_table()
        self._write_symbol_table()
        self._write_bodies()
        return out.getvalue()

    # -- type table -----------------------------------------------------------

    def _collect_types(self) -> None:
        for variable in self.module.globals.values():
            self.types.add(variable.value_type)
        for function in self.module.functions.values():
            self.types.add(function.function_type)
            for block in function.blocks:
                for inst in block.instructions:
                    self.types.add(inst.type)
                    if isinstance(inst, insts.AllocaInst):
                        self.types.add(inst.allocated_type)
                    for operand in inst.operands:
                        self.types.add(operand.type)

    def _write_type_table(self) -> None:
        out = self.out
        table = self.types
        # Named structs first (names + indices), then all derived records
        # in index order; primitives are implicit.
        out.vbr(len(table.named))
        for struct in table.named:
            out.string(struct.name or "")
            out.vbr(table.of(struct))
        derived = [t for t in table.entries[len(PRIMITIVE_ORDER):]]
        out.vbr(len(derived))
        for type_ in derived:
            self._write_type_record(type_)

    def _write_type_record(self, type_: types.Type) -> None:
        out = self.out
        table = self.types
        if isinstance(type_, types.PointerType):
            out.u8(KIND_POINTER)
            out.vbr(table.of(type_.pointee))
        elif isinstance(type_, types.ArrayType):
            out.u8(KIND_ARRAY)
            out.vbr(table.of(type_.element))
            out.vbr(type_.length)
        elif isinstance(type_, types.VectorType):
            out.u8(KIND_VECTOR)
            out.vbr(table.of(type_.element))
            out.vbr(type_.lanes)
        elif isinstance(type_, types.StructType):
            out.u8(KIND_STRUCT)
            out.vbr(len(type_.fields))
            for fieldtype in type_.fields:
                out.vbr(table.of(fieldtype))
        elif isinstance(type_, types.FunctionType):
            out.u8(KIND_FUNCTION)
            out.vbr(table.of(type_.return_type))
            out.vbr(len(type_.params))
            for param in type_.params:
                out.vbr(table.of(param))
            out.u8(1 if type_.vararg else 0)
        else:
            raise BitcodeError("cannot encode type {0}".format(type_))

    # -- symbols -----------------------------------------------------------------

    def _write_symbol_table(self) -> None:
        out = self.out
        out.vbr(len(self.module.globals))
        for variable in self.module.globals.values():
            out.string(variable.name or "")
            out.vbr(self.types.of(variable.value_type))
            flags = (1 if variable.is_constant else 0) \
                | (2 if variable.internal else 0) \
                | (4 if variable.initializer is not None else 0)
            out.u8(flags)
            if variable.initializer is not None:
                self._write_constant(variable.initializer,
                                     variable.value_type)
        out.vbr(len(self.module.functions))
        for function in self.module.functions.values():
            out.string(function.name or "")
            out.vbr(self.types.of(function.function_type))
            flags = (1 if function.internal else 0) \
                | (2 if not function.is_declaration else 0)
            out.u8(flags)
            if not self.strip_names:
                for arg in function.args:
                    out.string(arg.name or "")

    def _write_constant(self, constant: values.Constant,
                        type_: types.Type) -> None:
        out = self.out
        if isinstance(constant, values.ConstantInt):
            out.u8(CONST_INT)
            out.vbr(self.types.of(constant.type))
            out.svbr(constant.value)
        elif isinstance(constant, values.ConstantFP):
            out.u8(CONST_FP)
            out.vbr(self.types.of(constant.type))
            out.f64(constant.value)
        elif isinstance(constant, values.ConstantBool):
            out.u8(CONST_BOOL)
            out.u8(1 if constant.value else 0)
        elif isinstance(constant, values.ConstantNull):
            out.u8(CONST_NULL)
            out.vbr(self.types.of(constant.type))
        elif isinstance(constant, values.UndefValue):
            out.u8(CONST_UNDEF)
            out.vbr(self.types.of(constant.type))
        elif isinstance(constant, (GlobalVariable, Function)):
            out.u8(CONST_SYMBOL)
            out.vbr(self.symbol_index[id(constant)])
        elif isinstance(constant, values.ConstantArray):
            out.u8(CONST_ARRAY)
            out.vbr(self.types.of(constant.type))
            element_type = constant.type.element
            out.vbr(len(constant.elements))
            for element in constant.elements:
                self._write_constant(element, element_type)
        elif isinstance(constant, values.ConstantStruct):
            out.u8(CONST_STRUCT)
            out.vbr(self.types.of(constant.type))
            out.vbr(len(constant.elements))
            for element, fieldtype in zip(constant.elements,
                                          constant.type.fields):
                self._write_constant(element, fieldtype)
        elif isinstance(constant, values.ConstantZero):
            out.u8(CONST_ZERO)
            out.vbr(self.types.of(type_))
        else:
            raise BitcodeError(
                "cannot encode constant {0!r}".format(constant))

    # -- bodies ---------------------------------------------------------------------

    def _write_bodies(self) -> None:
        for function in self.module.functions.values():
            if not function.is_declaration:
                self._write_body(function)

    def _write_body(self, function: Function) -> None:
        out = self.out
        # Build the unified value-id space.
        pool: List[values.Constant] = []
        pool_index: Dict[int, int] = {}
        for block in function.blocks:
            for inst in block.instructions:
                for operand in inst.operands:
                    if isinstance(operand, values.Constant) \
                            and id(operand) not in pool_index:
                        pool_index[id(operand)] = len(pool)
                        pool.append(operand)
        value_ids: Dict[int, int] = dict(pool_index)
        next_id = len(pool)
        for arg in function.args:
            value_ids[id(arg)] = next_id
            next_id += 1
        for block in function.blocks:
            value_ids[id(block)] = next_id
            next_id += 1
        instruction_list: List[insts.Instruction] = []
        for block in function.blocks:
            for inst in block.instructions:
                value_ids[id(inst)] = next_id
                next_id += 1
                instruction_list.append(inst)
        # Emit.
        out.vbr(len(pool))
        for constant in pool:
            self._write_constant(constant, constant.type)
        out.vbr(len(function.blocks))
        for block in function.blocks:
            out.vbr(len(block.instructions))
            for inst in block.instructions:
                self._write_instruction(inst, value_ids)
        if not self.strip_names:
            named = [(value_ids[id(v)], v.name)
                     for v in instruction_list if v.name]
            named += [(value_ids[id(b)], b.name)
                      for b in function.blocks if b.name]
            out.vbr(len(named))
            for value_id, name in sorted(named):
                out.vbr(value_id)
                out.string(name)

    def _write_instruction(self, inst: insts.Instruction,
                           value_ids: Dict[int, int]) -> None:
        opcode_index = OPCODE_INDEX[inst.opcode]
        ee_default = inst.opcode in insts.DEFAULT_EXCEPTIONS_ENABLED
        ee_flag = inst.exceptions_enabled != ee_default
        # The stored type is always the result type; implicit types (an
        # alloca's allocated type, a cast's target) are recovered from it.
        type_index = self.types.of(inst.type)
        operands = tuple(value_ids[id(op)] for op in inst.operands)
        self.out.instruction(opcode_index, ee_flag, type_index, operands)
