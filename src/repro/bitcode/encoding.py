"""Primitive encodings for LLVA virtual object code.

Section 3.1: "To support an infinite register set, we use a self-extending
instruction encoding, but define a fixed-size 32-bit format to hold small
instructions for compactness and translator efficiency."

The concrete scheme here:

* **Short form** — one little-endian ``uint32``::

      bit 31      = 0  (short-form marker)
      bit 30      = ExceptionsEnabled differs from the opcode default
      bits 24-29  = opcode (6 bits; 28 opcodes fit)
      bits 18-23  = result type index (6 bits)
      bits  9-17  = operand 1 value id (9 bits; 0x1FF = absent)
      bits  0-8   = operand 0 value id (9 bits; 0x1FF = absent)

  Usable whenever an instruction has at most two operands, a small type
  index, and small operand ids — which covers the bulk of real code and
  is what makes virtual object code smaller than native code (Table 2).

* **Long form** — the self-extension escape: a marker byte ``0x80 |
  flags`` followed by opcode byte, then VBR-coded type index, operand
  count, and operand ids.

* **VBR** — LEB128 variable-byte encoding for unsigned ints, with zigzag
  for signed values.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

SHORT_ABSENT = 0x1FF
SHORT_MAX_OPERAND = 0x1FE
SHORT_MAX_TYPE = 0x3F
LONG_MARKER = 0x80


class BitcodeError(Exception):
    """Malformed virtual object code."""


# ---------------------------------------------------------------------------
# Byte streams
# ---------------------------------------------------------------------------

class Writer:
    """An append-only byte buffer with the primitive encoders."""

    def __init__(self):
        self._chunks: List[bytes] = []
        #: Short/long instruction form counters (the compactness ablation).
        self.short_instructions = 0
        self.long_instructions = 0

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)

    def raw(self, data: bytes) -> None:
        self._chunks.append(data)

    def u8(self, value: int) -> None:
        self._chunks.append(bytes((value & 0xFF,)))

    def u32(self, value: int) -> None:
        self._chunks.append(struct.pack("<I", value & 0xFFFFFFFF))

    def f64(self, value: float) -> None:
        self._chunks.append(struct.pack("<d", value))

    def vbr(self, value: int) -> None:
        """LEB128 unsigned."""
        if value < 0:
            raise BitcodeError("vbr of negative value")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._chunks.append(bytes(out))

    def svbr(self, value: int) -> None:
        """Zigzag-coded signed VBR."""
        self.vbr((value << 1) ^ (value >> 63) if value < 0
                 else (value << 1))

    def string(self, text: str) -> None:
        data = text.encode("utf-8")
        self.vbr(len(data))
        self.raw(data)

    # -- instruction forms ------------------------------------------------------

    def short_instruction(self, opcode_index: int, ee_flag: bool,
                          type_index: int, operands: Tuple[int, ...]
                          ) -> None:
        word = 0
        if ee_flag:
            word |= 1 << 30
        word |= (opcode_index & 0x3F) << 24
        word |= (type_index & 0x3F) << 18
        op0 = operands[0] if len(operands) > 0 else SHORT_ABSENT
        op1 = operands[1] if len(operands) > 1 else SHORT_ABSENT
        word |= (op1 & 0x1FF) << 9
        word |= op0 & 0x1FF
        # Big-endian, so the form marker (bit 31) is in the first byte of
        # the stream, where the decoder peeks for it.
        self.raw(struct.pack(">I", word))
        self.short_instructions += 1

    def long_instruction(self, opcode_index: int, ee_flag: bool,
                         type_index: int, operands: Tuple[int, ...]
                         ) -> None:
        self.u8(LONG_MARKER | (1 if ee_flag else 0))
        self.u8(opcode_index)
        self.vbr(type_index)
        self.vbr(len(operands))
        for operand in operands:
            self.vbr(operand)
        self.long_instructions += 1

    #: Ablation knob: force every instruction into the long form to
    #: measure what the fixed 32-bit short format buys (Section 3.1).
    force_long_form = False

    def instruction(self, opcode_index: int, ee_flag: bool,
                    type_index: int, operands: Tuple[int, ...]) -> None:
        """Emit in short form when it fits, long form otherwise."""
        if (not self.force_long_form
                and len(operands) <= 2 and type_index <= SHORT_MAX_TYPE
                and all(op <= SHORT_MAX_OPERAND for op in operands)):
            self.short_instruction(opcode_index, ee_flag, type_index,
                                   operands)
        else:
            self.long_instruction(opcode_index, ee_flag, type_index,
                                  operands)


class Reader:
    """Sequential decoder over a bytes object."""

    def __init__(self, data: bytes):
        self.data = data
        self.position = 0

    def eof(self) -> bool:
        return self.position >= len(self.data)

    def raw(self, size: int) -> bytes:
        if self.position + size > len(self.data):
            raise BitcodeError("truncated object code")
        out = self.data[self.position:self.position + size]
        self.position += size
        return out

    def u8(self) -> int:
        return self.raw(1)[0]

    def peek_u8(self) -> int:
        if self.position >= len(self.data):
            raise BitcodeError("truncated object code")
        return self.data[self.position]

    def u32(self) -> int:
        return struct.unpack("<I", self.raw(4))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.raw(8))[0]

    def vbr(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.u8()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise BitcodeError("runaway vbr")

    def svbr(self) -> int:
        raw = self.vbr()
        return (raw >> 1) ^ -(raw & 1)

    def string(self) -> str:
        length = self.vbr()
        return self.raw(length).decode("utf-8")

    def instruction(self) -> Tuple[int, bool, int, Tuple[int, ...]]:
        """Decode one instruction: (opcode_index, ee_flag, type_index,
        operand ids)."""
        marker = self.peek_u8()
        if marker & LONG_MARKER:
            self.u8()
            ee_flag = bool(marker & 1)
            opcode_index = self.u8()
            type_index = self.vbr()
            count = self.vbr()
            operands = tuple(self.vbr() for _ in range(count))
            return opcode_index, ee_flag, type_index, operands
        word = struct.unpack(">I", self.raw(4))[0]
        ee_flag = bool(word & (1 << 30))
        opcode_index = (word >> 24) & 0x3F
        type_index = (word >> 18) & 0x3F
        op0 = word & 0x1FF
        op1 = (word >> 9) & 0x1FF
        operands: Tuple[int, ...]
        if op0 == SHORT_ABSENT:
            operands = ()
        elif op1 == SHORT_ABSENT:
            operands = (op0,)
        else:
            operands = (op0, op1)
        return opcode_index, ee_flag, type_index, operands
