"""Tokenizer for MiniC, the C-subset front-end language.

MiniC stands in for the paper's GCC-based C front-end: it exists to
author realistic workloads (the Table 2 suite) that compile to LLVA the
same way C does — explicit allocas, typed geps, calls, loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {
    "int", "long", "uint", "ulong", "short", "ushort", "char", "uchar",
    "float", "double", "void", "bool", "true", "false",
    "struct", "sizeof", "if", "else", "while", "for", "do", "return",
    "break", "continue", "null", "switch", "case", "default",
}

# Longest first so '>>'/'>=' beat '>'.
OPERATORS = (
    "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
)


class MiniCSyntaxError(Exception):
    def __init__(self, message: str, line: int):
        super().__init__("line {0}: {1}".format(line, message))
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # 'keyword' | 'ident' | 'int' | 'float' | 'char'
    #          | 'string' | operator literal | 'eof'
    text: str
    line: int

    def __repr__(self) -> str:
        return "<{0} {1!r} @{2}>".format(self.kind, self.text, self.line)


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    position = 0
    length = len(source)
    while position < length:
        char = source[position]
        if char == "\n":
            line += 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            continue
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end < 0 else end
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end < 0:
                raise MiniCSyntaxError("unterminated comment", line)
            line += source.count("\n", position, end)
            position = end + 2
            continue
        if char.isalpha() or char == "_":
            end = position
            while end < length and (source[end].isalnum()
                                    or source[end] == "_"):
                end += 1
            text = source[position:end]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            position = end
            continue
        if char.isdigit():
            token, position = _lex_number(source, position, line)
            tokens.append(token)
            continue
        if char == "'":
            token, position = _lex_char(source, position, line)
            tokens.append(token)
            continue
        if char == '"':
            token, position = _lex_string(source, position, line)
            tokens.append(token)
            continue
        for operator in OPERATORS:
            if source.startswith(operator, position):
                tokens.append(Token(operator, operator, line))
                position += len(operator)
                break
        else:
            raise MiniCSyntaxError(
                "unexpected character {0!r}".format(char), line)
    tokens.append(Token("eof", "", line))
    return tokens


def _lex_number(source: str, position: int, line: int):
    start = position
    length = len(source)
    if source.startswith("0x", position) or source.startswith("0X",
                                                              position):
        position += 2
        while position < length and source[position] in \
                "0123456789abcdefABCDEF":
            position += 1
        return Token("int", source[start:position], line), position
    while position < length and source[position].isdigit():
        position += 1
    is_float = False
    if position < length and source[position] == "." \
            and position + 1 < length and source[position + 1].isdigit():
        is_float = True
        position += 1
        while position < length and source[position].isdigit():
            position += 1
    if position < length and source[position] in "eE":
        lookahead = position + 1
        if lookahead < length and source[lookahead] in "+-":
            lookahead += 1
        if lookahead < length and source[lookahead].isdigit():
            is_float = True
            position = lookahead
            while position < length and source[position].isdigit():
                position += 1
    suffix = ""
    while position < length and source[position] in "uUlLfF":
        suffix += source[position].lower()
        position += 1
    text = source[start:position]
    if "f" in suffix:
        is_float = True
    return Token("float" if is_float else "int", text, line), position


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            "'": "'", '"': '"'}


def _lex_char(source: str, position: int, line: int):
    position += 1  # opening quote
    if position >= len(source):
        raise MiniCSyntaxError("unterminated character literal", line)
    char = source[position]
    if char == "\\":
        position += 1
        if position >= len(source):
            raise MiniCSyntaxError("unterminated character literal",
                                   line)
        char = _ESCAPES.get(source[position])
        if char is None:
            raise MiniCSyntaxError("bad escape", line)
    position += 1
    if position >= len(source) or source[position] != "'":
        raise MiniCSyntaxError("unterminated character literal", line)
    return Token("char", char, line), position + 1


def _lex_string(source: str, position: int, line: int):
    position += 1
    out: List[str] = []
    while position < len(source) and source[position] != '"':
        char = source[position]
        if char == "\\":
            position += 1
            if position >= len(source):
                raise MiniCSyntaxError("unterminated string literal",
                                       line)
            char = _ESCAPES.get(source[position])
            if char is None:
                raise MiniCSyntaxError("bad escape", line)
        elif char == "\n":
            raise MiniCSyntaxError("newline in string literal", line)
        out.append(char)
        position += 1
    if position >= len(source):
        raise MiniCSyntaxError("unterminated string literal", line)
    return Token("string", "".join(out), line), position + 1
