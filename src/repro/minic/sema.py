"""MiniC semantic context: type resolution and symbol tables."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir import types
from repro.minic import ast
from repro.minic.lexer import MiniCSyntaxError

_BASE_TYPES: Dict[str, types.Type] = {
    "void": types.VOID,
    "bool": types.BOOL,
    "char": types.SBYTE,
    "uchar": types.UBYTE,
    "short": types.SHORT,
    "ushort": types.USHORT,
    "int": types.INT,
    "uint": types.UINT,
    "long": types.LONG,
    "ulong": types.ULONG,
    "float": types.FLOAT,
    "double": types.DOUBLE,
}

#: Promotion rank for the usual arithmetic conversions.
_RANK = {
    types.BOOL: 0,
    types.SBYTE: 1, types.UBYTE: 1,
    types.SHORT: 2, types.USHORT: 2,
    types.INT: 3, types.UINT: 3,
    types.LONG: 4, types.ULONG: 4,
    types.FLOAT: 5,
    types.DOUBLE: 6,
}


class MiniCTypeError(MiniCSyntaxError):
    """A MiniC type-checking failure."""


class StructInfo:
    """One declared struct: its LLVA type and field name table."""

    def __init__(self, name: str, llva_type: types.StructType):
        self.name = name
        self.llva_type = llva_type
        self.field_index: Dict[str, int] = {}
        self.field_types: List[types.Type] = []

    def field(self, name: str, line: int) -> Tuple[int, types.Type]:
        index = self.field_index.get(name)
        if index is None:
            raise MiniCTypeError(
                "struct {0} has no field {1!r}".format(self.name, name),
                line)
        return index, self.field_types[index]


class TypeContext:
    """Resolves syntactic MiniC types to LLVA types."""

    def __init__(self):
        self.structs: Dict[str, StructInfo] = {}
        self._struct_of_type: Dict[int, StructInfo] = {}

    def declare_struct(self, decl: ast.StructDecl) -> StructInfo:
        if decl.name in self.structs:
            info = self.structs[decl.name]
            if not info.llva_type.is_opaque:
                raise MiniCTypeError(
                    "struct {0} redefined".format(decl.name), decl.line)
        else:
            info = StructInfo(
                decl.name, types.named_struct("struct." + decl.name))
            self.structs[decl.name] = info
            self._struct_of_type[id(info.llva_type)] = info
        fields: List[types.Type] = []
        for index, (field_type, field_name) in enumerate(decl.fields):
            resolved = self.resolve(field_type)
            info.field_index[field_name] = index
            fields.append(resolved)
        info.field_types = fields
        info.llva_type.set_body(fields)
        return info

    def struct_ref(self, name: str, line: int) -> StructInfo:
        info = self.structs.get(name)
        if info is None:
            # Forward reference: an opaque struct is fine behind a
            # pointer (linked data structures).
            info = StructInfo(name, types.named_struct("struct." + name))
            self.structs[name] = info
            self._struct_of_type[id(info.llva_type)] = info
        return info

    def struct_info_for(self, llva_type: types.Type,
                        line: int) -> StructInfo:
        info = self._struct_of_type.get(id(llva_type))
        if info is None:
            raise MiniCTypeError("not a struct type", line)
        return info

    def resolve(self, type_name: ast.TypeName) -> types.Type:
        if type_name.base.startswith("struct "):
            struct_name = type_name.base[len("struct "):]
            resolved: types.Type = self.struct_ref(
                struct_name, type_name.line).llva_type
        else:
            resolved = _BASE_TYPES.get(type_name.base)
            if resolved is None:
                raise MiniCTypeError(
                    "unknown type {0!r}".format(type_name.base),
                    type_name.line)
        for _ in range(type_name.pointer_depth):
            if resolved.is_void:
                resolved = types.SBYTE  # void* spelled as sbyte*
            resolved = types.pointer_to(resolved)
        for dim in reversed(type_name.array_dims):
            resolved = types.array_of(resolved, dim)
        return resolved


def arithmetic_result_type(lhs: types.Type, rhs: types.Type,
                           line: int) -> types.Type:
    """The usual arithmetic conversions, simplified."""
    if lhs is rhs:
        return _promote_small(lhs)
    rank_l, rank_r = _RANK.get(lhs), _RANK.get(rhs)
    if rank_l is None or rank_r is None:
        raise MiniCTypeError("invalid arithmetic operands", line)
    winner = lhs if rank_l >= rank_r else rhs
    if rank_l == rank_r and not winner.is_floating_point:
        # Same-rank signed/unsigned: unsigned wins, as in C.
        if lhs.is_unsigned or rhs.is_unsigned:
            winner = lhs if lhs.is_unsigned else rhs
    return _promote_small(winner)


def _promote_small(type_: types.Type) -> types.Type:
    """Integer promotion: sub-int operands compute at int width."""
    if type_ in (types.BOOL, types.SBYTE, types.SHORT):
        return types.INT
    if type_ in (types.UBYTE, types.USHORT):
        return types.INT  # values always fit
    return type_
