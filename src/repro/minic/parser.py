"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.minic import ast
from repro.minic.lexer import MiniCSyntaxError, Token, tokenize

_TYPE_KEYWORDS = {
    "int", "long", "uint", "ulong", "short", "ushort", "char", "uchar",
    "float", "double", "void", "bool",
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

# Binary precedence levels, loosest first.
_BINARY_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


def parse_program(source: str) -> ast.Program:
    from repro import observe

    with observe.span("minic.lex"):
        tokens = tokenize(source)
    with observe.span("minic.parse", tokens=len(tokens)):
        return _Parser(tokens).parse_program()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- plumbing ------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.advance()
        if token.kind != kind:
            raise MiniCSyntaxError(
                "expected {0!r}, found {1!r}".format(kind, token.text),
                token.line)
        return token

    def accept(self, kind: str) -> Optional[Token]:
        if self.peek().kind == kind:
            return self.advance()
        return None

    def accept_keyword(self, word: str) -> Optional[Token]:
        token = self.peek()
        if token.kind == "keyword" and token.text == word:
            return self.advance()
        return None

    # -- types ------------------------------------------------------------------

    def at_type(self, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token.kind == "keyword" and (
            token.text in _TYPE_KEYWORDS or token.text == "struct")

    def parse_type(self) -> ast.TypeName:
        token = self.advance()
        line = token.line
        if token.kind != "keyword":
            raise MiniCSyntaxError("expected a type", line)
        if token.text == "struct":
            name_token = self.expect("ident")
            base = "struct " + name_token.text
        elif token.text in _TYPE_KEYWORDS:
            base = token.text
        else:
            raise MiniCSyntaxError(
                "expected a type, found {0!r}".format(token.text), line)
        depth = 0
        while self.accept("*"):
            depth += 1
        return ast.TypeName(base=base, pointer_depth=depth, line=line)

    def _parse_array_suffix(self, type_name: ast.TypeName
                            ) -> ast.TypeName:
        dims: List[int] = []
        while self.accept("["):
            if self.accept("]"):
                dims.append(0)      # size inferred from initializer
                continue
            size_token = self.expect("int")
            dims.append(_int_value(size_token.text))
            self.expect("]")
        if dims:
            type_name.array_dims = tuple(dims)
        return type_name

    # -- top level -----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program(line=1)
        while self.peek().kind != "eof":
            program.declarations.append(self._parse_top_level())
        return program

    def _parse_top_level(self) -> ast.Node:
        token = self.peek()
        if token.kind == "keyword" and token.text == "struct" \
                and self.peek(1).kind == "ident" \
                and self.peek(2).kind == "{":
            return self._parse_struct_decl()
        type_name = self.parse_type()
        name = self.expect("ident").text
        if self.peek().kind == "(":
            return self._parse_function(type_name, name)
        type_name = self._parse_array_suffix(type_name)
        init: Optional[ast.Node] = None
        if self.accept("="):
            init = self._parse_initializer()
        self.expect(";")
        return ast.GlobalDecl(line=type_name.line, type_name=type_name,
                              name=name, init=init)

    def _parse_struct_decl(self) -> ast.StructDecl:
        line = self.advance().line  # 'struct'
        name = self.expect("ident").text
        self.expect("{")
        fields: List[Tuple[ast.TypeName, str]] = []
        while not self.accept("}"):
            field_type = self.parse_type()
            field_name = self.expect("ident").text
            field_type = self._parse_array_suffix(field_type)
            self.expect(";")
            fields.append((field_type, field_name))
        self.expect(";")
        return ast.StructDecl(line=line, name=name, fields=fields)

    def _parse_function(self, return_type: ast.TypeName,
                        name: str) -> ast.FunctionDecl:
        self.expect("(")
        params: List[ast.Param] = []
        if not self.accept(")"):
            if self.accept_keyword("void") and self.peek().kind == ")":
                self.advance()
            else:
                while True:
                    param_type = self.parse_type()
                    param_name = self.expect("ident").text
                    # Array parameters decay to pointers, as in C.
                    param_type = self._parse_array_suffix(param_type)
                    params.append(ast.Param(line=param_type.line,
                                            type_name=param_type,
                                            name=param_name))
                    if not self.accept(","):
                        break
                self.expect(")")
        body: Optional[ast.Block] = None
        if self.peek().kind == "{":
            body = self.parse_block()
        else:
            self.expect(";")
        return ast.FunctionDecl(line=return_type.line,
                                return_type=return_type, name=name,
                                params=params, body=body)

    # -- statements --------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_token = self.expect("{")
        block = ast.Block(line=open_token.line)
        while not self.accept("}"):
            block.statements.append(self.parse_statement())
        return block

    def parse_statement(self) -> ast.Node:
        token = self.peek()
        if token.kind == "{":
            return self.parse_block()
        if token.kind == "keyword":
            keyword = token.text
            if keyword == "if":
                return self._parse_if()
            if keyword == "while":
                return self._parse_while()
            if keyword == "do":
                return self._parse_do_while()
            if keyword == "for":
                return self._parse_for()
            if keyword == "return":
                self.advance()
                value = None
                if self.peek().kind != ";":
                    value = self.parse_expression()
                self.expect(";")
                return ast.Return(line=token.line, value=value)
            if keyword == "break":
                self.advance()
                self.expect(";")
                return ast.Break(line=token.line)
            if keyword == "continue":
                self.advance()
                self.expect(";")
                return ast.Continue(line=token.line)
            if keyword == "switch":
                return self._parse_switch()
        if self.at_type() and not (token.text == "struct"
                                   and self.peek(2).kind != "ident"
                                   and self.peek(2).kind != "*"):
            return self._parse_var_decl()
        expr = self.parse_expression()
        self.expect(";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def _parse_var_decl(self) -> ast.Node:
        type_name = self.parse_type()
        name = self.expect("ident").text
        type_name = self._parse_array_suffix(type_name)
        init: Optional[ast.Node] = None
        if self.accept("="):
            init = self._parse_initializer()
        self.expect(";")
        return ast.VarDecl(line=type_name.line, type_name=type_name,
                           name=name, init=init)

    def _parse_initializer(self) -> ast.Node:
        """An expression, or a brace-enclosed initializer list."""
        if self.peek().kind == "{":
            open_token = self.advance()
            elements: List[ast.Node] = []
            if not self.accept("}"):
                while True:
                    elements.append(self._parse_initializer())
                    if not self.accept(","):
                        break
                self.expect("}")
            return ast.InitializerList(line=open_token.line,
                                       elements=elements)
        return self.parse_expression()

    def _parse_if(self) -> ast.If:
        line = self.advance().line
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        then_body = self.parse_statement()
        else_body = None
        if self.accept_keyword("else"):
            else_body = self.parse_statement()
        return ast.If(line=line, condition=condition,
                      then_body=then_body, else_body=else_body)

    def _parse_while(self) -> ast.While:
        line = self.advance().line
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return ast.While(line=line, condition=condition, body=body)

    def _parse_do_while(self) -> ast.While:
        line = self.advance().line
        body = self.parse_statement()
        if not self.accept_keyword("while"):
            raise MiniCSyntaxError("expected 'while' after do-body", line)
        self.expect("(")
        condition = self.parse_expression()
        self.expect(")")
        self.expect(";")
        return ast.While(line=line, condition=condition, body=body,
                         is_do_while=True)

    def _parse_for(self) -> ast.For:
        line = self.advance().line
        self.expect("(")
        init: Optional[ast.Node] = None
        if not self.accept(";"):
            if self.at_type():
                init = self._parse_var_decl()  # consumes ';'
            else:
                expr = self.parse_expression()
                self.expect(";")
                init = ast.ExprStmt(line=line, expr=expr)
        condition: Optional[ast.Node] = None
        if not self.accept(";"):
            condition = self.parse_expression()
            self.expect(";")
        step: Optional[ast.Node] = None
        if self.peek().kind != ")":
            step = self.parse_expression()
        self.expect(")")
        body = self.parse_statement()
        return ast.For(line=line, init=init, condition=condition,
                       step=step, body=body)

    def _parse_switch(self) -> ast.Switch:
        line = self.advance().line
        self.expect("(")
        selector = self.parse_expression()
        self.expect(")")
        self.expect("{")
        cases: List[Tuple[Optional[int], List[ast.Node]]] = []
        current: Optional[List[ast.Node]] = None
        while not self.accept("}"):
            if self.accept_keyword("case"):
                sign = -1 if self.accept("-") else 1
                value_token = self.expect("int")
                self.expect(":")
                current = []
                cases.append((sign * _int_value(value_token.text),
                              current))
            elif self.accept_keyword("default"):
                self.expect(":")
                current = []
                cases.append((None, current))
            else:
                if current is None:
                    raise MiniCSyntaxError(
                        "statement before first case label",
                        self.peek().line)
                current.append(self.parse_statement())
        return ast.Switch(line=line, selector=selector, cases=cases)

    # -- expressions ------------------------------------------------------------------------

    def parse_expression(self) -> ast.Node:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Node:
        left = self._parse_conditional()
        token = self.peek()
        if token.kind in _ASSIGN_OPS:
            self.advance()
            value = self._parse_assignment()
            return ast.Assign(line=token.line, op=token.kind,
                              target=left, value=value)
        return left

    def _parse_conditional(self) -> ast.Node:
        condition = self._parse_binary(0)
        if self.peek().kind == "?":
            line = self.advance().line
            if_true = self.parse_expression()
            self.expect(":")
            if_false = self._parse_conditional()
            return ast.Conditional(line=line, condition=condition,
                                   if_true=if_true, if_false=if_false)
        return condition

    def _parse_binary(self, level: int) -> ast.Node:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        ops = _BINARY_LEVELS[level]
        while self.peek().kind in ops:
            token = self.advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(line=token.line, op=token.kind,
                              lhs=left, rhs=right)
        return left

    def _parse_unary(self) -> ast.Node:
        token = self.peek()
        if token.kind in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self._parse_unary()
            return ast.Unary(line=token.line, op=token.kind,
                             operand=operand)
        if token.kind in ("++", "--"):
            self.advance()
            target = self._parse_unary()
            return ast.IncDec(line=token.line, op=token.kind,
                              target=target, prefix=True)
        if token.kind == "(" and self.at_type(1):
            self.advance()
            type_name = self.parse_type()
            self.expect(")")
            operand = self._parse_unary()
            return ast.CastExpr(line=token.line, type_name=type_name,
                                operand=operand)
        if token.kind == "keyword" and token.text == "sizeof":
            self.advance()
            self.expect("(")
            type_name = self.parse_type()
            type_name = self._parse_array_suffix(type_name)
            self.expect(")")
            return ast.SizeofExpr(line=token.line, type_name=type_name)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Node:
        expr = self._parse_primary()
        while True:
            token = self.peek()
            if token.kind == "[":
                self.advance()
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(line=token.line, base=expr, index=index)
            elif token.kind == ".":
                self.advance()
                name = self.expect("ident").text
                expr = ast.Member(line=token.line, base=expr, name=name,
                                  arrow=False)
            elif token.kind == "->":
                self.advance()
                name = self.expect("ident").text
                expr = ast.Member(line=token.line, base=expr, name=name,
                                  arrow=True)
            elif token.kind in ("++", "--"):
                self.advance()
                expr = ast.IncDec(line=token.line, op=token.kind,
                                  target=expr, prefix=False)
            else:
                return expr

    def _parse_primary(self) -> ast.Node:
        token = self.advance()
        if token.kind == "int":
            return ast.IntLiteral(line=token.line,
                                  value=_int_value(token.text),
                                  suffix=_int_suffix(token.text))
        if token.kind == "float":
            text = token.text.rstrip("fFlL")
            return ast.FloatLiteral(line=token.line, value=float(text),
                                    is_single="f" in token.text.lower())
        if token.kind == "char":
            return ast.CharLiteral(line=token.line, value=token.text)
        if token.kind == "string":
            return ast.StringLiteral(line=token.line, value=token.text)
        if token.kind == "keyword" and token.text in ("true", "false"):
            return ast.BoolLiteral(line=token.line,
                                   value=token.text == "true")
        if token.kind == "keyword" and token.text == "null":
            return ast.NullLiteral(line=token.line)
        if token.kind == "ident":
            if self.peek().kind == "(":
                self.advance()
                args: List[ast.Node] = []
                if not self.accept(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept(","):
                            break
                    self.expect(")")
                return ast.Call(line=token.line, name=token.text,
                                args=args)
            return ast.Identifier(line=token.line, name=token.text)
        if token.kind == "(":
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise MiniCSyntaxError(
            "unexpected token {0!r}".format(token.text), token.line)


def _int_value(text: str) -> int:
    text = text.rstrip("uUlL")
    if text.lower().startswith("0x"):
        return int(text, 16)
    return int(text)


def _int_suffix(text: str) -> str:
    suffix = ""
    for char in reversed(text):
        if char in "uUlL":
            suffix = char.lower() + suffix
        else:
            break
    return suffix
