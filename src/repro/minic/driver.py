"""MiniC compilation driver: source text to verified LLVA module."""

from __future__ import annotations


from repro import observe
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.minic.codegen import generate
from repro.minic.parser import parse_program
from repro.transforms.pass_manager import optimize


def compile_source(source: str, module_name: str = "minic",
                   optimization_level: int = 0,
                   pointer_size: int = 8,
                   endianness: str = "little",
                   link_time: bool = False,
                   vectorize: bool = False) -> Module:
    """Compile MiniC *source* into a verified LLVA module.

    ``optimization_level`` applies the standard machine-independent
    pipeline (Section 4.2 item 1) after code generation; ``link_time``
    additionally runs the interprocedural link-time pipeline;
    ``vectorize`` appends the loop autovectorizer to either pipeline.
    """
    with observe.span("minic.compile", module=module_name,
                      optimization_level=optimization_level,
                      link_time=link_time):
        program = parse_program(source)
        module = generate(program, module_name, pointer_size,
                          endianness)
        with observe.span("minic.verify"):
            verify_module(module)
        if link_time:
            optimize(module, link_time=True, vectorize=vectorize)
            with observe.span("minic.verify"):
                verify_module(module)
        elif optimization_level > 0 or vectorize:
            optimize(module, level=optimization_level,
                     vectorize=vectorize)
            with observe.span("minic.verify"):
                verify_module(module)
    return module
