"""MiniC → LLVA code generation.

Emits exactly the patterns the paper attributes to its C front-end:
an ``alloca`` per local variable accessed through loads and stores
(mem2reg recovers SSA), ``getelementptr`` for every array/struct access,
explicit casts for every conversion (LLVA has no implicit coercion),
short-circuit control flow for ``&&``/``||``, and ordinary calls for
``malloc``/``free``/output routines.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.execution.runtime import RUNTIME_SIGNATURES
from repro.ir import types, values
from repro.ir.builder import IRBuilder
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.values import Value, const_bool, const_fp, const_int, \
    const_null, const_zero
from repro.minic import ast
from repro.minic.sema import (
    MiniCTypeError,
    TypeContext,
    arithmetic_result_type,
)

_CMP_OPS = {"==": "eq", "!=": "ne", "<": "lt", ">": "gt",
            "<=": "le", ">=": "ge"}
_ARITH_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
              "&": "and", "|": "or", "^": "xor"}


class CodeGenerator:
    """Compiles one MiniC program into a fresh LLVA module."""

    def __init__(self, module_name: str = "minic",
                 pointer_size: int = 8, endianness: str = "little"):
        self.module = Module(module_name, pointer_size, endianness)
        self.context = TypeContext()
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, Tuple[Value, types.Type]] = {}
        self._string_counter = 0

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------

    def generate(self, program: ast.Program) -> Module:
        from repro import observe

        bodies: List[ast.FunctionDecl] = []
        # Declaration processing is MiniC's semantic-analysis phase:
        # struct/type resolution, global typing, signature checking.
        with observe.span("minic.sema",
                          declarations=len(program.declarations)):
            for decl in program.declarations:
                if isinstance(decl, ast.StructDecl):
                    info = self.context.declare_struct(decl)
                    self.module.named_types.setdefault(
                        info.llva_type.name, info.llva_type)
                elif isinstance(decl, ast.GlobalDecl):
                    self._emit_global(decl)
                elif isinstance(decl, ast.FunctionDecl):
                    self._declare_function(decl)
                    if decl.body is not None:
                        bodies.append(decl)
                else:
                    raise MiniCTypeError("bad top-level declaration",
                                         decl.line)
        with observe.span("minic.codegen", functions=len(bodies)):
            for decl in bodies:
                _FunctionEmitter(self, decl).emit()
        return self.module

    def _emit_global(self, decl: ast.GlobalDecl) -> None:
        _infer_array_length(decl.type_name, decl.init)
        value_type = self.context.resolve(decl.type_name)
        if decl.init is not None:
            initializer = self._constant_initializer(decl.init,
                                                     value_type)
        else:
            initializer = const_zero(value_type)
        variable = self.module.create_global(decl.name, value_type,
                                             initializer)
        self.globals[decl.name] = (variable, value_type)

    def _constant_initializer(self, node: ast.Node,
                              value_type: types.Type):
        if isinstance(node, ast.InitializerList):
            return self._aggregate_initializer(node, value_type)
        if isinstance(node, ast.IntLiteral):
            if value_type.is_floating_point:
                return const_fp(value_type, float(node.value))
            if value_type.is_integer:
                return const_int(value_type,
                                 value_type.wrap(node.value))
        if isinstance(node, ast.FloatLiteral) \
                and value_type.is_floating_point:
            return const_fp(value_type, node.value)
        if isinstance(node, ast.BoolLiteral) and value_type.is_bool:
            return const_bool(node.value)
        if isinstance(node, ast.NullLiteral) and value_type.is_pointer:
            return const_null(value_type)
        if isinstance(node, ast.Unary) and node.op == "-":
            inner = self._constant_initializer(node.operand, value_type)
            if isinstance(inner, values.ConstantInt):
                return const_int(value_type,
                                 value_type.wrap(-inner.value))
            if isinstance(inner, values.ConstantFP):
                return const_fp(value_type, -inner.value)
        if isinstance(node, ast.Binary) and value_type.is_integer:
            lhs = self._constant_initializer(node.lhs, value_type)
            rhs = self._constant_initializer(node.rhs, value_type)
            if isinstance(lhs, values.ConstantInt) \
                    and isinstance(rhs, values.ConstantInt):
                folded = _fold_int_init(node.op, lhs.value, rhs.value,
                                        node.line)
                return const_int(value_type, value_type.wrap(folded))
        raise MiniCTypeError("unsupported global initializer", node.line)

    def _aggregate_initializer(self, node: ast.InitializerList,
                               value_type: types.Type):
        """Brace initializer: arrays (padded with zeros, as in C) and
        structs (one element per field)."""
        if value_type.is_array:
            if len(node.elements) > value_type.length:
                raise MiniCTypeError(
                    "too many initializers for array of {0}"
                    .format(value_type.length), node.line)
            elements = [
                self._constant_initializer(element, value_type.element)
                for element in node.elements
            ]
            while len(elements) < value_type.length:
                elements.append(const_zero(value_type.element))
            return values.ConstantArray(value_type.element, elements)
        if value_type.is_struct:
            if len(node.elements) != len(value_type.fields):
                raise MiniCTypeError(
                    "struct initializer must cover every field",
                    node.line)
            elements = [
                self._constant_initializer(element, field)
                for element, field in zip(node.elements,
                                          value_type.fields)
            ]
            return values.ConstantStruct(value_type, elements)
        raise MiniCTypeError(
            "brace initializer for non-aggregate type", node.line)

    def _declare_function(self, decl: ast.FunctionDecl) -> Function:
        existing = self.functions.get(decl.name)
        return_type = self.context.resolve(decl.return_type)
        param_types = [self.context.resolve(p.type_name)
                       for p in decl.params]
        # Array parameters decay to pointers, as in C.
        param_types = [
            types.pointer_to(p.element) if p.is_array else p
            for p in param_types
        ]
        fn_type = types.function_of(return_type, param_types)
        if existing is not None:
            if existing.function_type is not fn_type:
                raise MiniCTypeError(
                    "conflicting declarations of {0}".format(decl.name),
                    decl.line)
            return existing
        function = self.module.create_function(
            decl.name, fn_type, [p.name for p in decl.params])
        self.functions[decl.name] = function
        return function

    def runtime_function(self, name: str) -> Function:
        signature = RUNTIME_SIGNATURES[name]
        function = self.module.get_or_declare_function(name, signature)
        self.functions.setdefault(name, function)
        return function

    def intern_string(self, text: str) -> Value:
        constant = values.make_string_constant(text.encode("latin-1"))
        name = ".str{0}".format(self._string_counter)
        self._string_counter += 1
        variable = self.module.create_global(
            name, constant.type, constant, is_constant=True,
            internal=True)
        return variable


class _LoopContext:
    def __init__(self, break_block: BasicBlock,
                 continue_block: BasicBlock):
        self.break_block = break_block
        self.continue_block = continue_block


class _FunctionEmitter:
    """Emits the body of one function."""

    def __init__(self, generator: CodeGenerator,
                 decl: ast.FunctionDecl):
        self.gen = generator
        self.decl = decl
        self.function = generator.functions[decl.name]
        self.builder = IRBuilder()
        self.scopes: List[Dict[str, Tuple[Value, types.Type]]] = []
        self.loops: List[_LoopContext] = []
        self._block_counter = 0

    # -- plumbing ------------------------------------------------------------

    @property
    def module(self) -> Module:
        return self.gen.module

    @property
    def context(self) -> TypeContext:
        return self.gen.context

    def new_block(self, stem: str) -> BasicBlock:
        self._block_counter += 1
        return self.function.add_block(
            "{0}{1}".format(stem, self._block_counter))

    def terminated(self) -> bool:
        return self.builder.block.has_terminator()

    def lookup(self, name: str, line: int) -> Tuple[Value, types.Type]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.gen.globals:
            return self.gen.globals[name]
        raise MiniCTypeError("undefined variable {0!r}".format(name),
                             line)

    # -- entry ------------------------------------------------------------------

    def emit(self) -> None:
        entry = self.function.add_block("entry")
        self.builder.set_block(entry)
        self.scopes.append({})
        # Spill parameters into allocas so they are ordinary lvalues.
        for param, arg in zip(self.decl.params, self.function.args):
            slot = self.builder.alloca(arg.type, name=param.name + ".addr")
            self.builder.store(arg, slot)
            self.scopes[-1][param.name] = (slot, arg.type)
        self.emit_block(self.decl.body)
        # Implicit return at the end of the function.
        for block in self.function.blocks:
            if not block.has_terminator():
                self.builder.set_block(block)
                return_type = self.function.return_type
                if return_type.is_void:
                    self.builder.ret()
                else:
                    self.builder.ret(const_zero(return_type))
        self.scopes.pop()

    # -- statements -----------------------------------------------------------------

    def emit_block(self, block: ast.Block) -> None:
        self.scopes.append({})
        for statement in block.statements:
            if self.terminated():
                break  # unreachable code is dropped, like a compiler
            self.emit_statement(statement)
        self.scopes.pop()

    def emit_statement(self, node: ast.Node) -> None:
        if isinstance(node, ast.Block):
            self.emit_block(node)
        elif isinstance(node, ast.VarDecl):
            self._emit_var_decl(node)
        elif isinstance(node, ast.ExprStmt):
            self.emit_expr(node.expr)
        elif isinstance(node, ast.If):
            self._emit_if(node)
        elif isinstance(node, ast.While):
            self._emit_while(node)
        elif isinstance(node, ast.For):
            self._emit_for(node)
        elif isinstance(node, ast.Return):
            self._emit_return(node)
        elif isinstance(node, ast.Break):
            if not self.loops:
                raise MiniCTypeError("break outside loop", node.line)
            self.builder.br(self.loops[-1].break_block)
        elif isinstance(node, ast.Continue):
            if not self.loops:
                raise MiniCTypeError("continue outside loop", node.line)
            self.builder.br(self.loops[-1].continue_block)
        elif isinstance(node, ast.Switch):
            self._emit_switch(node)
        else:
            raise MiniCTypeError("bad statement", node.line)

    def _emit_var_decl(self, node: ast.VarDecl) -> None:
        _infer_array_length(node.type_name, node.init)
        value_type = self.context.resolve(node.type_name)
        slot = self.builder.alloca(value_type, name=node.name)
        self.scopes[-1][node.name] = (slot, value_type)
        if isinstance(node.init, ast.InitializerList):
            self._store_initializer_list(slot, value_type, node.init)
        elif node.init is not None:
            value, actual = self.emit_expr(node.init)
            converted = self.convert(value, actual, value_type,
                                     node.line)
            self.builder.store(converted, slot)
        # Without an initializer, locals start uninitialized, as in C.

    def _store_initializer_list(self, address: Value,
                                value_type: types.Type,
                                node: ast.InitializerList) -> None:
        """Element-by-element stores for a local brace initializer;
        unlisted array elements are zeroed, as in C."""
        if value_type.is_array:
            if len(node.elements) > value_type.length:
                raise MiniCTypeError("too many initializers", node.line)
            for index in range(value_type.length):
                element_address = self.builder.gep(
                    address, [const_int(types.LONG, 0),
                              const_int(types.LONG, index)])
                if index < len(node.elements):
                    element = node.elements[index]
                    if isinstance(element, ast.InitializerList):
                        self._store_initializer_list(
                            element_address, value_type.element,
                            element)
                        continue
                    value, actual = self.emit_expr(element)
                    converted = self.convert(value, actual,
                                             value_type.element,
                                             node.line)
                    self.builder.store(converted, element_address)
                else:
                    # C zero-initializes the unwritten tail.
                    self._zero_fill(element_address,
                                    value_type.element)
            return
        if value_type.is_struct:
            if len(node.elements) != len(value_type.fields):
                raise MiniCTypeError(
                    "struct initializer must cover every field",
                    node.line)
            for index, (element, field) in enumerate(
                    zip(node.elements, value_type.fields)):
                field_address = self.builder.gep(
                    address, [const_int(types.LONG, 0),
                              const_int(types.UBYTE, index)])
                if isinstance(element, ast.InitializerList):
                    self._store_initializer_list(field_address, field,
                                                 element)
                    continue
                value, actual = self.emit_expr(element)
                converted = self.convert(value, actual, field,
                                         node.line)
                self.builder.store(converted, field_address)
            return
        raise MiniCTypeError(
            "brace initializer for non-aggregate type", node.line)

    def _zero_fill(self, address: Value, value_type: types.Type) -> None:
        if value_type.is_scalar:
            self.builder.store(const_zero(value_type), address)
            return
        if value_type.is_array:
            for index in range(value_type.length):
                element_address = self.builder.gep(
                    address, [const_int(types.LONG, 0),
                              const_int(types.LONG, index)])
                self._zero_fill(element_address, value_type.element)
            return
        for index, field in enumerate(value_type.fields):
            field_address = self.builder.gep(
                address, [const_int(types.LONG, 0),
                          const_int(types.UBYTE, index)])
            self._zero_fill(field_address, field)

    def _emit_if(self, node: ast.If) -> None:
        condition = self.emit_condition(node.condition)
        then_block = self.new_block("if.then")
        merge_block = self.new_block("if.end")
        else_block = merge_block
        if node.else_body is not None:
            else_block = self.new_block("if.else")
        self.builder.cond_br(condition, then_block, else_block)
        self.builder.set_block(then_block)
        self.emit_statement(node.then_body)
        if not self.terminated():
            self.builder.br(merge_block)
        if node.else_body is not None:
            self.builder.set_block(else_block)
            self.emit_statement(node.else_body)
            if not self.terminated():
                self.builder.br(merge_block)
        self.builder.set_block(merge_block)

    def _emit_while(self, node: ast.While) -> None:
        header = self.new_block("while.cond")
        body_block = self.new_block("while.body")
        exit_block = self.new_block("while.end")
        self.builder.br(body_block if node.is_do_while else header)
        self.builder.set_block(header)
        condition = self.emit_condition(node.condition)
        self.builder.cond_br(condition, body_block, exit_block)
        self.builder.set_block(body_block)
        self.loops.append(_LoopContext(exit_block, header))
        self.emit_statement(node.body)
        self.loops.pop()
        if not self.terminated():
            self.builder.br(header)
        self.builder.set_block(exit_block)

    def _emit_for(self, node: ast.For) -> None:
        self.scopes.append({})
        if node.init is not None:
            self.emit_statement(node.init)
        header = self.new_block("for.cond")
        body_block = self.new_block("for.body")
        step_block = self.new_block("for.step")
        exit_block = self.new_block("for.end")
        self.builder.br(header)
        self.builder.set_block(header)
        if node.condition is not None:
            condition = self.emit_condition(node.condition)
            self.builder.cond_br(condition, body_block, exit_block)
        else:
            self.builder.br(body_block)
        self.builder.set_block(body_block)
        self.loops.append(_LoopContext(exit_block, step_block))
        self.emit_statement(node.body)
        self.loops.pop()
        if not self.terminated():
            self.builder.br(step_block)
        self.builder.set_block(step_block)
        if node.step is not None:
            self.emit_expr(node.step)
        self.builder.br(header)
        self.builder.set_block(exit_block)
        self.scopes.pop()

    def _emit_return(self, node: ast.Return) -> None:
        return_type = self.function.return_type
        if return_type.is_void:
            if node.value is not None:
                raise MiniCTypeError("return with value in void function",
                                     node.line)
            self.builder.ret()
            return
        if node.value is None:
            raise MiniCTypeError("return without value", node.line)
        value, actual = self.emit_expr(node.value)
        self.builder.ret(self.convert(value, actual, return_type,
                                      node.line))

    def _emit_switch(self, node: ast.Switch) -> None:
        selector, selector_type = self.emit_expr(node.selector)
        selector = self.convert(selector, selector_type, types.INT,
                                node.line)
        exit_block = self.new_block("switch.end")
        case_blocks: List[BasicBlock] = [
            self.new_block("switch.case") for _ in node.cases]
        default_block = exit_block
        mbr_cases = []
        for (case_value, _stmts), block in zip(node.cases, case_blocks):
            if case_value is None:
                default_block = block
            else:
                mbr_cases.append(
                    (const_int(types.INT, case_value), block))
        self.builder.mbr(selector, default_block, mbr_cases)
        # `break` exits the switch; `continue` still targets the
        # enclosing loop (or is an error outside one).
        enclosing_continue = self.loops[-1].continue_block \
            if self.loops else exit_block
        self.loops.append(_LoopContext(exit_block, enclosing_continue))
        for index, ((_value, statements), block) in enumerate(
                zip(node.cases, case_blocks)):
            self.builder.set_block(block)
            for statement in statements:
                if self.terminated():
                    break
                self.emit_statement(statement)
            if not self.terminated():
                # C fallthrough into the next case body.
                next_block = case_blocks[index + 1] \
                    if index + 1 < len(case_blocks) else exit_block
                self.builder.br(next_block)
        self.loops.pop()
        self.builder.set_block(exit_block)

    # -- conversions --------------------------------------------------------------------

    def convert(self, value: Value, actual: types.Type,
                wanted: types.Type, line: int) -> Value:
        if actual is wanted:
            return value
        if actual.is_array and wanted.is_pointer \
                and actual.element is wanted.pointee:
            raise MiniCTypeError("array rvalue cannot convert", line)
        if not (actual.is_scalar and wanted.is_scalar):
            raise MiniCTypeError(
                "cannot convert {0} to {1}".format(actual, wanted), line)
        if actual.is_floating_point and wanted.is_pointer \
                or actual.is_pointer and wanted.is_floating_point:
            raise MiniCTypeError(
                "cannot convert {0} to {1}".format(actual, wanted), line)
        return self.builder.cast(value, wanted)

    def to_bool(self, value: Value, actual: types.Type,
                line: int) -> Value:
        if actual.is_bool:
            return value
        if actual.is_integer:
            return self.builder.setne(value, const_int(actual, 0))
        if actual.is_pointer:
            return self.builder.setne(value, const_null(actual))
        if actual.is_floating_point:
            return self.builder.setne(value, const_fp(actual, 0.0))
        raise MiniCTypeError("value is not testable", line)

    def emit_condition(self, node: ast.Node) -> Value:
        value, actual = self.emit_expr(node)
        return self.to_bool(value, actual, node.line)

    # -- lvalues --------------------------------------------------------------------------

    def emit_lvalue(self, node: ast.Node) -> Tuple[Value, types.Type]:
        """Returns (address, value type at that address)."""
        if isinstance(node, ast.Identifier):
            slot, value_type = self.lookup(node.name, node.line)
            return slot, value_type
        if isinstance(node, ast.Unary) and node.op == "*":
            pointer, pointer_type = self.emit_expr(node.operand)
            if not pointer_type.is_pointer:
                raise MiniCTypeError("dereference of non-pointer",
                                     node.line)
            return pointer, pointer_type.pointee
        if isinstance(node, ast.Index):
            return self._emit_index_address(node)
        if isinstance(node, ast.Member):
            return self._emit_member_address(node)
        raise MiniCTypeError("expression is not assignable", node.line)

    def _emit_index_address(self, node: ast.Index
                            ) -> Tuple[Value, types.Type]:
        index_value, index_type = self.emit_expr(node.index)
        index_long = self.convert(index_value, index_type, types.LONG,
                                  node.line)
        base = node.base
        # Array lvalue: gep through the array type.
        if self._is_array_lvalue(base):
            address, array_type = self.emit_lvalue(base)
            return (self.builder.gep(address,
                                     [const_int(types.LONG, 0),
                                      index_long]),
                    array_type.element)
        pointer, pointer_type = self.emit_expr(base)
        if not pointer_type.is_pointer:
            raise MiniCTypeError("indexing a non-pointer", node.line)
        return (self.builder.gep(pointer, [index_long]),
                pointer_type.pointee)

    def _is_array_lvalue(self, node: ast.Node) -> bool:
        """Named arrays index through the canonical two-index gep form
        (Figure 2 style); everything else decays to a pointer first,
        which is equally correct."""
        if isinstance(node, ast.Identifier):
            try:
                _slot, value_type = self.lookup(node.name, node.line)
            except MiniCTypeError:
                return False
            return value_type.is_array
        return False

    def _emit_member_address(self, node: ast.Member
                             ) -> Tuple[Value, types.Type]:
        if node.arrow:
            pointer, pointer_type = self.emit_expr(node.base)
            if not pointer_type.is_pointer \
                    or not pointer_type.pointee.is_struct:
                raise MiniCTypeError("-> on non-struct-pointer",
                                     node.line)
            struct_type = pointer_type.pointee
            base_address = pointer
        else:
            base_address, struct_type = self.emit_lvalue(node.base)
            if not struct_type.is_struct:
                raise MiniCTypeError(". on non-struct", node.line)
        info = self.context.struct_info_for(struct_type, node.line)
        index, field_type = info.field(node.name, node.line)
        address = self.builder.gep(
            base_address,
            [const_int(types.LONG, 0), const_int(types.UBYTE, index)])
        return address, field_type

    # -- expressions ------------------------------------------------------------------------

    def emit_expr(self, node: ast.Node) -> Tuple[Value, types.Type]:
        method = getattr(self, "_expr_" + type(node).__name__, None)
        if method is None:
            raise MiniCTypeError(
                "bad expression {0}".format(type(node).__name__),
                node.line)
        return method(node)

    # Literals ------------------------------------------------------------

    def _expr_IntLiteral(self, node: ast.IntLiteral):
        if "u" in node.suffix and "l" in node.suffix:
            type_ = types.ULONG
        elif "l" in node.suffix:
            type_ = types.LONG
        elif "u" in node.suffix:
            type_ = types.UINT
        elif node.value > types.INT.max_value:
            type_ = types.LONG
        else:
            type_ = types.INT
        return const_int(type_, type_.wrap(node.value)), type_

    def _expr_FloatLiteral(self, node: ast.FloatLiteral):
        type_ = types.FLOAT if node.is_single else types.DOUBLE
        return const_fp(type_, node.value), type_

    def _expr_CharLiteral(self, node: ast.CharLiteral):
        return const_int(types.SBYTE,
                         types.SBYTE.wrap(ord(node.value))), types.SBYTE

    def _expr_BoolLiteral(self, node: ast.BoolLiteral):
        return const_bool(node.value), types.BOOL

    def _expr_NullLiteral(self, node: ast.NullLiteral):
        pointer_type = types.pointer_to(types.SBYTE)
        return const_null(pointer_type), pointer_type

    def _expr_StringLiteral(self, node: ast.StringLiteral):
        variable = self.gen.intern_string(node.value)
        pointer = self.builder.gep(
            variable, [const_int(types.LONG, 0), const_int(types.LONG, 0)])
        return pointer, types.pointer_to(types.SBYTE)

    # Identifiers and loads -------------------------------------------------

    def _expr_Identifier(self, node: ast.Identifier):
        # Section 3.2 V-ABI flags: properties the source compiler "can
        # expose to the source program (currently, these are pointer
        # size and endianness)" — compile-time constants from the
        # module's target configuration.
        if node.name == "__pointer_size":
            return (const_int(types.INT, self.module.pointer_size),
                    types.INT)
        if node.name == "__big_endian":
            return (const_bool(self.module.endianness == "big"),
                    types.BOOL)
        slot, value_type = self.lookup(node.name, node.line)
        if value_type.is_array:
            # Array-to-pointer decay.
            pointer = self.builder.gep(
                slot, [const_int(types.LONG, 0),
                       const_int(types.LONG, 0)])
            return pointer, types.pointer_to(value_type.element)
        if value_type.is_struct:
            raise MiniCTypeError(
                "struct rvalues are not supported; use pointers",
                node.line)
        return self.builder.load(slot), value_type

    def _load_from(self, address: Value, value_type: types.Type,
                   line: int):
        if value_type.is_array:
            pointer = self.builder.gep(
                address, [const_int(types.LONG, 0),
                          const_int(types.LONG, 0)])
            return pointer, types.pointer_to(value_type.element)
        if value_type.is_struct:
            raise MiniCTypeError(
                "struct rvalues are not supported; use pointers", line)
        return self.builder.load(address), value_type

    def _expr_Index(self, node: ast.Index):
        address, value_type = self._emit_index_address(node)
        return self._load_from(address, value_type, node.line)

    def _expr_Member(self, node: ast.Member):
        address, value_type = self._emit_member_address(node)
        return self._load_from(address, value_type, node.line)

    # Unary -------------------------------------------------------------------

    def _expr_Unary(self, node: ast.Unary):
        op = node.op
        if op == "&":
            address, value_type = self.emit_lvalue(node.operand)
            return address, types.pointer_to(value_type)
        if op == "*":
            address, value_type = self.emit_lvalue(node)
            return self._load_from(address, value_type, node.line)
        value, value_type = self.emit_expr(node.operand)
        if op == "-":
            if value_type.is_floating_point:
                zero = const_fp(value_type, 0.0)
            elif value_type.is_integer:
                zero = const_int(value_type, 0)
            else:
                raise MiniCTypeError("bad operand to unary -", node.line)
            return self.builder.sub(zero, value), value_type
        if op == "!":
            as_bool = self.to_bool(value, value_type, node.line)
            return self.builder.xor(as_bool, const_bool(True)), types.BOOL
        if op == "~":
            if not value_type.is_integer:
                raise MiniCTypeError("bad operand to ~", node.line)
            all_ones = const_int(value_type, value_type.wrap(-1))
            return self.builder.xor(value, all_ones), value_type
        raise MiniCTypeError("bad unary operator", node.line)

    # Binary -------------------------------------------------------------------

    def _expr_Binary(self, node: ast.Binary):
        op = node.op
        if op in ("&&", "||"):
            return self._emit_short_circuit(node)
        lhs, lhs_type = self.emit_expr(node.lhs)
        rhs, rhs_type = self.emit_expr(node.rhs)
        if op in _CMP_OPS:
            return self._emit_comparison(node, lhs, lhs_type, rhs,
                                         rhs_type)
        if op in ("<<", ">>"):
            if not lhs_type.is_integer or not rhs_type.is_integer:
                raise MiniCTypeError("bad shift operands", node.line)
            amount = self.convert(rhs, rhs_type, types.UBYTE, node.line)
            opcode = "shl" if op == "<<" else "shr"
            return self.builder.binary(opcode, lhs, amount), lhs_type
        # Pointer arithmetic.
        if lhs_type.is_pointer or rhs_type.is_pointer:
            return self._emit_pointer_arith(node, lhs, lhs_type, rhs,
                                            rhs_type)
        result_type = arithmetic_result_type(lhs_type, rhs_type,
                                             node.line)
        if op in ("&", "|", "^") and result_type.is_floating_point:
            raise MiniCTypeError("bitwise op on floats", node.line)
        lhs = self.convert(lhs, lhs_type, result_type, node.line)
        rhs = self.convert(rhs, rhs_type, result_type, node.line)
        return (self.builder.binary(_ARITH_OPS[op], lhs, rhs),
                result_type)

    def _emit_comparison(self, node, lhs, lhs_type, rhs, rhs_type):
        if lhs_type.is_pointer and rhs_type.is_pointer:
            if lhs_type is not rhs_type:
                rhs = self.builder.cast(rhs, lhs_type)
        elif lhs_type.is_pointer or rhs_type.is_pointer:
            # pointer vs integer (usually a null test)
            if lhs_type.is_pointer:
                rhs = self.convert(rhs, rhs_type, lhs_type, node.line)
            else:
                lhs = self.convert(lhs, lhs_type, rhs_type, node.line)
        else:
            common = arithmetic_result_type(lhs_type, rhs_type,
                                            node.line)
            lhs = self.convert(lhs, lhs_type, common, node.line)
            rhs = self.convert(rhs, rhs_type, common, node.line)
        return (self.builder.compare(_CMP_OPS[node.op], lhs, rhs),
                types.BOOL)

    def _emit_pointer_arith(self, node, lhs, lhs_type, rhs, rhs_type):
        op = node.op
        if op == "+" and lhs_type.is_pointer and rhs_type.is_integer:
            index = self.convert(rhs, rhs_type, types.LONG, node.line)
            return self.builder.gep(lhs, [index]), lhs_type
        if op == "+" and rhs_type.is_pointer and lhs_type.is_integer:
            index = self.convert(lhs, lhs_type, types.LONG, node.line)
            return self.builder.gep(rhs, [index]), rhs_type
        if op == "-" and lhs_type.is_pointer and rhs_type.is_integer:
            index = self.convert(rhs, rhs_type, types.LONG, node.line)
            negated = self.builder.sub(const_int(types.LONG, 0), index)
            return self.builder.gep(lhs, [negated]), lhs_type
        if op == "-" and lhs_type.is_pointer and rhs_type.is_pointer:
            left = self.builder.cast(lhs, types.LONG)
            right = self.builder.cast(rhs, types.LONG)
            byte_diff = self.builder.sub(left, right)
            size = self.module.target_data.size_of(lhs_type.pointee)
            return (self.builder.div(byte_diff,
                                     const_int(types.LONG, size)),
                    types.LONG)
        raise MiniCTypeError("bad pointer arithmetic", node.line)

    def _emit_short_circuit(self, node: ast.Binary):
        is_and = node.op == "&&"
        right_block = self.new_block("sc.rhs")
        merge_block = self.new_block("sc.end")
        left = self.emit_condition(node.lhs)
        left_exit = self.builder.block
        if is_and:
            self.builder.cond_br(left, right_block, merge_block)
        else:
            self.builder.cond_br(left, merge_block, right_block)
        self.builder.set_block(right_block)
        right = self.emit_condition(node.rhs)
        right_exit = self.builder.block
        self.builder.br(merge_block)
        self.builder.set_block(merge_block)
        phi = self.builder.phi(types.BOOL)
        phi.add_incoming(const_bool(not is_and), left_exit)
        phi.add_incoming(right, right_exit)
        return phi, types.BOOL

    def _expr_Conditional(self, node: ast.Conditional):
        condition = self.emit_condition(node.condition)
        then_block = self.new_block("sel.then")
        else_block = self.new_block("sel.else")
        merge_block = self.new_block("sel.end")
        self.builder.cond_br(condition, then_block, else_block)
        self.builder.set_block(then_block)
        then_value, then_type = self.emit_expr(node.if_true)
        then_exit = self.builder.block
        self.builder.set_block(else_block)
        else_value, else_type = self.emit_expr(node.if_false)
        else_exit = self.builder.block
        if then_type is not else_type:
            common = arithmetic_result_type(then_type, else_type,
                                            node.line)
            self.builder.set_block(then_exit)
            then_value = self.convert(then_value, then_type, common,
                                      node.line)
            self.builder.set_block(else_exit)
            else_value = self.convert(else_value, else_type, common,
                                      node.line)
            then_type = common
        self.builder.set_block(then_exit)
        self.builder.br(merge_block)
        self.builder.set_block(else_exit)
        self.builder.br(merge_block)
        self.builder.set_block(merge_block)
        phi = self.builder.phi(then_type)
        phi.add_incoming(then_value, then_exit)
        phi.add_incoming(else_value, else_exit)
        return phi, then_type

    # Assignment -----------------------------------------------------------------

    def _expr_Assign(self, node: ast.Assign):
        address, value_type = self.emit_lvalue(node.target)
        if node.op == "=":
            value, actual = self.emit_expr(node.value)
            converted = self.convert(value, actual, value_type,
                                     node.line)
            self.builder.store(converted, address)
            return converted, value_type
        # Compound assignment: load-modify-store on one address.
        binary_op = node.op[:-1]
        current = self.builder.load(address)
        value, actual = self.emit_expr(node.value)
        synthetic = ast.Binary(line=node.line, op=binary_op,
                               lhs=None, rhs=None)
        result, result_type = self._apply_binary(
            synthetic, current, value_type, value, actual)
        converted = self.convert(result, result_type, value_type,
                                 node.line)
        self.builder.store(converted, address)
        return converted, value_type

    def _apply_binary(self, node, lhs, lhs_type, rhs, rhs_type):
        op = node.op
        if op in ("<<", ">>"):
            amount = self.convert(rhs, rhs_type, types.UBYTE, node.line)
            opcode = "shl" if op == "<<" else "shr"
            return self.builder.binary(opcode, lhs, amount), lhs_type
        if lhs_type.is_pointer:
            return self._emit_pointer_arith(
                ast.Binary(line=node.line, op=op, lhs=None, rhs=None),
                lhs, lhs_type, rhs, rhs_type)
        common = arithmetic_result_type(lhs_type, rhs_type, node.line)
        lhs = self.convert(lhs, lhs_type, common, node.line)
        rhs = self.convert(rhs, rhs_type, common, node.line)
        return self.builder.binary(_ARITH_OPS[op], lhs, rhs), common

    def _expr_IncDec(self, node: ast.IncDec):
        address, value_type = self.emit_lvalue(node.target)
        current = self.builder.load(address)
        if value_type.is_pointer:
            step = const_int(types.LONG, 1 if node.op == "++" else -1)
            updated = self.builder.gep(current, [step])
        else:
            one = const_int(value_type, 1) if value_type.is_integer \
                else const_fp(value_type, 1.0)
            if node.op == "++":
                updated = self.builder.add(current, one)
            else:
                updated = self.builder.sub(current, one)
        self.builder.store(updated, address)
        return (updated if node.prefix else current), value_type

    # Calls, casts, sizeof -----------------------------------------------------------

    def _expr_Call(self, node: ast.Call):
        function = self.gen.functions.get(node.name)
        if function is None:
            if node.name in RUNTIME_SIGNATURES:
                function = self.gen.runtime_function(node.name)
            else:
                raise MiniCTypeError(
                    "call to undefined function {0!r}".format(node.name),
                    node.line)
        signature = function.function_type
        if len(node.args) != len(signature.params):
            raise MiniCTypeError(
                "{0} expects {1} arguments".format(
                    node.name, len(signature.params)), node.line)
        args: List[Value] = []
        for arg_node, param_type in zip(node.args, signature.params):
            value, actual = self.emit_expr(arg_node)
            args.append(self.convert(value, actual, param_type,
                                     node.line))
        result = self.builder.call(function, args)
        return result, signature.return_type

    def _expr_CastExpr(self, node: ast.CastExpr):
        wanted = self.context.resolve(node.type_name)
        value, actual = self.emit_expr(node.operand)
        return self.convert(value, actual, wanted, node.line), wanted

    def _expr_SizeofExpr(self, node: ast.SizeofExpr):
        value_type = self.context.resolve(node.type_name)
        size = self.module.target_data.size_of(value_type)
        return const_int(types.UINT, size), types.UINT


def _infer_array_length(type_name: ast.TypeName,
                        init) -> None:
    """Resolve `T name[] = {...}`: a 0 (inferred) leading dimension
    takes its length from the initializer list."""
    if not type_name.array_dims or type_name.array_dims[0] != 0:
        return
    if not isinstance(init, ast.InitializerList):
        raise MiniCTypeError(
            "array with inferred size needs a brace initializer",
            type_name.line)
    type_name.array_dims = ((len(init.elements),)
                            + type_name.array_dims[1:])


def _fold_int_init(op: str, lhs: int, rhs: int, line: int) -> int:
    """Constant folding for integer global-initializer expressions."""
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/" and rhs != 0:
        return int(lhs / rhs) if (lhs < 0) != (rhs < 0) else lhs // rhs
    if op == "%" and rhs != 0:
        return lhs - rhs * int(lhs / rhs)
    if op == "&":
        return lhs & rhs
    if op == "|":
        return lhs | rhs
    if op == "^":
        return lhs ^ rhs
    if op == "<<":
        return lhs << rhs
    if op == ">>":
        return lhs >> rhs
    raise MiniCTypeError(
        "unsupported operator {0!r} in global initializer".format(op),
        line)


def generate(program: ast.Program, module_name: str = "minic",
             pointer_size: int = 8,
             endianness: str = "little") -> Module:
    """Compile a parsed MiniC program to an LLVA module."""
    generator = CodeGenerator(module_name, pointer_size, endianness)
    return generator.generate(program)
