"""MiniC: a from-scratch C-subset front-end emitting LLVA.

Stands in for the paper's GCC-based C front-end; used to author the
Table 2 workloads and the examples.
"""

from repro.minic.driver import compile_source
from repro.minic.lexer import MiniCSyntaxError
from repro.minic.sema import MiniCTypeError

__all__ = ["compile_source", "MiniCSyntaxError", "MiniCTypeError"]
