"""MiniC abstract syntax tree."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class TypeName:
    """A syntactic type: base name + pointer depth + array dims."""

    base: str                       # 'int', 'double', 'struct Foo', ...
    pointer_depth: int = 0
    array_dims: Tuple[int, ...] = ()
    line: int = 0


@dataclass
class Node:
    line: int = 0


# -- expressions -------------------------------------------------------------

@dataclass
class IntLiteral(Node):
    value: int = 0
    suffix: str = ""


@dataclass
class FloatLiteral(Node):
    value: float = 0.0
    is_single: bool = False


@dataclass
class CharLiteral(Node):
    value: str = "\0"


@dataclass
class StringLiteral(Node):
    value: str = ""


@dataclass
class BoolLiteral(Node):
    value: bool = False


@dataclass
class NullLiteral(Node):
    pass


@dataclass
class Identifier(Node):
    name: str = ""


@dataclass
class Unary(Node):
    op: str = ""
    operand: Node = None


@dataclass
class Binary(Node):
    op: str = ""
    lhs: Node = None
    rhs: Node = None


@dataclass
class Assign(Node):
    op: str = "="           # '=', '+=', ...
    target: Node = None
    value: Node = None


@dataclass
class Conditional(Node):
    condition: Node = None
    if_true: Node = None
    if_false: Node = None


@dataclass
class Call(Node):
    name: str = ""
    args: List[Node] = field(default_factory=list)


@dataclass
class Index(Node):
    base: Node = None
    index: Node = None


@dataclass
class Member(Node):
    base: Node = None
    name: str = ""
    arrow: bool = False


@dataclass
class CastExpr(Node):
    type_name: TypeName = None
    operand: Node = None


@dataclass
class SizeofExpr(Node):
    type_name: TypeName = None


@dataclass
class InitializerList(Node):
    elements: List[Node] = field(default_factory=list)


@dataclass
class IncDec(Node):
    op: str = "++"
    target: Node = None
    prefix: bool = True


# -- statements -----------------------------------------------------------------

@dataclass
class Block(Node):
    statements: List[Node] = field(default_factory=list)


@dataclass
class VarDecl(Node):
    type_name: TypeName = None
    name: str = ""
    init: Optional[Node] = None


@dataclass
class ExprStmt(Node):
    expr: Node = None


@dataclass
class If(Node):
    condition: Node = None
    then_body: Node = None
    else_body: Optional[Node] = None


@dataclass
class While(Node):
    condition: Node = None
    body: Node = None
    is_do_while: bool = False


@dataclass
class For(Node):
    init: Optional[Node] = None
    condition: Optional[Node] = None
    step: Optional[Node] = None
    body: Node = None


@dataclass
class Return(Node):
    value: Optional[Node] = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class Switch(Node):
    selector: Node = None
    cases: List[Tuple[Optional[int], List[Node]]] = \
        field(default_factory=list)  # (value, stmts); None = default


# -- declarations ----------------------------------------------------------------

@dataclass
class Param(Node):
    type_name: TypeName = None
    name: str = ""


@dataclass
class FunctionDecl(Node):
    return_type: TypeName = None
    name: str = ""
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class StructDecl(Node):
    name: str = ""
    fields: List[Tuple[TypeName, str]] = field(default_factory=list)


@dataclass
class GlobalDecl(Node):
    type_name: TypeName = None
    name: str = ""
    init: Optional[Node] = None


@dataclass
class Program(Node):
    declarations: List[Node] = field(default_factory=list)
