"""The LLVA command-line toolchain.

One entry point, classic subcommands::

    python -m repro cc  prog.c  -o prog.bc  [-O2]    # MiniC -> object code
    python -m repro as  prog.ll -o prog.bc           # assembly -> object code
    python -m repro dis prog.bc                      # object code -> assembly
    python -m repro opt prog.bc -o out.bc -O2 [--link-time]
    python -m repro run prog.bc [--target x86|sparc] [--entry main] [args...]
    python -m repro llc prog.bc --target sparc       # native listing
    python -m repro link a.bc b.bc -o out.bc         # module linker

Sources are auto-detected by suffix where it matters: ``.ll`` is
assembly, ``.c``/``.mc`` is MiniC, anything else is treated as virtual
object code.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.asm import parse_module
from repro.bitcode import read_module, write_module
from repro.execution import ExecutionTrap, Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.ir import print_module, verify_module
from repro.ir.module import Module
from repro.llee.jit import FunctionJIT
from repro.minic import compile_source
from repro.targets import disassemble, make_target, verify_native_module
from repro.transforms import link_modules, optimize


def _load_module(path: str) -> Module:
    if path.endswith(".ll"):
        with open(path) as handle:
            module = parse_module(handle.read(), path)
    elif path.endswith((".c", ".mc")):
        with open(path) as handle:
            module = compile_source(handle.read(), path)
    else:
        with open(path, "rb") as handle:
            module = read_module(handle.read(), path)
    verify_module(module)
    return module


def _write_output(module: Module, output: Optional[str],
                  as_text: bool = False) -> None:
    if as_text or (output and output.endswith(".ll")):
        text = print_module(module)
        if output:
            with open(output, "w") as handle:
                handle.write(text)
        else:
            sys.stdout.write(text)
        return
    data = write_module(module)
    if output:
        with open(output, "wb") as handle:
            handle.write(data)
    else:
        sys.stdout.buffer.write(data)


def _cmd_cc(args) -> int:
    with open(args.input) as handle:
        module = compile_source(handle.read(), args.input,
                                optimization_level=args.optimize,
                                pointer_size=args.pointer_size,
                                endianness=args.endian)
    verify_module(module)
    _write_output(module, args.output)
    return 0


def _cmd_as(args) -> int:
    module = _load_module(args.input)
    _write_output(module, args.output)
    return 0


def _cmd_dis(args) -> int:
    module = _load_module(args.input)
    _write_output(module, args.output, as_text=True)
    return 0


def _cmd_opt(args) -> int:
    module = _load_module(args.input)
    optimize(module, level=args.optimize, link_time=args.link_time)
    verify_module(module)
    _write_output(module, args.output)
    return 0


def _cmd_link(args) -> int:
    modules = [_load_module(path) for path in args.inputs]
    linked = link_modules(modules, args.output or "linked")
    verify_module(linked)
    _write_output(linked, args.output)
    return 0


def _parse_program_args(raw: List[str]) -> List[object]:
    out: List[object] = []
    for text in raw:
        try:
            out.append(int(text))
        except ValueError:
            out.append(float(text))
    return out


def _cmd_run(args) -> int:
    module = _load_module(args.input)
    program_args = _parse_program_args(args.args)
    try:
        if args.target:
            target = make_target(args.target)
            from repro.targets import NativeModule

            native = NativeModule(target, module.name)
            jit = FunctionJIT(module, target)
            simulator = MachineSimulator(native, module,
                                         resolver=jit.translate)
            value, status = simulator.run(args.entry, program_args)
            sys.stdout.write(simulator.output_text())
            if args.stats:
                sys.stderr.write(
                    "[{0}] result={1} cycles={2} instructions={3} "
                    "jitted={4} translate={5:.4f}s\n".format(
                        args.target, value, simulator.cycles,
                        simulator.instructions_executed,
                        jit.stats.functions_translated,
                        jit.stats.translate_seconds))
        else:
            interpreter = Interpreter(module,
                                      privileged=args.privileged)
            result = interpreter.run(args.entry, program_args)
            sys.stdout.write(result.output)
            value, status = result.return_value, result.exit_status
            if args.stats:
                sys.stderr.write(
                    "[interp] result={0} steps={1}\n".format(
                        value, result.steps))
    except ExecutionTrap as trap:
        sys.stderr.write("trap: {0}\n".format(trap))
        return 128 + trap.trap_number
    if status:
        return status
    return int(value) & 0xFF if isinstance(value, (int, bool)) else 0


def _cmd_llc(args) -> int:
    module = _load_module(args.input)
    target = make_target(args.target)
    jit = FunctionJIT(module, target)
    native = jit.translate_all()
    verify_native_module(native)
    chunks = [disassemble(machine)
              for machine in native.functions.values()]
    text = "\n".join(chunks)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    sys.stderr.write(
        "; {0} LLVA instructions -> {1} {2} instructions "
        "({3:.2f}x), {4} bytes\n".format(
            module.num_instructions(), native.num_instructions(),
            args.target,
            native.num_instructions() / max(module.num_instructions(),
                                            1),
            native.code_size()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The LLVA toolchain (MICRO 2003 reproduction).")
    commands = parser.add_subparsers(dest="command", required=True)

    cc = commands.add_parser("cc", help="compile MiniC to object code")
    cc.add_argument("input")
    cc.add_argument("-o", "--output")
    cc.add_argument("-O", "--optimize", type=int, default=0)
    cc.add_argument("--pointer-size", type=int, default=8,
                    choices=(4, 8))
    cc.add_argument("--endian", default="little",
                    choices=("little", "big"))
    cc.set_defaults(func=_cmd_cc)

    as_cmd = commands.add_parser(
        "as", help="assemble .ll (or re-encode) to object code")
    as_cmd.add_argument("input")
    as_cmd.add_argument("-o", "--output")
    as_cmd.set_defaults(func=_cmd_as)

    dis = commands.add_parser("dis",
                              help="disassemble object code to .ll")
    dis.add_argument("input")
    dis.add_argument("-o", "--output")
    dis.set_defaults(func=_cmd_dis)

    opt = commands.add_parser("opt", help="run the optimizer")
    opt.add_argument("input")
    opt.add_argument("-o", "--output")
    opt.add_argument("-O", "--optimize", type=int, default=2)
    opt.add_argument("--link-time", action="store_true")
    opt.set_defaults(func=_cmd_opt)

    link = commands.add_parser("link", help="link modules")
    link.add_argument("inputs", nargs="+")
    link.add_argument("-o", "--output")
    link.set_defaults(func=_cmd_link)

    run = commands.add_parser(
        "run", help="execute (interpreter, or --target JIT)")
    run.add_argument("input")
    run.add_argument("--target", choices=("x86", "sparc"))
    run.add_argument("--entry", default="main")
    run.add_argument("--privileged", action="store_true")
    run.add_argument("--stats", action="store_true")
    run.add_argument("args", nargs="*")
    run.set_defaults(func=_cmd_run)

    llc = commands.add_parser(
        "llc", help="translate to a native listing")
    llc.add_argument("input")
    llc.add_argument("--target", default="sparc",
                     choices=("x86", "sparc"))
    llc.add_argument("-o", "--output")
    llc.set_defaults(func=_cmd_llc)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
