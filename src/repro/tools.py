"""The LLVA command-line toolchain.

One entry point, classic subcommands::

    python -m repro cc  prog.c  -o prog.bc  [-O2]    # MiniC -> object code
    python -m repro as  prog.ll -o prog.bc           # assembly -> object code
    python -m repro dis prog.bc                      # object code -> assembly
    python -m repro opt prog.bc -o out.bc -O2 [--link-time]
    python -m repro run prog.bc [--target x86|sparc] [--entry main]
                        [--engine fast] [--tier2 [--translation-cache DIR]]
                        [--superblocks] [--osr] [--tier3] [args...]
    python -m repro llc prog.bc --target sparc       # native listing
    python -m repro link a.bc b.bc -o out.bc         # module linker
    python -m repro stats prog.bc [--target x86]     # observability report
    python -m repro profile prog.bc [--top 10]       # tiered-execution profile

Sources are auto-detected by suffix where it matters: ``.ll`` is
assembly, ``.c``/``.mc`` is MiniC, anything else is treated as virtual
object code.

Observability: ``cc``/``opt``/``run``/``stats`` accept ``--trace FILE``
(Chrome ``trace_event`` JSON, or JSONL with a ``.jsonl`` suffix) and
``--metrics FILE`` (the registry snapshot as JSON); ``repro stats``
runs a program with full instrumentation and pretty-prints per-pass
timings, expansion ratios, cache behaviour, opcode mix, and the
hottest profiled blocks.  ``run``/``stats``/``profile`` accept
``--flight-record FILE`` (the JIT-lifecycle flight recorder, dumped as
JSONL), and ``repro profile`` attributes every interpreter step to a
``(function, tier)`` pair — tier 1, tier 2, superblock, OSR, or
tier 3 — with optional speedscope export.  See
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import observe
from repro.asm import parse_module
from repro.bitcode import read_module, write_module
from repro.execution import ExecutionTrap, Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.ir import print_module, verify_module
from repro.ir.module import Module
from repro.llee.jit import FunctionJIT
from repro.minic import compile_source
from repro.targets import disassemble, make_target, verify_native_module
from repro.transforms import link_modules, optimize


def _load_module(path: str) -> Module:
    with observe.span("cli.load_module", path=path):
        if path.endswith(".ll"):
            with open(path) as handle:
                module = parse_module(handle.read(), path)
        elif path.endswith((".c", ".mc")):
            with open(path) as handle:
                module = compile_source(handle.read(), path)
        else:
            with open(path, "rb") as handle:
                module = read_module(handle.read(), path)
        verify_module(module)
    return module


def _write_output(module: Module, output: Optional[str],
                  as_text: bool = False) -> None:
    if as_text or (output and output.endswith(".ll")):
        text = print_module(module)
        if output:
            with open(output, "w") as handle:
                handle.write(text)
        else:
            sys.stdout.write(text)
        return
    data = write_module(module)
    if output:
        with open(output, "wb") as handle:
            handle.write(data)
    else:
        sys.stdout.buffer.write(data)


def _cmd_cc(args) -> int:
    with open(args.input) as handle:
        module = compile_source(handle.read(), args.input,
                                optimization_level=args.optimize,
                                pointer_size=args.pointer_size,
                                endianness=args.endian,
                                vectorize=args.vectorize)
    verify_module(module)
    _write_output(module, args.output)
    return 0


def _cmd_as(args) -> int:
    module = _load_module(args.input)
    _write_output(module, args.output)
    return 0


def _cmd_dis(args) -> int:
    module = _load_module(args.input)
    _write_output(module, args.output, as_text=True)
    return 0


def _cmd_opt(args) -> int:
    module = _load_module(args.input)
    optimize(module, level=args.optimize, link_time=args.link_time,
             vectorize=args.vectorize)
    verify_module(module)
    _write_output(module, args.output)
    return 0


def _cmd_link(args) -> int:
    modules = [_load_module(path) for path in args.inputs]
    linked = link_modules(modules, args.output or "linked")
    verify_module(linked)
    _write_output(linked, args.output)
    return 0


def _parse_program_args(raw: List[str]) -> List[object]:
    """Program arguments: ints and floats become numbers, anything
    else is passed through as a string (never an uncaught ValueError)."""
    out: List[object] = []
    for text in raw:
        try:
            out.append(int(text))
            continue
        except ValueError:
            pass
        try:
            out.append(float(text))
        except ValueError:
            out.append(text)
    return out


def _check_program_args(module, entry: str,
                        program_args: List[object]) -> Optional[str]:
    """Return an error message when a program argument cannot feed the
    entry function's parameter type (a string for an int parameter
    would otherwise surface as a TypeError deep in the evaluator)."""
    function = module.functions.get(entry)
    if function is None:
        return None  # the engine reports unknown entry points itself
    for position, (arg, value) in enumerate(
            zip(function.args, program_args), start=1):
        param_type = arg.type
        if ((param_type.is_integer or param_type.is_floating_point)
                and isinstance(value, str)):
            return ("argument {0} ({1!r}) is not a number, but "
                    "{2} parameter '{3}' is of type {4}\n".format(
                        position, value, entry, arg.name, param_type))
    return None


#: Registry prefixes surfaced on the one-line ``--stats`` report.
_STATS_PREFIXES = ("run.", "jit.", "llee.cache.", "llee.profile.",
                   "fastpath.", "san.", "tier2.", "tier3.", "vec.")


def _format_stats_line(label: str, result: object) -> str:
    """The unified ``--stats`` line: ``result=`` plus every run-level
    registry counter, aggregated over labels — one code path for the
    interpreter and the JIT."""
    totals = {}
    for name, _labels, value in observe.registry().counters():
        if name.startswith(_STATS_PREFIXES):
            totals[name] = totals.get(name, 0) + value
    parts = ["result={0}".format(result)]
    for name in sorted(totals):
        value = totals[name]
        if isinstance(value, float) and not value.is_integer():
            parts.append("{0}={1:.6f}".format(name, value))
        else:
            parts.append("{0}={1}".format(name, int(value)))
    return "[{0}] {1}\n".format(label, " ".join(parts))


def _normalize_tier_flags(args) -> None:
    """Resolve flag implications before any mutual-exclusion check
    runs: ``--tier3`` and the tier-2 variants (``--superblocks``/
    ``--osr``/``--async-compile``) imply ``--tier2``, and ``--tier2``
    implies ``--engine fast``.  Validation must see the normalized
    values — checking first would let an implied combination (say
    ``--superblocks --target x86``) slip past the ``--tier2``
    rejections."""
    if getattr(args, "tier3", False):
        args.tier2 = True
    if (getattr(args, "superblocks", False)
            or getattr(args, "osr", False)
            or getattr(args, "async_compile", False)):
        args.tier2 = True
    if getattr(args, "tier2", False):
        args.engine = "fast"


def _make_tier2_cache(module, args):
    """Build the CLI's Tier2Cache, optionally wired to a
    ``--translation-cache`` directory for cross-process warm starts."""
    from repro.execution.tier2 import Tier2Cache
    from repro.llee.storage import DiskStorage

    kwargs = {}
    if args.tier2_threshold is not None:
        kwargs["threshold"] = args.tier2_threshold
    if getattr(args, "superblocks", False):
        kwargs["superblocks"] = True
    if getattr(args, "osr", False):
        kwargs["osr"] = True
    if getattr(args, "async_compile", False):
        kwargs["async_compile"] = True
        if getattr(args, "compile_workers", None) is not None:
            kwargs["compile_workers"] = args.compile_workers
    if getattr(args, "tier3", False):
        kwargs["tier3"] = True
        if getattr(args, "tier3_threshold", None) is not None:
            kwargs["tier3_threshold"] = args.tier3_threshold
        if getattr(args, "tier3_target", None):
            kwargs["tier3_target"] = args.tier3_target
        if getattr(args, "tier3_backend", None):
            kwargs["tier3_backend"] = args.tier3_backend
    cache = Tier2Cache(module, module.target_data, **kwargs)
    if args.translation_cache:
        import hashlib

        key = "{0}".format(
            hashlib.sha256(write_module(module)).hexdigest()[:24])
        storage = DiskStorage(
            args.translation_cache,
            max_bytes=getattr(args, "cache_max_bytes", None))
        cache.attach_storage(storage, key)
    return cache


def _cmd_run(args) -> int:
    module = _load_module(args.input)
    if args.vectorize:
        # Compile-time rewrite: run the autovectorizer over the loaded
        # module (loops must already be canonical — compile with -O).
        optimize(module, level=0, vectorize=True)
        verify_module(module)
    program_args = _parse_program_args(args.args)
    problem = _check_program_args(module, args.entry, program_args)
    if problem:
        sys.stderr.write("run: " + problem)
        return 2
    _normalize_tier_flags(args)
    if args.sanitize and args.target:
        sys.stderr.write("run: --sanitize applies to the interpreter "
                         "engines only, not --target\n")
        return 2
    if args.tier2 and args.target:
        sys.stderr.write("run: --tier2 applies to the interpreter "
                         "engines only, not --target\n")
        return 2
    if args.tier2 and args.sanitize:
        sys.stderr.write("run: --sanitize pins execution to tier 1; "
                         "--tier2 has no effect under llva-san\n")
        return 2
    try:
        if args.target:
            target = make_target(args.target)
            from repro.targets import NativeModule

            native = NativeModule(target, module.name)
            jit = FunctionJIT(module, target)
            simulator = MachineSimulator(native, module,
                                         resolver=jit.translate)
            value, status = simulator.run(args.entry, program_args)
            sys.stdout.write(simulator.output_text())
            if args.stats:
                sys.stderr.write(_format_stats_line(args.target, value))
        else:
            engine = args.engine
            tier2_cache = _make_tier2_cache(module, args) \
                if args.tier2 else False
            interpreter = Interpreter(module,
                                      privileged=args.privileged,
                                      engine=engine,
                                      sanitize=args.sanitize,
                                      tier2=tier2_cache)
            result = interpreter.run(args.entry, program_args)
            if tier2_cache:
                # flush_storage drains in-flight background compiles
                # first, so async stats and persistence are complete.
                tier2_cache.flush_storage()
                tier2_cache.close()
            sys.stdout.write(result.output)
            value, status = result.return_value, result.exit_status
            if args.stats:
                label = "tier3" if args.tier3 else (
                    "tier2" if args.tier2 else (
                        "fast" if engine == "fast" else "interp"))
                sys.stderr.write(_format_stats_line(label, value))
    except ExecutionTrap as trap:
        sys.stderr.write("trap: {0}\n".format(trap))
        return 128 + trap.trap_number
    if status:
        return status
    return int(value) & 0xFF if isinstance(value, (int, bool)) else 0


def _cmd_llc(args) -> int:
    module = _load_module(args.input)
    target = make_target(args.target)
    jit = FunctionJIT(module, target)
    native = jit.translate_all()
    verify_native_module(native)
    chunks = [disassemble(machine)
              for machine in native.functions.values()]
    text = "\n".join(chunks)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    sys.stderr.write(
        "; {0} LLVA instructions -> {1} {2} instructions "
        "({3:.2f}x), {4} bytes\n".format(
            module.num_instructions(), native.num_instructions(),
            args.target,
            native.num_instructions() / max(module.num_instructions(),
                                            1),
            native.code_size()))
    return 0


# ---------------------------------------------------------------------------
# repro stats — the observability report
# ---------------------------------------------------------------------------


def _labels_text(labels) -> str:
    return ",".join("{0}={1}".format(k, v) for k, v in labels)


def _print_loaded_metrics(path: str, out) -> int:
    """Pretty-print a previously exported ``--metrics`` JSON file."""
    with open(path) as handle:
        snapshot = json.load(handle)
    out.write("== metrics ({0}) ==\n".format(path))
    for entry in snapshot.get("counters", []):
        labels = entry.get("labels", {})
        suffix = "" if not labels else "{{{0}}}".format(
            ",".join("{0}={1}".format(k, labels[k])
                     for k in sorted(labels)))
        out.write("  {0}{1} = {2}\n".format(entry["name"], suffix,
                                            entry["value"]))
    for entry in snapshot.get("histograms", []):
        value = entry["value"]
        labels = entry.get("labels", {})
        suffix = "" if not labels else "{{{0}}}".format(
            ",".join("{0}={1}".format(k, labels[k])
                     for k in sorted(labels)))
        out.write(
            "  {0}{1} : count={2} mean={3:.4g} min={4:.4g} "
            "max={5:.4g}\n".format(
                entry["name"], suffix, value["count"], value["mean"],
                value["min"] or 0, value["max"] or 0))
    return 0


def _render_stats_report(profile, result_value, top: int, out) -> None:
    registry = observe.registry()

    pass_rows = registry.label_values("pass.runs", "pass")
    if pass_rows:
        out.write("== optimization passes ==\n")
        out.write("  {0:<24} {1:>5} {2:>8} {3:>10}\n".format(
            "pass", "runs", "changes", "seconds"))
        for name, runs in pass_rows:
            out.write("  {0:<24} {1:>5} {2:>8} {3:>10.4f}\n".format(
                name, int(runs),
                int(registry.value("pass.changes", **{"pass": name})),
                registry.value("pass.seconds", **{"pass": name})))

    translated = sum(v for _l, v in registry.label_values(
        "jit.functions_translated", "target"))
    if translated:
        llva = sum(v for _l, v in registry.label_values(
            "jit.llva_instructions", "target"))
        native = sum(v for _l, v in registry.label_values(
            "jit.native_instructions", "target"))
        seconds = sum(v for _l, v in registry.label_values(
            "jit.translate_seconds", "target"))
        out.write("== translation (Table 2 style) ==\n")
        out.write(
            "  functions={0} llva_instructions={1} "
            "native_instructions={2} expansion={3:.2f}x "
            "translate_seconds={4:.4f}\n".format(
                int(translated), int(llva), int(native),
                native / max(llva, 1), seconds))
        for name, labels, histogram in registry.histograms(
                "jit.expansion_ratio"):
            out.write(
                "  expansion histogram [{0}]: count={1} "
                "mean={2:.2f} min={3:.2f} max={4:.2f}\n".format(
                    _labels_text(labels) or "all", histogram.count,
                    histogram.mean, histogram.minimum or 0,
                    histogram.maximum or 0))

    out.write("== execution ==\n")
    out.write("  result={0}\n".format(result_value))
    for name in ("run.steps", "run.cycles", "run.instructions",
                 "run.traps"):
        rows = [(labels, value) for metric, labels, value
                in registry.counters(name) if metric == name]
        for labels, value in rows:
            out.write("  {0}{1} = {2}\n".format(
                name,
                " [{0}]".format(_labels_text(labels)) if labels else "",
                int(value)))
    opcode_rows = sorted(
        registry.label_values("interp.opcode", "opcode")
        + registry.label_values("native.opcode", "op"),
        key=lambda kv: -kv[1])
    if opcode_rows:
        out.write("  top opcodes: {0}\n".format(" ".join(
            "{0}={1}".format(name, int(count))
            for name, count in opcode_rows[:top])))

    tier2_rows = [(name, labels, value) for name, labels, value
                  in registry.counters("tier2.")]
    if tier2_rows:
        out.write("== tiered translation (tier 2) ==\n")
        totals = {}
        for name, _labels, value in tier2_rows:
            totals[name] = totals.get(name, 0) + value
        for name in sorted(totals):
            value = totals[name]
            if isinstance(value, float) and not value.is_integer():
                out.write("  {0} = {1:.6f}\n".format(name, value))
            else:
                out.write("  {0} = {1}\n".format(name, int(value)))

    tier3_rows = [(name, labels, value) for name, labels, value
                  in registry.counters("tier3.")]
    if tier3_rows:
        out.write("== tiered translation (tier 3) ==\n")
        totals = {}
        for name, _labels, value in tier3_rows:
            totals[name] = totals.get(name, 0) + value
        for name in sorted(totals):
            value = totals[name]
            if isinstance(value, float) and not value.is_integer():
                out.write("  {0} = {1:.6f}\n".format(name, value))
            else:
                out.write("  {0} = {1}\n".format(name, int(value)))

    vec_rows = [(name, labels, value) for name, labels, value
                in registry.counters("vec.")]
    if vec_rows:
        out.write("== vectorization ==\n")
        for name, labels, value in vec_rows:
            out.write("  {0}{1} = {2}\n".format(
                name,
                " [{0}]".format(_labels_text(labels)) if labels else "",
                int(value)))

    san_rows = [(name, labels, value) for name, labels, value
                in registry.counters("san.")]
    if san_rows:
        out.write("== sanitizer (llva-san) ==\n")
        for name, labels, value in sorted(san_rows,
                                          key=lambda row: row[0]):
            out.write("  {0}{1} = {2}\n".format(
                name,
                " [{0}]".format(_labels_text(labels)) if labels else "",
                int(value)))

    out.write("== llee cache ==\n")
    out.write("  hits={0} misses={1} stores={2}\n".format(
        int(sum(v for _l, v in registry.label_values(
            "llee.cache.hit", "target"))),
        int(sum(v for _l, v in registry.label_values(
            "llee.cache.miss", "target"))),
        int(sum(v for _l, v in registry.label_values(
            "llee.cache.store", "target")))))

    if profile is not None and profile.counts:
        out.write("== hottest blocks ==\n")
        out.write("  {0:<32} {1:>12}\n".format("function:block",
                                               "executions"))
        for (function, block), count in profile.hottest_blocks(top):
            if count == 0:
                continue
            out.write("  {0:<32} {1:>12}\n".format(
                "{0}:{1}".format(function, block), count))


def _stats_json_payload(profile, result_value, top: int) -> dict:
    """The machine-readable twin of :func:`_render_stats_report`."""
    payload = {
        "command": "stats",
        "result": result_value,
        "metrics": observe.registry().snapshot(),
    }
    if profile is not None and profile.counts:
        payload["hottest_blocks"] = [
            {"function": function, "block": block, "executions": count}
            for (function, block), count in profile.hottest_blocks(top)
            if count]
    return payload


def _cmd_stats(args) -> int:
    if args.load:
        return _print_loaded_metrics(args.load, sys.stdout)
    if not args.input:
        sys.stderr.write("stats: an input program (or --load) "
                         "is required\n")
        return 2
    from repro.llee.profile import instrument_module, read_profile

    module = _load_module(args.input)
    if args.optimize > 0 or args.vectorize:
        optimize(module, level=args.optimize,
                 vectorize=args.vectorize)
    profile_map = instrument_module(module)
    program_args = _parse_program_args(args.args)
    problem = _check_program_args(module, args.entry, program_args)
    if problem:
        sys.stderr.write("stats: " + problem)
        return 2
    _normalize_tier_flags(args)
    if args.sanitize and args.target:
        sys.stderr.write("stats: --sanitize applies to the interpreter "
                         "engines only, not --target\n")
        return 2
    if args.tier2 and (args.target or args.sanitize):
        sys.stderr.write("stats: --tier2 applies to the unsanitized "
                         "interpreter engines only\n")
        return 2
    profile = None
    try:
        if args.target:
            from repro.llee.manager import LLEE
            from repro.llee.storage import DiskStorage

            storage = DiskStorage(args.cache) if args.cache else None
            llee = LLEE(make_target(args.target), storage)
            report = llee.run_executable(write_module(module),
                                         entry=args.entry,
                                         args=program_args)
            (sys.stderr if args.json else sys.stdout).write(
                report.output)
            result_value = report.return_value
            profile = read_profile(profile_map, llee.last_simulator)
        else:
            engine = args.engine
            tier2_cache = _make_tier2_cache(module, args) \
                if args.tier2 else False
            interpreter = Interpreter(module,
                                      privileged=args.privileged,
                                      engine=engine,
                                      sanitize=args.sanitize,
                                      tier2=tier2_cache)
            result = interpreter.run(args.entry, program_args)
            if tier2_cache:
                tier2_cache.flush_storage()
                tier2_cache.close()
            (sys.stderr if args.json else sys.stdout).write(
                result.output)
            result_value = result.return_value
            profile = read_profile(profile_map, interpreter)
    except ExecutionTrap as trap:
        sys.stderr.write("trap: {0}\n".format(trap))
        return 128 + trap.trap_number
    if args.json:
        json.dump(_stats_json_payload(profile, result_value, args.top),
                  sys.stdout, indent=2, default=str)
        sys.stdout.write("\n")
    else:
        _render_stats_report(profile, result_value, args.top,
                             sys.stdout)
    return 0


# ---------------------------------------------------------------------------
# repro profile — step attribution across tiers
# ---------------------------------------------------------------------------


def _flight_compile_split(flight):
    """(compile_seconds, warm_compiles, error_compiles) from the flight
    recorder's ``tier2.compile.end`` events."""
    seconds = 0.0
    warm = errors = 0
    if flight is not None:
        for event in flight.events("tier2.compile.end"):
            seconds += event.get("seconds", 0.0)
            if event.get("warm"):
                warm += 1
            if event.get("kind") == "error":
                errors += 1
    return seconds, warm, errors


def _flight_reasons(flight, type_: str) -> dict:
    """Reason -> count over one flight event type."""
    reasons: dict = {}
    if flight is not None:
        for event in flight.events(type_):
            reason = event.get("reason", "?")
            reasons[reason] = reasons.get(reason, 0) + 1
    return reasons


def _profile_payload(profiler, interpreter, result, flight,
                     top: int) -> dict:
    """The ``repro profile`` report as one JSON-ready dict (also the
    substrate for the human-readable rendering)."""
    data = profiler.to_dict()
    compile_seconds, warm, errors = _flight_compile_split(flight)
    stats = getattr(getattr(interpreter, "tier2", None), "stats", None)
    payload = {
        "command": "profile",
        "result": result.return_value,
        "steps": result.steps,
        "tier1_steps": data["tier1_steps"],
        "tier2_steps": data["tier2_steps"],
        "tier3_steps": data["tier3_steps"],
        "engine_tier2_steps": getattr(interpreter, "tier2_steps", 0),
        "engine_tier3_steps": getattr(interpreter, "tier3_steps", 0),
        "duration_seconds": data["duration_seconds"],
        "tiers": data["tiers"],
        "functions": data["functions"][:top] if top else
        data["functions"],
        "compile": {
            "seconds": round(compile_seconds, 9),
            "warm": warm,
            "errors": errors,
            "share": (compile_seconds / data["duration_seconds"]
                      if data["duration_seconds"] else 0.0),
        },
        "deopt_reasons": _flight_reasons(flight, "tier2.deopt"),
        "pin_reasons": _flight_reasons(flight, "tier2.pin"),
        "promotion_reasons": _flight_reasons(flight, "tier2.promote"),
    }
    if stats is not None:
        payload["tier2"] = {
            "functions_compiled": stats.functions_compiled,
            "warm_compiles": stats.warm_compiles,
            "superblocks_compiled": stats.superblocks_compiled,
            "osr_entries": stats.osr_entries,
            "osr_upgrades": stats.osr_upgrades,
            "deopts": stats.deopts,
            "pins": stats.pins,
            "invalidations": stats.invalidations,
            "compile_seconds": round(stats.compile_seconds, 9),
            "side_exits": getattr(interpreter, "t2_side_exits", 0),
        }
        if stats.async_enqueued:
            payload["tier2"]["async"] = {
                "enqueued": stats.async_enqueued,
                "swap_ins": stats.swap_ins,
                "swap_wait_seconds":
                    round(stats.swap_wait_seconds, 9),
                "stale_drops": stats.stale_drops,
            }
    if stats is not None and getattr(
            getattr(interpreter, "tier2", None), "tier3", False):
        payload["tier3"] = {
            "functions_compiled": stats.tier3_compiled,
            "warm_compiles": stats.tier3_warm,
            "compile_seconds": round(stats.tier3_compile_seconds, 9),
            "calls": getattr(interpreter, "tier3_calls", 0),
            "deopts": stats.tier3_deopts,
            "pins": stats.tier3_pins,
            "invalidations": stats.tier3_invalidations,
            "backend": interpreter.tier2.tier3_backend,
            "threaded_units": stats.tier3_threaded_units,
            "step_units": stats.tier3_step_units,
            "degraded": stats.tier3_degraded,
        }
        payload["tier3_pin_reasons"] = _flight_reasons(
            flight, "tier3.pin")
    vectorization = _vectorization_payload()
    if vectorization is not None:
        payload["vectorization"] = vectorization
    if flight is not None:
        payload["flight_events"] = flight.counts()
    return payload


def _vectorization_payload() -> Optional[dict]:
    """The ``vec.*`` counters folded into one report row: loops
    vectorized, rejections by reason, and lanes executed per tier."""
    rows = observe.registry().counters("vec.")
    if not rows:
        return None
    info = {"loops_vectorized": 0, "loops_rejected": {}, "lanes": {}}
    for name, labels, value in rows:
        label_map = dict(labels)
        if name == "vec.loops_vectorized":
            info["loops_vectorized"] += int(value)
        elif name == "vec.loops_rejected":
            reason = label_map.get("reason", "?")
            info["loops_rejected"][reason] = \
                info["loops_rejected"].get(reason, 0) + int(value)
        elif name == "vec.lanes":
            engine = label_map.get("engine", "?")
            info["lanes"][engine] = \
                info["lanes"].get(engine, 0) + int(value)
    return info


def _render_profile_report(payload: dict, out) -> None:
    out.write("== run ==\n")
    out.write("  result={0} steps={1} duration={2:.4f}s\n".format(
        payload["result"], payload["steps"],
        payload["duration_seconds"]))
    out.write(
        "  tier1_steps={0} tier2_steps={1} tier3_steps={2}\n".format(
            payload["tier1_steps"], payload["tier2_steps"],
            payload.get("tier3_steps", 0)))

    total = max(payload["steps"], 1)
    out.write("== tiers ==\n")
    out.write("  {0:<12} {1:>12} {2:>7} {3:>10}\n".format(
        "tier", "steps", "%", "seconds"))
    for tier, row in payload["tiers"].items():
        out.write("  {0:<12} {1:>12} {2:>6.1f}% {3:>10.4f}\n".format(
            tier, row["steps"], 100.0 * row["steps"] / total,
            row["seconds"]))

    if payload["functions"]:
        out.write("== hottest functions ==\n")
        out.write("  {0:<28} {1:<10} {2:>12} {3:>7} {4:>10} "
                  "{5:>7}\n".format("function", "tier", "steps", "%",
                                    "seconds", "calls"))
        for row in payload["functions"]:
            out.write(
                "  {0:<28} {1:<10} {2:>12} {3:>6.1f}% {4:>10.4f} "
                "{5:>7}\n".format(
                    row["function"][:28], row["tier"], row["steps"],
                    100.0 * row["steps"] / total, row["seconds"],
                    row["calls"]))

    tier2 = payload.get("tier2")
    if tier2:
        out.write("== jit lifecycle ==\n")
        out.write(
            "  compiled={0} (warm={1}) superblocks={2} "
            "osr_entries={3} osr_upgrades={4} side_exits={5}\n".format(
                tier2["functions_compiled"], tier2["warm_compiles"],
                tier2["superblocks_compiled"], tier2["osr_entries"],
                tier2["osr_upgrades"], tier2["side_exits"]))
        out.write("  deopts={0} pins={1} invalidations={2}\n".format(
            tier2["deopts"], tier2["pins"], tier2["invalidations"]))
        async_info = tier2.get("async")
        if async_info:
            out.write(
                "  async: enqueued={0} swap_ins={1} "
                "swap_wait={2:.4f}s stale_drops={3}\n".format(
                    async_info["enqueued"], async_info["swap_ins"],
                    async_info["swap_wait_seconds"],
                    async_info["stale_drops"]))
    tier3 = payload.get("tier3")
    if tier3:
        out.write("== tier-3 lifecycle ==\n")
        out.write(
            "  compiled={0} (warm={1}) calls={2} "
            "compile_seconds={3:.4f}\n".format(
                tier3["functions_compiled"], tier3["warm_compiles"],
                tier3["calls"], tier3["compile_seconds"]))
        out.write("  deopts={0} pins={1} invalidations={2}\n".format(
            tier3["deopts"], tier3["pins"], tier3["invalidations"]))
        if "backend" in tier3:
            out.write(
                "  backend={0}: threaded_units={1} step_units={2} "
                "degraded={3}\n".format(
                    tier3["backend"], tier3.get("threaded_units", 0),
                    tier3.get("step_units", 0),
                    tier3.get("degraded", 0)))
    vectorization = payload.get("vectorization")
    if vectorization:
        out.write("== vectorization ==\n")
        out.write("  loops_vectorized={0}\n".format(
            vectorization["loops_vectorized"]))
        lanes = vectorization.get("lanes") or {}
        if lanes:
            out.write("  lanes: {0}\n".format(" ".join(
                "{0}={1}".format(engine, lanes[engine])
                for engine in sorted(lanes))))
        rejected = vectorization.get("loops_rejected") or {}
        for reason in sorted(rejected, key=lambda r: -rejected[r]):
            out.write("  rejected {0:>5}  {1}\n".format(
                rejected[reason], reason))
    compile_info = payload["compile"]
    out.write(
        "  compile_seconds={0:.4f} ({1:.1f}% of run)\n".format(
            compile_info["seconds"], 100.0 * compile_info["share"]))
    for title, key in (("promotion reasons", "promotion_reasons"),
                       ("deopt reasons", "deopt_reasons"),
                       ("pin reasons", "pin_reasons"),
                       ("tier-3 pin reasons", "tier3_pin_reasons")):
        reasons = payload.get(key)
        if reasons:
            out.write("== {0} ==\n".format(title))
            for reason in sorted(reasons, key=lambda r: -reasons[r]):
                out.write("  {0:>5}  {1}\n".format(reasons[reason],
                                                   reason))


def _cmd_profile(args) -> int:
    from repro.observe.profiler import StepProfiler

    module = _load_module(args.input)
    if args.optimize > 0 or args.vectorize:
        optimize(module, level=args.optimize,
                 vectorize=args.vectorize)
    program_args = _parse_program_args(args.args)
    problem = _check_program_args(module, args.entry, program_args)
    if problem:
        sys.stderr.write("profile: " + problem)
        return 2
    # profile defaults to the full tiered pipeline; --no-* flags
    # peel layers off for A/B comparisons (tier 3 is opt-in)
    tier2_on = args.engine == "fast" and not args.no_tier2
    args.tier2 = tier2_on
    args.superblocks = tier2_on and not args.no_superblocks
    args.osr = tier2_on and not args.no_osr
    args.async_compile = tier2_on and \
        getattr(args, "async_compile", False)
    args.tier3 = tier2_on and getattr(args, "tier3", False)
    profiler = StepProfiler(record_stack=bool(args.speedscope))
    tier2_cache = _make_tier2_cache(module, args) if tier2_on else False
    interpreter = Interpreter(module,
                              privileged=args.privileged,
                              engine=args.engine,
                              tier2=tier2_cache,
                              profiler=profiler)
    try:
        result = interpreter.run(args.entry, program_args)
    except ExecutionTrap as trap:
        sys.stderr.write("trap: {0}\n".format(trap))
        return 128 + trap.trap_number
    finally:
        if tier2_cache:
            tier2_cache.flush_storage()
            stats = tier2_cache.stats
            if stats.swap_ins:
                # Background compile work never shows up in frame-
                # boundary accounting; report it alongside.
                profiler.note_background_compiles(
                    stats.swap_ins, stats.compile_seconds,
                    stats.swap_wait_seconds)
            tier2_cache.close()
    # under --json stdout carries only the document; the program's own
    # output moves to stderr
    (sys.stderr if args.json else sys.stdout).write(result.output)
    payload = _profile_payload(profiler, interpreter, result,
                               observe.flight(), args.top)
    if args.speedscope:
        profiler.write_speedscope(args.speedscope,
                                  name="repro profile " + args.input)
    if args.json:
        json.dump(payload, sys.stdout, indent=2, default=str)
        sys.stdout.write("\n")
    else:
        _render_profile_report(payload, sys.stdout)
    return 0


# ---------------------------------------------------------------------------
# Argument parsing and the observability lifecycle
# ---------------------------------------------------------------------------


def _add_observe_flags(sub) -> None:
    sub.add_argument(
        "--trace", metavar="FILE",
        help="write a span trace (Chrome trace_event JSON; "
             ".jsonl suffix selects JSONL)")
    sub.add_argument(
        "--metrics", metavar="FILE",
        help="write the metrics registry snapshot as JSON")


def _add_flight_flag(sub) -> None:
    sub.add_argument(
        "--flight-record", metavar="FILE",
        help="record the JIT lifecycle (promotions, compiles, "
             "superblocks, OSR, deopts, traps, cache events) in a "
             "bounded ring buffer and write it as JSONL")


def _add_tier3_flags(sub) -> None:
    sub.add_argument(
        "--tier3", action="store_true",
        help="promote functions that stay hot in tier 2 to native "
             "units (translated with the x86/sparc back ends, run by "
             "the hosted executor; implies --tier2)")
    sub.add_argument(
        "--tier3-threshold", type=int, default=None, metavar="N",
        help="tier-2 step credit before tier-3 promotion "
             "(0 = promote on first lookup)")
    sub.add_argument(
        "--tier3-target", choices=("x86", "sparc"), default=None,
        help="back end for tier-3 native units (default x86)")
    sub.add_argument(
        "--tier3-backend", choices=("threaded", "step"), default=None,
        help="how hosted units execute: block-compiled direct-threaded "
             "code (threaded, default) or the one-instruction step "
             "interpreter (the precise oracle)")


def _add_async_flags(sub) -> None:
    sub.add_argument(
        "--async-compile", action="store_true",
        help="compile tier-2 units on a background worker instead of "
             "on the promoting call; units swap in at the next safe "
             "point (implies --tier2)")
    sub.add_argument(
        "--compile-workers", type=int, default=None, metavar="N",
        help="background compile worker threads (default 1)")
    sub.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="BYTES",
        help="LRU size budget per --translation-cache cache "
             "(default: unbounded)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The LLVA toolchain (MICRO 2003 reproduction).")
    commands = parser.add_subparsers(dest="command", required=True)

    cc = commands.add_parser("cc", help="compile MiniC to object code")
    cc.add_argument("input")
    cc.add_argument("-o", "--output")
    cc.add_argument("-O", "--optimize", type=int, default=0)
    cc.add_argument("--pointer-size", type=int, default=8,
                    choices=(4, 8))
    cc.add_argument("--endian", default="little",
                    choices=("little", "big"))
    cc.add_argument("--vectorize", action="store_true",
                    help="append the loop autovectorizer to the "
                         "optimization pipeline")
    _add_observe_flags(cc)
    cc.set_defaults(func=_cmd_cc)

    as_cmd = commands.add_parser(
        "as", help="assemble .ll (or re-encode) to object code")
    as_cmd.add_argument("input")
    as_cmd.add_argument("-o", "--output")
    as_cmd.set_defaults(func=_cmd_as)

    dis = commands.add_parser("dis",
                              help="disassemble object code to .ll")
    dis.add_argument("input")
    dis.add_argument("-o", "--output")
    dis.set_defaults(func=_cmd_dis)

    opt = commands.add_parser("opt", help="run the optimizer")
    opt.add_argument("input")
    opt.add_argument("-o", "--output")
    opt.add_argument("-O", "--optimize", type=int, default=2)
    opt.add_argument("--link-time", action="store_true")
    opt.add_argument("--vectorize", action="store_true",
                     help="append the loop autovectorizer to the "
                          "optimization pipeline")
    _add_observe_flags(opt)
    opt.set_defaults(func=_cmd_opt)

    link = commands.add_parser("link", help="link modules")
    link.add_argument("inputs", nargs="+")
    link.add_argument("-o", "--output")
    link.set_defaults(func=_cmd_link)

    run = commands.add_parser(
        "run", help="execute (interpreter, or --target JIT)")
    run.add_argument("input")
    run.add_argument("--target", choices=("x86", "sparc"))
    run.add_argument("--engine", choices=("fast", "reference"),
                     default="reference",
                     help="interpreter engine (ignored with --target): "
                          "'fast' is the pre-decoded closure-threaded "
                          "engine, 'reference' the semantic oracle")
    run.add_argument("--entry", default="main")
    run.add_argument("--privileged", action="store_true")
    run.add_argument("--vectorize", action="store_true",
                     help="run the loop autovectorizer over the "
                          "loaded module before execution (compose "
                          "with any engine, tier, or --sanitize)")
    run.add_argument("--sanitize", action="store_true",
                     help="run under llva-san: shadow-memory checking "
                          "with redzones, a free quarantine, and "
                          "per-allocation fault reports (interpreter "
                          "engines only)")
    run.add_argument("--tier2", action="store_true",
                     help="enable the tiered translator: hot functions "
                          "are compiled to Python bytecode "
                          "(implies --engine fast)")
    run.add_argument("--tier2-threshold", type=int, default=None,
                     metavar="N",
                     help="invocations before a function is promoted "
                          "to tier 2 (0 = compile on first call)")
    run.add_argument("--superblocks", action="store_true",
                     help="tier 2 compiles hot traces as straight-line "
                          "superblocks guided by the block profile "
                          "(implies --tier2)")
    run.add_argument("--osr", action="store_true",
                     help="on-stack replacement: a tier-1 activation "
                          "stuck in a hot loop enters tier 2 "
                          "mid-function (implies --tier2)")
    _add_tier3_flags(run)
    run.add_argument("--translation-cache", metavar="DIR",
                     help="persist tier-2 translations in DIR "
                          "(POSIX storage API) for cross-process "
                          "warm starts")
    _add_async_flags(run)
    run.add_argument("--stats", action="store_true")
    _add_observe_flags(run)
    _add_flight_flag(run)
    run.add_argument("args", nargs="*")
    run.set_defaults(func=_cmd_run)

    llc = commands.add_parser(
        "llc", help="translate to a native listing")
    llc.add_argument("input")
    llc.add_argument("--target", default="sparc",
                     choices=("x86", "sparc"))
    llc.add_argument("-o", "--output")
    llc.set_defaults(func=_cmd_llc)

    stats = commands.add_parser(
        "stats",
        help="run a program fully instrumented and print a "
             "metrics/profile report")
    stats.add_argument("input", nargs="?")
    stats.add_argument("--load", metavar="METRICS_JSON",
                       help="pretty-print an exported --metrics file "
                            "instead of running")
    stats.add_argument("--target", choices=("x86", "sparc"))
    stats.add_argument("--engine", choices=("fast", "reference"),
                       default="reference",
                       help="interpreter engine (ignored with --target)")
    stats.add_argument("-O", "--optimize", type=int, default=0)
    stats.add_argument("--vectorize", action="store_true",
                       help="append the loop autovectorizer to the "
                            "optimization pipeline")
    stats.add_argument("--entry", default="main")
    stats.add_argument("--privileged", action="store_true")
    stats.add_argument("--sanitize", action="store_true",
                       help="run under llva-san (interpreter engines "
                            "only)")
    stats.add_argument("--top", type=int, default=10,
                       help="rows in the opcode/hot-block tables")
    stats.add_argument("--cache", metavar="DIR",
                       help="LLEE translation cache directory "
                            "(enables cache hits across runs)")
    stats.add_argument("--tier2", action="store_true",
                       help="enable the tiered translator "
                            "(implies --engine fast)")
    stats.add_argument("--tier2-threshold", type=int, default=None,
                       metavar="N",
                       help="promotion threshold (0 = first call)")
    stats.add_argument("--superblocks", action="store_true",
                       help="trace-guided superblock tier-2 codegen "
                            "(implies --tier2)")
    stats.add_argument("--osr", action="store_true",
                       help="on-stack replacement at hot loop headers "
                            "(implies --tier2)")
    _add_tier3_flags(stats)
    stats.add_argument("--translation-cache", metavar="DIR",
                       help="persist tier-2 translations in DIR for "
                            "cross-process warm starts")
    _add_async_flags(stats)
    stats.add_argument("--json", action="store_true",
                       help="emit the report as JSON instead of the "
                            "human-readable rendering")
    _add_observe_flags(stats)
    _add_flight_flag(stats)
    stats.add_argument("args", nargs="*")
    stats.set_defaults(func=_cmd_stats)

    profile = commands.add_parser(
        "profile",
        help="run under the step-attribution profiler: per-function "
             "per-tier steps and wall time, the JIT lifecycle, and "
             "deopt reasons (tier2+superblocks+OSR on by default)")
    profile.add_argument("input")
    profile.add_argument("--engine", choices=("fast", "reference"),
                         default="fast",
                         help="interpreter engine (tier 2 requires "
                              "'fast', the default)")
    profile.add_argument("-O", "--optimize", type=int, default=0)
    profile.add_argument("--vectorize", action="store_true",
                         help="append the loop autovectorizer to the "
                              "optimization pipeline")
    profile.add_argument("--entry", default="main")
    profile.add_argument("--privileged", action="store_true")
    profile.add_argument("--top", type=int, default=10,
                         help="rows in the hot-function table")
    profile.add_argument("--no-tier2", action="store_true",
                         help="profile pure tier-1 execution")
    profile.add_argument("--no-superblocks", action="store_true",
                         help="tier 2 without trace-guided superblocks")
    profile.add_argument("--no-osr", action="store_true",
                         help="tier 2 without on-stack replacement")
    profile.add_argument("--tier2-threshold", type=int, default=None,
                         metavar="N",
                         help="promotion threshold (0 = first call)")
    _add_tier3_flags(profile)
    profile.add_argument("--translation-cache", metavar="DIR",
                         help="persist tier-2 translations in DIR for "
                              "cross-process warm starts")
    _add_async_flags(profile)
    profile.add_argument("--json", action="store_true",
                         help="emit the profile as JSON instead of "
                              "the human-readable report")
    profile.add_argument("--speedscope", metavar="FILE",
                         help="write the tier timeline as a "
                              "speedscope.app JSON document")
    _add_observe_flags(profile)
    _add_flight_flag(profile)
    profile.add_argument("args", nargs="*")
    profile.set_defaults(func=_cmd_profile)

    return parser


def _wants_observability(args) -> bool:
    return bool(getattr(args, "trace", None)
                or getattr(args, "metrics", None)
                or getattr(args, "stats", False)
                or getattr(args, "flight_record", None)
                or args.command in ("stats", "profile"))


def _wants_flight(args) -> bool:
    """The flight recorder costs one attribute test per emit site, so
    it only flies when asked for: ``--flight-record`` or ``repro
    profile`` (which reads compile/deopt events for its report)."""
    return bool(getattr(args, "flight_record", None)
                or args.command == "profile")


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    observing = _wants_observability(args)
    if observing:
        observe.configure(flight=_wants_flight(args))
    try:
        with observe.span("cli." + args.command):
            status = args.func(args)
    finally:
        export_failed = False
        if observing:
            try:
                trace_path = getattr(args, "trace", None)
                if trace_path:
                    observe.tracer().write(trace_path)
                metrics_path = getattr(args, "metrics", None)
                if metrics_path:
                    observe.registry().write_json(metrics_path)
                flight_path = getattr(args, "flight_record", None)
                recorder = observe.flight()
                if flight_path and recorder is not None:
                    recorder.write_jsonl(flight_path)
            except OSError as error:
                sys.stderr.write(
                    "{0}: cannot write observability export: {1}\n"
                    .format(args.command, error))
                export_failed = True
            finally:
                observe.disable()
    return 1 if export_failed and not status else status


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
