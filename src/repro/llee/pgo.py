"""Idle-time profile-guided optimization (Section 4.2, item 4).

"The rich information in LLVA also enables 'idle-time' profile-guided
optimization using the translator's optimization and code generation
capabilities ... using profile information gathered from executions on
an end-user's system."

The pipeline implemented here:

1. inline *hot* call sites (call sites whose containing block executed
   at least ``hot_calls`` times), regardless of the static size
   threshold — this is also what produces the cross-procedure traces;
2. re-run the machine-independent optimizer;
3. form traces from the profile and lay blocks out in trace order,
   straightening the hot paths for the translator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ir import instructions as insts
from repro.ir.module import Function, Module
from repro.ir.verifier import verify_module
from repro.llee.profile import Profile
from repro.llee.tracecache import SoftwareTraceCache
from repro.transforms.inline import inline_call
from repro.transforms.pass_manager import optimize


@dataclass
class PGOReport:
    hot_calls_inlined: int
    traces_formed: int
    trace_coverage: float
    functions_relaid: int


def idle_time_reoptimize(module: Module, profile: Profile,
                         hot_calls: int = 200,
                         max_callee_size: int = 400,
                         hot_threshold: int = 50) -> PGOReport:
    """Reoptimize *module* in place using *profile*."""
    inlined = _inline_hot_calls(module, profile, hot_calls,
                                max_callee_size)
    # Traces are formed against the *profiled* CFG shape, before the
    # optimizer merges or renames blocks; the cleanup pipeline afterwards
    # preserves relative block order, so the straightened layout
    # survives.
    cache = SoftwareTraceCache(module, hot_threshold=hot_threshold)
    traces = cache.form_traces(profile)
    relaid = cache.apply_layout()
    optimize(module, level=2)
    verify_module(module)
    # The optimizer rewrites bodies in place without touching
    # smc_version; invalidate every memoized instruction count.
    for function in module.functions.values():
        function._cached_num_instructions = None
    return PGOReport(
        hot_calls_inlined=inlined,
        traces_formed=len(traces),
        trace_coverage=cache.coverage(profile),
        functions_relaid=relaid,
    )


def _inline_hot_calls(module: Module, profile: Profile,
                      hot_calls: int, max_callee_size: int) -> int:
    inlined = 0
    for function in list(module.functions.values()):
        if function.is_declaration:
            continue
        sites: List[insts.CallInst] = []
        for block in function.blocks:
            block_heat = profile.block_count(function.name,
                                             block.name or "")
            if block_heat < hot_calls:
                continue
            for inst in block.instructions:
                if isinstance(inst, insts.CallInst) \
                        and isinstance(inst.callee, Function) \
                        and _inlinable(function, inst.callee,
                                       max_callee_size):
                    sites.append(inst)
        for call in sites:
            if call.parent is None:
                continue
            inline_call(call, call.callee)
            inlined += 1
        if sites:
            # Inlining rewrites the body without bumping smc_version;
            # drop the memoized instruction count by hand.
            function._cached_num_instructions = None
    return inlined


def _inlinable(caller: Function, callee: Function,
               max_callee_size: int) -> bool:
    if callee.is_declaration or callee.is_intrinsic:
        return False
    if callee is caller:
        return False
    if callee.function_type.vararg:
        return False
    if callee.num_instructions() > max_callee_size:
        return False
    for inst in callee.instructions():
        if isinstance(inst, insts.UnwindInst):
            return False
        # Direct recursion in the callee would duplicate unboundedly.
        if isinstance(inst, (insts.CallInst, insts.InvokeInst)) \
                and inst.callee is callee:
            return False
    return True
