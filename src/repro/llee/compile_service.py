"""Background tier-2 compilation: LLEE as a translation service.

The paper's LLEE performs translation "offline or idle-time", decoupled
from program execution.  This module supplies the execution-time half
of that idea: a bounded pool of daemon worker threads consuming a
priority queue of compile jobs, so a promoting activation never blocks
on translation — it submits a job, keeps running tier 1 (or the
profiling stage), and the engine swaps the compiled unit in at the
next safe yield point (a call boundary or a back-edge check).

Division of labour with :class:`repro.execution.tier2.Tier2Cache`:

* the cache decides *what* to compile (promotion policy, warm blobs,
  trace layouts) and owns every piece of mutable engine state — stats,
  the unit table, pins — which it touches **only on the engine
  thread**;
* the service runs the *pure* part (codegen + ``compile()`` + ``exec``
  of the unit namespace, which only reads the module) on a worker and
  parks the result in a :class:`concurrent.futures.Future`;
* the engine polls the future at safe points and installs the result
  itself, so no lock ever guards the interpreter's hot path.

Jobs are ordered by caller-supplied priority (tier-2 promotion passes
the function's accumulated step credit, so the hottest code compiles
first; OSR requests jump the queue).  One service can serve several
caches — the multi-tenant shape an OS-wide LLEE would have.

Scheduling policy.  The default policy, ``"idle"``, is the paper's
own: translation happens *at idle time*.  Engines bracket their runs
with :meth:`CompileService.engine_begin` / :meth:`engine_end`; while
any engine is active, workers hold queued jobs instead of building
them, because on a GIL-bound (or single-core) host a worker slice is
stolen straight from the running program — interleaved compilation
slows the very run it is trying to speed up.  Jobs flow again the
moment the last engine goes idle, or immediately when a caller
*demands* progress (``drain`` raises demand, so explicit waits — end
of run, warm-cache flush — always complete).  ``policy="eager"``
builds as soon as a worker is free, which is the right shape on a
multi-core host where workers run beside the engine instead of
beneath it.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional

#: Worker threads per service.  One is the right default for the
#: CPython prototype: compilation contends with the interpreter for
#: the GIL, so extra workers add swap-in latency jitter, not
#: throughput.
DEFAULT_WORKERS = 1


class ServiceStats:
    __slots__ = ("submitted", "completed", "failed", "cancelled",
                 "queue_peak", "busy_seconds")

    def __init__(self):
        self.submitted = 0
        self.completed = 0
        #: Jobs whose builder raised; the exception is parked in the
        #: future for the polling engine to classify (pin vs drop).
        self.failed = 0
        self.cancelled = 0
        #: High-water mark of jobs waiting in the queue.
        self.queue_peak = 0
        #: Total wall time workers spent inside builders.
        self.busy_seconds = 0.0


class CompileJob:
    """One submitted translation request."""

    __slots__ = ("label", "priority", "future", "enqueued_at",
                 "started_at", "finished_at", "seconds", "ready")

    def __init__(self, label: str, priority: int, enqueued_at: float):
        self.label = label
        self.priority = priority
        self.future: Future = Future()
        self.enqueued_at = enqueued_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: Builder wall time (set by the worker before the future
        #: resolves, so a polling reader always sees it populated).
        self.seconds = 0.0
        #: Lock-free completion flag, set (under the GIL) *after* the
        #: future resolves or is cancelled.  Pollers on the engine's
        #: per-call hot path read this plain attribute instead of
        #: taking the future's condition lock via ``Future.done()``.
        self.ready = False

    @property
    def done(self) -> bool:
        return self.future.done()

    @property
    def wait_seconds(self) -> float:
        """Enqueue-to-start latency (0 until the job starts)."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.enqueued_at


#: Queue entries sort by (-priority, seq); the shutdown sentinel uses
#: a priority above any job so workers exit promptly.
_STOP_PRIORITY = float("-inf")


class CompileService:
    """A bounded worker pool draining a priority queue of compile jobs.

    Workers are daemon threads, started lazily on the first submit —
    a service that never compiles costs nothing.  ``shutdown()``
    cancels queued jobs and stops the workers; jobs already running
    finish (their futures resolve normally).
    """

    def __init__(self, workers: int = DEFAULT_WORKERS,
                 name: str = "llee-compile",
                 policy: str = "idle",
                 clock=time.perf_counter):
        if policy not in ("idle", "eager"):
            raise ValueError("policy must be 'idle' or 'eager', "
                             "not {0!r}".format(policy))
        self.workers = max(int(workers), 1)
        self.name = name
        self.policy = policy
        self._clock = clock
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._outstanding: List[Future] = []
        self._closed = False
        #: Engines currently inside a run / callers demanding progress.
        self._active_engines = 0
        self._demand = 0
        #: Set while workers may build (idle policy gates on it).
        self._clear = threading.Event()
        self._clear.set()
        self.stats = ServiceStats()

    # -- idle-time gating ----------------------------------------------

    def _update_clear(self) -> None:
        # Called under self._lock.
        if (self.policy == "idle" and self._active_engines > 0
                and self._demand == 0 and not self._closed):
            self._clear.clear()
        else:
            self._clear.set()

    def engine_begin(self) -> None:
        """An engine entered a run: under the idle policy, park queued
        builds until it finishes (or someone drains)."""
        with self._lock:
            self._active_engines += 1
            self._update_clear()

    def engine_end(self) -> None:
        with self._lock:
            self._active_engines = max(self._active_engines - 1, 0)
            self._update_clear()

    def begin_demand(self) -> None:
        """A caller is waiting on results: let workers build even while
        engines are active (pairs with :meth:`end_demand`)."""
        with self._lock:
            self._demand += 1
            self._update_clear()

    def end_demand(self) -> None:
        with self._lock:
            self._demand = max(self._demand - 1, 0)
            self._update_clear()

    # -- submission (engine thread) ------------------------------------

    def submit(self, build: Callable[[], object], priority: int = 0,
               label: str = "") -> CompileJob:
        """Queue *build* and return its job.  Higher *priority* runs
        first; ties run in submission order (FIFO)."""
        job = CompileJob(label, int(priority), self._clock())
        with self._lock:
            if self._closed:
                raise RuntimeError("compile service is shut down")
            self.stats.submitted += 1
            self._outstanding.append(job.future)
            self._queue.put((-job.priority, next(self._seq), job, build))
            depth = self._queue.qsize()
            if depth > self.stats.queue_peak:
                self.stats.queue_peak = depth
            self._ensure_workers()
        return job

    def queue_depth(self) -> int:
        """Jobs waiting to start (approximate, by nature)."""
        return self._queue.qsize()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until every submitted job has resolved (or *timeout*
        seconds elapsed); returns True when fully drained."""
        deadline = None if timeout is None else self._clock() + timeout
        self.begin_demand()
        try:
            while True:
                with self._lock:
                    self._outstanding = [future for future in
                                         self._outstanding
                                         if not future.done()]
                    pending = list(self._outstanding)
                if not pending:
                    return True
                remaining = None
                if deadline is not None:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        return False
                from concurrent.futures import wait as _wait
                _wait(pending, timeout=remaining)
        finally:
            self.end_demand()

    def shutdown(self, wait: bool = False) -> None:
        """Cancel queued jobs and stop the workers.  Futures of
        cancelled jobs report ``CancelledError``; pollers treat that
        as "never compiled" and fall back to online translation."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._update_clear()  # release workers parked on the gate
            threads = list(self._threads)
        # Drain the queue: anything not yet picked up is cancelled.
        while True:
            try:
                _prio, _seq, job, _build = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not None and job.future.cancel():
                self.stats.cancelled += 1
                job.ready = True
            self._queue.task_done()
        for _ in threads:
            self._queue.put((_STOP_PRIORITY, next(self._seq), None, None))
        if wait:
            for thread in threads:
                thread.join(timeout=5.0)

    # -- the workers ---------------------------------------------------

    def _ensure_workers(self) -> None:
        # Called under self._lock.
        while len(self._threads) < self.workers:
            thread = threading.Thread(
                target=self._worker, daemon=True,
                name="{0}-{1}".format(self.name, len(self._threads)))
            self._threads.append(thread)
            thread.start()

    def _worker(self) -> None:
        clock = self._clock
        while True:
            _prio, _seq, job, build = self._queue.get()
            if job is None:  # shutdown sentinel
                self._queue.task_done()
                return
            # Idle policy: hold the job until no engine is running (or
            # a drain demands progress).  The job is already dequeued,
            # so one later higher-priority job may briefly queue behind
            # it — acceptable, since nothing builds while parked.
            while not self._clear.wait(timeout=0.05):
                if self._closed or job.future.cancelled():
                    break
            if self._closed and not job.future.done():
                if job.future.cancel():
                    with self._lock:
                        self.stats.cancelled += 1
                job.ready = True
                self._queue.task_done()
                continue
            if not job.future.set_running_or_notify_cancel():
                # Cancelled while queued/parked — typically the engine
                # escalating a hot function to an inline compile.
                with self._lock:
                    self.stats.cancelled += 1
                job.ready = True
                self._queue.task_done()
                continue
            job.started_at = clock()
            try:
                result = build()
            except BaseException as error:
                job.finished_at = clock()
                job.seconds = job.finished_at - job.started_at
                with self._lock:
                    self.stats.failed += 1
                    self.stats.busy_seconds += job.seconds
                job.future.set_exception(error)
                job.ready = True
            else:
                job.finished_at = clock()
                job.seconds = job.finished_at - job.started_at
                with self._lock:
                    self.stats.completed += 1
                    self.stats.busy_seconds += job.seconds
                job.future.set_result(result)
                job.ready = True
            self._queue.task_done()
