"""Profiling support (Section 4.2).

"Our V-ISA provides us with ability to perform static instrumentation to
assist runtime path profiling" — this module does exactly that: it
rewrites LLVA code to bump a per-basic-block counter held in an ordinary
global array, so profiles can be collected by *any* engine (interpreter
or either native target) and read back out of simulated memory through
the normal typed-load path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ir import types, values
from repro.ir import instructions as insts
from repro.ir.module import BasicBlock, Function, GlobalVariable, Module

COUNTER_SYMBOL = "__prof.counters"


@dataclass
class ProfileMap:
    """Instrumentation metadata: which counter belongs to which block."""

    module: Module
    counter_global: GlobalVariable
    #: (function name, block name) -> counter index.
    index_of: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @property
    def num_counters(self) -> int:
        return len(self.index_of)


@dataclass
class Profile:
    """Collected execution counts."""

    counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def block_count(self, function: str, block: str) -> int:
        return self.counts.get((function, block), 0)

    def function_entry_count(self, function_obj: Function) -> int:
        if not function_obj.blocks:
            return 0
        return self.block_count(function_obj.name,
                                function_obj.entry_block.name or "")

    def hottest_blocks(self, limit: int = 10
                       ) -> List[Tuple[Tuple[str, str], int]]:
        ranked = sorted(self.counts.items(), key=lambda kv: -kv[1])
        return ranked[:limit]

    def record(self, function: str, block: str, count: int) -> None:
        """Add *count* executions of one block (merging profiles
        collected online, e.g. tier-2 profiling-unit counters)."""
        if count:
            key = (function, block)
            self.counts[key] = self.counts.get(key, 0) + int(count)

    def merge(self, other: "Profile") -> None:
        for (function, block), count in other.counts.items():
            self.record(function, block, count)

    # -- persistence (Section 4.1 storage API blobs) ------------------

    def to_json(self) -> bytes:
        """Serialize for cross-run persistence next to the tier-2
        translation blob, so warm starts can prime promotion counters
        and superblock layouts without re-profiling."""
        entries = [[function, block, count]
                   for (function, block), count in
                   sorted(self.counts.items())]
        return json.dumps({"version": 1, "counts": entries},
                          sort_keys=True).encode("utf-8")

    @staticmethod
    def from_json(data: bytes) -> "Profile":
        """Inverse of :meth:`to_json`; raises ``ValueError`` on any
        corrupt or version-mismatched blob."""
        try:
            blob = json.loads(data.decode("utf-8"))
        except Exception as error:
            raise ValueError("corrupt profile blob: {0}".format(error))
        if not isinstance(blob, dict) or blob.get("version") != 1:
            raise ValueError("profile blob version mismatch")
        entries = blob.get("counts")
        if not isinstance(entries, list):
            raise ValueError("corrupt profile blob: missing counts")
        profile = Profile()
        for entry in entries:
            try:
                function, block, count = entry
                profile.counts[(str(function), str(block))] = int(count)
            except Exception as error:
                raise ValueError(
                    "corrupt profile blob entry {0!r}: {1}".format(
                        entry, error))
        return profile


def instrument_module(module: Module) -> ProfileMap:
    """Insert a counter increment at the head of every basic block.

    The counters live in one global ``[N x ulong]`` array; each block
    gains ``gep / load / add / store`` — ordinary LLVA code, translated
    and executed like everything else.
    """
    if COUNTER_SYMBOL in module.globals:
        raise ValueError("module is already instrumented")
    blocks: List[Tuple[Function, BasicBlock]] = []
    for function in module.functions.values():
        for block in function.blocks:
            blocks.append((function, block))
    array_type = types.array_of(types.ULONG, max(len(blocks), 1))
    counter_global = module.create_global(
        COUNTER_SYMBOL, array_type,
        initializer=values.const_zero(array_type), internal=True)
    profile_map = ProfileMap(module, counter_global)
    for index, (function, block) in enumerate(blocks):
        profile_map.index_of[(function.name, block.name or "")] = index
        _insert_increment(block, counter_global, index)
    return profile_map


def _insert_increment(block: BasicBlock,
                      counter_global: GlobalVariable, index: int) -> None:
    position = block.first_non_phi_index()
    gep = insts.GetElementPtrInst(
        counter_global,
        [values.const_int(types.LONG, 0),
         values.const_int(types.LONG, index)],
        name="prof.ptr")
    load = insts.LoadInst(gep, name="prof.count")
    load.exceptions_enabled = False
    add = insts.AddInst(load, values.const_int(types.ULONG, 1),
                        name="prof.next")
    store = insts.StoreInst(add, gep)
    store.exceptions_enabled = False
    for offset, inst in enumerate((gep, load, add, store)):
        block.instructions.insert(position + offset, inst)
        inst.parent = block


def read_profile(profile_map: ProfileMap, engine) -> Profile:
    """Extract counts from a finished engine run (interpreter or
    machine simulator — anything with ``.image`` and ``.memory``)."""
    base = engine.image.address_of(COUNTER_SYMBOL)
    profile = Profile()
    for key, index in profile_map.index_of.items():
        value = engine.memory.read_typed(base + 8 * index, types.ULONG)
        profile.counts[key] = int(value)
    return profile


def strip_instrumentation(module: Module) -> None:
    """Remove the counters and their update code (before shipping the
    reoptimized module)."""
    counter_global = module.globals.get(COUNTER_SYMBOL)
    if counter_global is None:
        return
    for use in list(counter_global.uses):
        user = use.user
        if isinstance(user, insts.GetElementPtrInst):
            for gep_use in list(user.uses):
                gep_user = gep_use.user
                if isinstance(gep_user, insts.LoadInst):
                    # load -> add -> store chain
                    for load_use in list(gep_user.uses):
                        adder = load_use.user
                        if isinstance(adder, insts.AddInst):
                            for add_use in list(adder.uses):
                                store = add_use.user
                                if isinstance(store, insts.StoreInst):
                                    store.erase()
                            adder.erase()
                    gep_user.erase()
                elif isinstance(gep_user, insts.StoreInst):
                    gep_user.erase()
            user.erase()
    module.remove_global(counter_global)
