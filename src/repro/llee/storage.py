"""The OS-independent storage API (Section 4.1).

"The V-ABI defines a standard, OS-independent storage API with a set of
routines that enables LLEE to read, write, and validate data in offline
storage ... the basic storage API includes routines to create, delete,
and query the size of an offline cache, read or write a vector of N
bytes tagged by a unique string name from/to a cache, and check a
timestamp on an LLVA program or on a cached vector."

Implementations are *strictly optional*: "they are strictly optional and
the system will operate correctly in their absence" — LLEE falls back to
pure online translation when constructed without one.

Two implementations are provided, mirroring the paper's user-level
prototype: an in-memory store (tests, and the "no OS support" baseline
for cache-behaviour experiments) and a POSIX-directory store.

Both are **multi-tenant**: a system-wide LLEE serves many concurrent
programs from one translation cache, so the disk layout shards
entries by name hash (``<cache>/<2-hex-shard>/<entry>``), every write
is atomic (temp file + ``os.replace`` — a reader never observes a
torn vector), cross-process writers serialize on per-shard ``flock``
locks where the OS provides them, and an optional ``max_bytes``
budget evicts least-recently-used entries, tracked by a per-cache
``index.json``.  The index is advisory: reads never need it, and a
missing or corrupt index is rebuilt from a directory scan.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Dict, Optional, Tuple

from repro import observe

try:  # POSIX advisory locks; absent on some platforms.
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None

#: Index filename, kept directly under the cache directory.  Dot-
#: prefixed names (locks, in-flight temp files) and the index itself
#: are bookkeeping, not stored vectors: ``cache_size`` excludes them.
_INDEX_NAME = "index.json"


def _flight_io(op: str, cache: str, name: str,
               data: Optional[bytes]) -> None:
    """One ``llee.storage`` flight event per read/write — cheap (one
    call + None test) and only on cold storage paths."""
    flight = observe.flight()
    if flight is not None:
        flight.record("llee.storage", op=op, cache=cache, name=name,
                      hit=data is not None,
                      bytes=len(data) if data is not None else 0)


def _flight_evict(cache: str, name: str, freed: int) -> None:
    flight = observe.flight()
    if flight is not None:
        flight.record("llee.storage", op="evict", cache=cache,
                      name=name, hit=False, bytes=freed)


class StorageAPI:
    """Abstract OS-provided offline storage."""

    def create_cache(self, cache: str) -> None:
        raise NotImplementedError

    def delete_cache(self, cache: str) -> None:
        raise NotImplementedError

    def cache_size(self, cache: str) -> int:
        """Total bytes stored under *cache* (0 if absent)."""
        raise NotImplementedError

    def read(self, cache: str, name: str) -> Optional[bytes]:
        """Read the vector tagged *name*, or None."""
        raise NotImplementedError

    def write(self, cache: str, name: str, data: bytes,
              timestamp: Optional[float] = None) -> None:
        """Write a vector (creating the cache if needed)."""
        raise NotImplementedError

    def timestamp(self, cache: str, name: str) -> Optional[float]:
        """The stored vector's timestamp, or None."""
        raise NotImplementedError


class InMemoryStorage(StorageAPI):
    """Volatile storage — behaves like the paper's DAISY/Crusoe scenario
    when discarded between 'boots', and like an OS cache when kept.

    With ``max_bytes`` set, each cache is LRU-bounded like the disk
    store (reads refresh recency), so cache-pressure experiments run
    without touching a filesystem."""

    def __init__(self, max_bytes: Optional[int] = None):
        self._caches: Dict[str, Dict[str, Tuple[bytes, float]]] = {}
        self.max_bytes = max_bytes
        self.reads = 0
        self.writes = 0
        self.evictions = 0
        #: name -> monotonic use tick, per cache (LRU recency).
        self._used: Dict[str, Dict[str, int]] = {}
        self._tick = 0

    def _touch(self, cache: str, name: str) -> None:
        self._tick += 1
        self._used.setdefault(cache, {})[name] = self._tick

    def create_cache(self, cache: str) -> None:
        self._caches.setdefault(cache, {})

    def delete_cache(self, cache: str) -> None:
        self._caches.pop(cache, None)
        self._used.pop(cache, None)

    def cache_size(self, cache: str) -> int:
        entries = self._caches.get(cache, {})
        return sum(len(data) for data, _ts in entries.values())

    def read(self, cache: str, name: str) -> Optional[bytes]:
        self.reads += 1
        entry = self._caches.get(cache, {}).get(name)
        data = entry[0] if entry is not None else None
        if data is not None:
            self._touch(cache, name)
        _flight_io("read", cache, name, data)
        return data

    def write(self, cache: str, name: str, data: bytes,
              timestamp: Optional[float] = None) -> None:
        self.writes += 1
        self.create_cache(cache)
        self._caches[cache][name] = (
            bytes(data), timestamp if timestamp is not None
            else time.time())
        self._touch(cache, name)
        if self.max_bytes is not None:
            self._evict(cache, keep=name)
        _flight_io("write", cache, name, data)

    def _evict(self, cache: str, keep: str) -> None:
        entries = self._caches[cache]
        used = self._used.get(cache, {})
        total = sum(len(data) for data, _ts in entries.values())
        while total > self.max_bytes:
            victims = [n for n in entries if n != keep]
            if not victims:
                return
            victim = min(victims, key=lambda n: used.get(n, 0))
            freed = len(entries.pop(victim)[0])
            used.pop(victim, None)
            total -= freed
            self.evictions += 1
            observe.counter("llee.storage.evictions", 1, cache=cache)
            _flight_evict(cache, victim, freed)

    def timestamp(self, cache: str, name: str) -> Optional[float]:
        entry = self._caches.get(cache, {}).get(name)
        return entry[1] if entry is not None else None


class DiskStorage(StorageAPI):
    """POSIX-directory-backed storage, like the paper's user-level LLEE
    ("executes the cached native translations from the disk, using a
    user-level version of our storage API").

    Layout: ``root/<cache>/<2-hex shard>/<entry>`` with a per-cache
    ``index.json`` tracking ``{relative path: [size, last-used]}``.
    Writers take a per-shard ``flock`` (plus an in-process lock), land
    bytes with temp-file + ``os.replace``, then update the index under
    its own lock — so concurrent LLEE processes share one warm cache
    with no torn vectors.  ``max_bytes`` bounds each cache via LRU
    eviction; reads refresh recency best-effort."""

    def __init__(self, root: str, max_bytes: Optional[int] = None):
        self.root = root
        self.max_bytes = max_bytes
        self.evictions = 0
        os.makedirs(root, exist_ok=True)
        self._thread_locks: Dict[str, threading.Lock] = {}
        self._thread_locks_guard = threading.Lock()

    # -- paths ---------------------------------------------------------

    def _cache_dir(self, cache: str) -> str:
        return os.path.join(self.root, _sanitize(cache))

    @staticmethod
    def _shard_of(name: str) -> str:
        return hashlib.sha256(name.encode("utf-8")).hexdigest()[:2]

    def _entry_path(self, cache: str, name: str) -> str:
        return os.path.join(self._cache_dir(cache),
                            self._shard_of(name), _sanitize(name))

    def _entry_rel(self, name: str) -> str:
        return "/".join((self._shard_of(name), _sanitize(name)))

    # -- locking -------------------------------------------------------

    def _lock(self, path: str):
        """A two-level lock context: an in-process mutex (threads of
        one engine) wrapping an advisory ``flock`` (other processes)
        on *path*.  Degrades to the mutex alone without ``fcntl``."""
        with self._thread_locks_guard:
            mutex = self._thread_locks.get(path)
            if mutex is None:
                mutex = self._thread_locks[path] = threading.Lock()
        return _PathLock(mutex, path)

    def _shard_lock(self, cache: str, name: str):
        shard_dir = os.path.join(self._cache_dir(cache),
                                 self._shard_of(name))
        os.makedirs(shard_dir, exist_ok=True)
        return self._lock(os.path.join(shard_dir, ".lock"))

    def _index_lock(self, cache: str):
        directory = self._cache_dir(cache)
        os.makedirs(directory, exist_ok=True)
        return self._lock(os.path.join(directory, ".index.lock"))

    # -- the index -----------------------------------------------------

    def _index_path(self, cache: str) -> str:
        return os.path.join(self._cache_dir(cache), _INDEX_NAME)

    def _load_index(self, cache: str) -> Dict[str, list]:
        """Entries as ``{rel path: [size, used]}``.  Advisory: a
        missing or corrupt index is rebuilt by scanning the shards."""
        try:
            with open(self._index_path(cache), "rb") as handle:
                document = json.loads(handle.read().decode("utf-8"))
            entries = document["entries"]
            if not isinstance(entries, dict):
                raise ValueError("bad index")
            return entries
        except Exception:
            return self._scan(cache)

    def _scan(self, cache: str) -> Dict[str, list]:
        entries: Dict[str, list] = {}
        directory = self._cache_dir(cache)
        if not os.path.isdir(directory):
            return entries
        for shard in sorted(os.listdir(directory)):
            shard_dir = os.path.join(directory, shard)
            if shard.startswith(".") or shard == _INDEX_NAME \
                    or not os.path.isdir(shard_dir):
                continue
            for fname in os.listdir(shard_dir):
                if fname.startswith("."):
                    continue
                path = os.path.join(shard_dir, fname)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                entries["/".join((shard, fname))] = \
                    [status.st_size, status.st_mtime]
        return entries

    def _store_index(self, cache: str,
                     entries: Dict[str, list]) -> None:
        document = json.dumps({"version": 1, "entries": entries},
                              sort_keys=True).encode("utf-8")
        path = self._index_path(cache)
        tmp = os.path.join(self._cache_dir(cache),
                           ".index.{0}.tmp".format(os.getpid()))
        with open(tmp, "wb") as handle:
            handle.write(document)
        os.replace(tmp, path)

    # -- the storage API -----------------------------------------------

    def create_cache(self, cache: str) -> None:
        os.makedirs(self._cache_dir(cache), exist_ok=True)

    def delete_cache(self, cache: str) -> None:
        import shutil
        shutil.rmtree(self._cache_dir(cache), ignore_errors=True)

    def cache_size(self, cache: str) -> int:
        """Stored vector bytes only — the index, locks, and in-flight
        temp files are bookkeeping, not cached data."""
        return sum(size for size, _used in self._scan(cache).values())

    def read(self, cache: str, name: str) -> Optional[bytes]:
        path = self._entry_path(cache, name)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except (FileNotFoundError, NotADirectoryError, IsADirectoryError):
            _flight_io("read", cache, name, None)
            return None
        # Refresh LRU recency, best-effort: losing a touch only skews
        # eviction order, never correctness.
        try:
            with self._index_lock(cache):
                entries = self._load_index(cache)
                rel = self._entry_rel(name)
                if rel in entries:
                    entries[rel][1] = time.time()
                    self._store_index(cache, entries)
        except Exception:
            pass
        _flight_io("read", cache, name, data)
        return data

    def write(self, cache: str, name: str, data: bytes,
              timestamp: Optional[float] = None) -> None:
        data = bytes(data)
        path = self._entry_path(cache, name)
        with self._shard_lock(cache, name):
            # Atomic publish: a crash mid-write leaves only a dot-
            # prefixed temp file (invisible to reads and cache_size);
            # a concurrent reader sees the old vector or the new one,
            # never a torn mix.
            tmp = "{0}.{1}.{2}.tmp".format(
                os.path.join(os.path.dirname(path),
                             "." + os.path.basename(path)),
                os.getpid(), threading.get_ident())
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
            if timestamp is not None:
                os.utime(path, (timestamp, timestamp))
        try:
            with self._index_lock(cache):
                entries = self._load_index(cache)
                rel = self._entry_rel(name)
                entries[rel] = [len(data), time.time()]
                if self.max_bytes is not None:
                    self._evict(cache, entries, keep=rel)
                self._store_index(cache, entries)
        except Exception:
            pass
        _flight_io("write", cache, name, data)

    def _evict(self, cache: str, entries: Dict[str, list],
               keep: str) -> None:
        """Drop least-recently-used entries until the cache fits the
        budget (called under the index lock; mutates *entries* in
        place, caller persists).  The entry just written is exempt so
        a single oversized vector still lands."""
        total = sum(size for size, _used in entries.values())
        while total > self.max_bytes:
            victims = [rel for rel in entries if rel != keep]
            if not victims:
                return
            victim = min(victims, key=lambda rel: entries[rel][1])
            size = entries.pop(victim)[0]
            try:
                os.unlink(os.path.join(self._cache_dir(cache),
                                       *victim.split("/")))
            except OSError:
                pass
            total -= size
            self.evictions += 1
            observe.counter("llee.storage.evictions", 1, cache=cache)
            _flight_evict(cache, victim, size)

    def timestamp(self, cache: str, name: str) -> Optional[float]:
        path = self._entry_path(cache, name)
        if not os.path.isfile(path):
            return None
        return os.path.getmtime(path)


class _PathLock:
    """Context manager pairing an in-process mutex with an advisory
    ``flock`` on a lock file (no-op where ``fcntl`` is missing)."""

    __slots__ = ("_mutex", "_path", "_handle")

    def __init__(self, mutex: threading.Lock, path: str):
        self._mutex = mutex
        self._path = path
        self._handle = None

    def __enter__(self):
        self._mutex.acquire()
        if fcntl is not None:
            try:
                self._handle = open(self._path, "ab")
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None
        return self

    def __exit__(self, *exc):
        if self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
            self._handle.close()
            self._handle = None
        self._mutex.release()
        return False


def _sanitize(name: str) -> str:
    """A filesystem-safe, collision-free filename for *name*: the
    printable prefix keeps listings readable, the stable hash suffix
    keeps distinct names distinct (``a/b`` vs ``a_b`` used to collide
    when unsafe characters were simply replaced)."""
    safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in name)
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
    return "{0}-{1}".format(safe[:64] or "_", digest)
