"""The OS-independent storage API (Section 4.1).

"The V-ABI defines a standard, OS-independent storage API with a set of
routines that enables LLEE to read, write, and validate data in offline
storage ... the basic storage API includes routines to create, delete,
and query the size of an offline cache, read or write a vector of N
bytes tagged by a unique string name from/to a cache, and check a
timestamp on an LLVA program or on a cached vector."

Implementations are *strictly optional*: "they are strictly optional and
the system will operate correctly in their absence" — LLEE falls back to
pure online translation when constructed without one.

Two implementations are provided, mirroring the paper's user-level
prototype: an in-memory store (tests, and the "no OS support" baseline
for cache-behaviour experiments) and a POSIX-directory store.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Tuple

from repro import observe


def _flight_io(op: str, cache: str, name: str,
               data: Optional[bytes]) -> None:
    """One ``llee.storage`` flight event per read/write — cheap (one
    call + None test) and only on cold storage paths."""
    flight = observe.flight()
    if flight is not None:
        flight.record("llee.storage", op=op, cache=cache, name=name,
                      hit=data is not None,
                      bytes=len(data) if data is not None else 0)


class StorageAPI:
    """Abstract OS-provided offline storage."""

    def create_cache(self, cache: str) -> None:
        raise NotImplementedError

    def delete_cache(self, cache: str) -> None:
        raise NotImplementedError

    def cache_size(self, cache: str) -> int:
        """Total bytes stored under *cache* (0 if absent)."""
        raise NotImplementedError

    def read(self, cache: str, name: str) -> Optional[bytes]:
        """Read the vector tagged *name*, or None."""
        raise NotImplementedError

    def write(self, cache: str, name: str, data: bytes,
              timestamp: Optional[float] = None) -> None:
        """Write a vector (creating the cache if needed)."""
        raise NotImplementedError

    def timestamp(self, cache: str, name: str) -> Optional[float]:
        """The stored vector's timestamp, or None."""
        raise NotImplementedError


class InMemoryStorage(StorageAPI):
    """Volatile storage — behaves like the paper's DAISY/Crusoe scenario
    when discarded between 'boots', and like an OS cache when kept."""

    def __init__(self):
        self._caches: Dict[str, Dict[str, Tuple[bytes, float]]] = {}
        self.reads = 0
        self.writes = 0

    def create_cache(self, cache: str) -> None:
        self._caches.setdefault(cache, {})

    def delete_cache(self, cache: str) -> None:
        self._caches.pop(cache, None)

    def cache_size(self, cache: str) -> int:
        entries = self._caches.get(cache, {})
        return sum(len(data) for data, _ts in entries.values())

    def read(self, cache: str, name: str) -> Optional[bytes]:
        self.reads += 1
        entry = self._caches.get(cache, {}).get(name)
        data = entry[0] if entry is not None else None
        _flight_io("read", cache, name, data)
        return data

    def write(self, cache: str, name: str, data: bytes,
              timestamp: Optional[float] = None) -> None:
        self.writes += 1
        self.create_cache(cache)
        self._caches[cache][name] = (
            bytes(data), timestamp if timestamp is not None
            else time.time())
        _flight_io("write", cache, name, data)

    def timestamp(self, cache: str, name: str) -> Optional[float]:
        entry = self._caches.get(cache, {}).get(name)
        return entry[1] if entry is not None else None


class DiskStorage(StorageAPI):
    """POSIX-directory-backed storage, like the paper's user-level LLEE
    ("executes the cached native translations from the disk, using a
    user-level version of our storage API")."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _cache_dir(self, cache: str) -> str:
        return os.path.join(self.root, _sanitize(cache))

    def _entry_path(self, cache: str, name: str) -> str:
        return os.path.join(self._cache_dir(cache), _sanitize(name))

    def create_cache(self, cache: str) -> None:
        os.makedirs(self._cache_dir(cache), exist_ok=True)

    def delete_cache(self, cache: str) -> None:
        directory = self._cache_dir(cache)
        if not os.path.isdir(directory):
            return
        for entry in os.listdir(directory):
            os.unlink(os.path.join(directory, entry))
        os.rmdir(directory)

    def cache_size(self, cache: str) -> int:
        directory = self._cache_dir(cache)
        if not os.path.isdir(directory):
            return 0
        return sum(os.path.getsize(os.path.join(directory, entry))
                   for entry in os.listdir(directory))

    def read(self, cache: str, name: str) -> Optional[bytes]:
        path = self._entry_path(cache, name)
        if not os.path.isfile(path):
            _flight_io("read", cache, name, None)
            return None
        with open(path, "rb") as handle:
            data = handle.read()
        _flight_io("read", cache, name, data)
        return data

    def write(self, cache: str, name: str, data: bytes,
              timestamp: Optional[float] = None) -> None:
        self.create_cache(cache)
        path = self._entry_path(cache, name)
        with open(path, "wb") as handle:
            handle.write(data)
        if timestamp is not None:
            os.utime(path, (timestamp, timestamp))
        _flight_io("write", cache, name, data)

    def timestamp(self, cache: str, name: str) -> Optional[float]:
        path = self._entry_path(cache, name)
        if not os.path.isfile(path):
            return None
        return os.path.getmtime(path)


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in name)
