"""LLEE — the Low Level Execution Environment (Section 4.1).

The translation strategy in one sentence: *offline translation when
possible, online translation whenever necessary.*

When asked to run a virtual executable, LLEE:

1. looks for a cached native translation through the OS-provided
   storage API (if one was registered), validating its timestamp
   against the executable's;
2. on a hit, relocates the cached native code and runs it directly —
   no translation cost at all;
3. on a miss (or with no storage API), invokes the function-at-a-time
   JIT, then writes the new translation back to the cache for next
   time;
4. during idle time, the OS may request :meth:`LLEE.offline_translate`,
   which populates the cache without executing ("initiating 'execution'
   as above, but flagging it for translation and not actual
   execution").
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro import observe
from repro.bitcode.reader import read_module
from repro.execution.fastpath import DecodeCache
from repro.execution.interpreter import Interpreter
from repro.execution.machine_sim import MachineSimulator
from repro.llee.jit import FunctionJIT, JITStats
from repro.llee.storage import StorageAPI
from repro.targets.native import (
    NativeModule,
    deserialize_native,
    serialize_native,
)

_CACHE_NAME = "llee-native"


def _flight_cache(event: str, cache: str, **fields) -> None:
    """One ``llee.cache`` flight event (hit/miss/store/invalid) —
    only emitted on cold cache-management paths."""
    flight = observe.flight()
    if flight is not None:
        flight.record("llee.cache", cache=cache, event=event, **fields)


@dataclass
class RunReport:
    """Everything one LLEE run observed."""

    return_value: object
    output: str
    exit_status: int
    cycles: int
    native_instructions_executed: int
    #: Did a valid cached translation exist before this run?
    cache_hit: bool
    #: Functions translated online during this run.
    functions_jitted: int
    translate_seconds: float
    run_seconds: float

    @property
    def translate_run_ratio(self) -> float:
        if self.run_seconds <= 0:
            return float("inf")
        return self.translate_seconds / self.run_seconds


@dataclass
class InterpretedRunReport:
    """Outcome of one :meth:`LLEE.run_interpreted` call."""

    return_value: object
    output: str
    exit_status: int
    steps: int
    engine: str
    #: Did a previous run leave a reusable decoded module behind?
    cache_hit: bool
    decode_seconds: float
    run_seconds: float
    #: Was the run executed under llva-san shadow-memory checking?
    sanitized: bool = False
    #: Tier-2 translation activity (all zero unless ``tier2=True``).
    tier2_steps: int = 0
    tier2_calls: int = 0
    tier2_functions_compiled: int = 0
    tier2_warm_compiles: int = 0
    tier2_compile_seconds: float = 0.0
    #: Did a persisted tier-2 translation blob validate and load?
    translation_cache_hit: bool = False
    #: Superblock/OSR activity (zero unless ``superblocks``/``osr``).
    tier2_superblocks: int = 0
    tier2_osr_entries: int = 0
    tier2_osr_upgrades: int = 0
    tier2_side_exits: int = 0
    #: Did a persisted block-profile snapshot validate and load?
    profile_cache_hit: bool = False
    #: Asynchronous-compilation activity (zero unless
    #: ``async_compile=True``).
    tier2_async: bool = False
    #: Background-compiled units installed at a safe point this run.
    tier2_swap_ins: int = 0
    #: Total enqueue-to-swap-in latency across those installs.
    tier2_swap_wait_seconds: float = 0.0
    #: Jobs still queued/building when the program finished (drained
    #: before this report is built, so their units persist anyway).
    tier2_pending_at_exit: int = 0
    #: High-water mark of the compile service queue.
    tier2_queue_peak: int = 0
    #: Tier-3 (hosted native) activity (zero unless ``tier3=True``).
    tier3_steps: int = 0
    tier3_calls: int = 0
    tier3_functions_compiled: int = 0
    tier3_warm_compiles: int = 0
    tier3_compile_seconds: float = 0.0
    tier3_deopts: int = 0
    tier3_pins: int = 0
    #: Did a persisted tier-3 native blob validate and load?
    tier3_cache_hit: bool = False
    #: Requested tier-3 execution backend ("" unless ``tier3=True``).
    tier3_backend: str = ""
    #: Units running the block-compiled direct-threaded backend vs the
    #: one-instruction step backend (requested or degraded).
    tier3_threaded_units: int = 0
    tier3_step_units: int = 0
    #: Threaded compiles that fell back per-function to the step
    #: backend (an unsupported instruction — counted, never pinned).
    tier3_degraded: int = 0


class LLEE:
    """The execution manager for one target processor."""

    def __init__(self, target, storage: Optional[StorageAPI] = None):
        self.target = target
        #: Registered via the OS at startup (the paper's
        #: ``llva.storage.register`` bootstrap); None = no OS support,
        #: every run translates online (the DAISY/Crusoe situation).
        self.storage = storage
        #: Observability hook: the engine from the most recent
        #: :meth:`run_executable`, so callers (``repro stats``,
        #: :func:`repro.llee.profile.read_profile`) can inspect the
        #: finished run's memory image.
        self.last_simulator: Optional[MachineSimulator] = None
        #: Decoded-module reuse for :meth:`run_interpreted`: object-code
        #: key -> (module, DecodeCache).  The interpreter analogue of
        #: the native translation cache — decode once, run many times.
        self._interp_cache: dict = {}
        #: One background CompileService shared by every async tier-2
        #: cache this LLEE creates (the multi-tenant translation-
        #: service shape), created lazily on the first async run.
        self._compile_service = None

    def compile_service(self, workers: Optional[int] = None):
        """The shared background compile service (created on first
        use).  *workers* only takes effect at creation time."""
        if self._compile_service is None:
            from repro.llee.compile_service import (
                CompileService, DEFAULT_WORKERS)
            self._compile_service = CompileService(
                workers=DEFAULT_WORKERS if workers is None else workers)
        return self._compile_service

    def close(self) -> None:
        """Shut down the shared compile service, if one was created."""
        if self._compile_service is not None:
            self._compile_service.shutdown(wait=False)
            self._compile_service = None

    # -- the paper's Figure 3 flow -----------------------------------------

    def run_executable(self, object_code: bytes, entry: str = "main",
                       args: Sequence[object] = (),
                       executable_timestamp: Optional[float] = None
                       ) -> RunReport:
        """Load and execute a virtual executable."""
        with observe.span("llee.run_executable",
                          target=self.target.name,
                          entry=entry) as run_span:
            module = read_module(object_code)
            key = self._cache_key(object_code)
            with observe.span("llee.cache_lookup", key=key):
                native, cache_hit = self._lookup_cache(
                    key, executable_timestamp)
            observe.counter(
                "llee.cache.hit" if cache_hit else "llee.cache.miss",
                1, target=self.target.name)
            _flight_cache("hit" if cache_hit else "miss", _CACHE_NAME,
                          key=key, target=self.target.name)
            if native is None:
                native = NativeModule(self.target, module.name)
            jit = FunctionJIT(module, self.target)
            simulator = MachineSimulator(native, module,
                                         resolver=jit.translate)
            self.last_simulator = simulator
            simulator.smc_listeners.append(jit.on_smc_replace(native))
            run_started = time.perf_counter()
            with observe.span("llee.execute", entry=entry):
                value, status = simulator.run(entry, args)
            run_seconds = time.perf_counter() - run_started \
                - jit.stats.translate_seconds
            run_span.set(cache_hit=cache_hit,
                         functions_jitted=jit.stats.functions_translated)
            if self.storage is not None \
                    and jit.stats.functions_translated:
                # Write back any code the JIT had to generate.
                with observe.span("llee.cache_store", key=key):
                    self._store_cache(key, native)
                observe.counter("llee.cache.store", 1,
                                target=self.target.name)
                _flight_cache("store", _CACHE_NAME, key=key,
                              target=self.target.name)
        return RunReport(
            return_value=value,
            output=simulator.output_text(),
            exit_status=status,
            cycles=simulator.cycles,
            native_instructions_executed=simulator.instructions_executed,
            cache_hit=cache_hit,
            functions_jitted=jit.stats.functions_translated,
            translate_seconds=jit.stats.translate_seconds,
            run_seconds=max(run_seconds, 0.0),
        )

    def run_interpreted(self, object_code: bytes, entry: str = "main",
                        args: Sequence[object] = (),
                        engine: str = "fast",
                        privileged: bool = False,
                        sanitize: bool = False,
                        tier2: bool = False,
                        tier2_threshold: Optional[int] = None,
                        superblocks: bool = False,
                        osr: bool = False,
                        async_compile: bool = False,
                        compile_workers: Optional[int] = None,
                        tier3: bool = False,
                        tier3_threshold: Optional[int] = None,
                        tier3_target: Optional[str] = None,
                        tier3_backend: Optional[str] = None,
                        executable_timestamp: Optional[float] = None
                        ) -> InterpretedRunReport:
        """Run a virtual executable on an interpreter engine.

        With ``engine="fast"``, the decoded module is cached across
        invocations keyed on the object code — the pre-decode cost is
        paid once.  A run that triggers ``llva.smc.replace`` drops the
        cached module (its in-memory body has been mutated), so the
        next invocation re-reads the pristine object code, matching the
        fresh-module semantics of :meth:`run_executable`.

        ``tier2=True`` enables the tiered translator: the Tier2Cache is
        kept alongside the decode cache (hot functions stay compiled
        across invocations), and — when this LLEE was constructed with
        a storage API — tier-2 source is persisted through it under the
        ``llee-tier2`` cache, so a fresh process warm-starts from the
        offline translation exactly like the native path does.  A
        stale, corrupt, or mismatched blob logs ``llee.cache.invalid``
        and degrades to online translation.

        ``superblocks=True`` (tier 2 only) turns on trace-guided
        superblock emission — hot multi-block paths compile to
        straight-line code, with the block profile persisted next to
        the translation blob so layouts form on warm starts without
        re-profiling.  ``osr=True`` additionally lets a tier-1
        activation stuck in a hot loop enter tier 2 mid-function
        (on-stack replacement); OSR changes the decoded tier-1
        closures, so its decoded modules are keyed separately.

        ``sanitize=True`` runs under llva-san (shadow-memory checking);
        sanitized decode caches are keyed separately because their
        closures carry site instrumentation.  The sanitizer pins
        execution to tier 1 (see ``docs/PERFORMANCE.md``).

        ``async_compile=True`` (tier 2 only) routes promotions through
        this LLEE's shared background :class:`CompileService` — the
        paper's idle-time translation: the promoting call keeps
        running tier 1 and the finished unit is swapped in at the next
        safe point.  In-flight jobs are drained before the report is
        built, so persistence and the compile statistics are complete
        either way.

        ``tier3=True`` (implies tier 2) adds the top rung of the
        ladder: functions that stay hot *inside* tier 2 are translated
        with the offline FunctionJIT pipeline (``tier3_target`` picks
        the back end) and executed by the hosted machine-code
        executor.  With a storage API the native units persist under
        the ``llee-tier3`` cache next to the ``llee-tier2`` blob.
        ``tier3_backend`` picks how hosted units execute: the
        block-compiled direct-threaded backend (``"threaded"``, the
        default) or the one-instruction ``"step"`` oracle.
        """
        tier2_live = (bool(tier2) or bool(tier3)) and engine == "fast" \
            and not sanitize
        use_superblocks = tier2_live and bool(superblocks)
        use_osr = tier2_live and bool(osr)
        use_async = tier2_live and bool(async_compile)
        use_tier3 = tier2_live and bool(tier3)
        parts = ["interp"]
        if sanitize:
            parts.append("san")
        if use_superblocks:
            parts.append("sb")
        if use_osr:
            parts.append("osr")
        if use_async:
            parts.append("async")
        if use_tier3:
            parts.append("t3")
            # Step-backend caches are keyed apart from the (default)
            # threaded ones: a cached Tier2Cache carries already-built
            # units for one backend.
            if tier3_backend == "step":
                parts.append("t3s")
        key = "-".join(parts) + "-" + self._cache_key(object_code)
        with observe.span("llee.run_interpreted", entry=entry,
                          engine=engine, tier2=bool(tier2)):
            cached = self._interp_cache.get(key) if engine == "fast" \
                else None
            cache_hit = cached is not None
            tier2_cache = None
            if cached is None:
                module = read_module(object_code)
                decode_cache = DecodeCache(module.target_data,
                                           sanitize=sanitize,
                                           osr=use_osr)
            else:
                module, decode_cache, tier2_cache = cached
            if tier2_live and tier2_cache is None:
                from repro.execution.tier2 import Tier2Cache

                kwargs = {}
                if tier2_threshold is not None:
                    kwargs["threshold"] = tier2_threshold
                if use_async:
                    kwargs["compile_service"] = \
                        self.compile_service(compile_workers)
                if use_tier3:
                    kwargs["tier3"] = True
                    if tier3_threshold is not None:
                        kwargs["tier3_threshold"] = tier3_threshold
                    if tier3_target is not None:
                        kwargs["tier3_target"] = tier3_target
                    if tier3_backend is not None:
                        kwargs["tier3_backend"] = tier3_backend
                tier2_cache = Tier2Cache(module, module.target_data,
                                         superblocks=use_superblocks,
                                         osr=use_osr,
                                         **kwargs)
                if self.storage is not None:
                    tier2_cache.attach_storage(
                        self.storage, self._cache_key(object_code),
                        executable_timestamp=executable_timestamp)
            observe.counter(
                "llee.cache.hit" if cache_hit else "llee.cache.miss",
                1, target="interp")
            _flight_cache("hit" if cache_hit else "miss",
                          "llee-interp", key=key)
            interpreter = Interpreter(
                module, privileged=privileged, engine=engine,
                decode_cache=decode_cache if engine == "fast" else None,
                sanitize=sanitize,
                tier2=tier2_cache if tier2_cache is not None else False,
                tier2_threshold=tier2_threshold)
            smc_fired = []
            interpreter.smc_listeners.append(smc_fired.append)
            decode_before = decode_cache.stats.decode_seconds
            compile_before = tier2_cache.stats.compile_seconds \
                if tier2_cache is not None else 0.0
            started = time.perf_counter()
            result = interpreter.run(entry, list(args))
            run_seconds = time.perf_counter() - started
            pending_at_exit = tier2_cache.pending_compiles \
                if tier2_cache is not None else 0
            if engine == "fast":
                if smc_fired:
                    self._interp_cache.pop(key, None)
                else:
                    self._interp_cache[key] = (
                        module, decode_cache, tier2_cache)
            if tier2_cache is not None:
                tier2_cache.flush_storage()
            decode_seconds = decode_cache.stats.decode_seconds \
                - decode_before
        report = InterpretedRunReport(
            return_value=result.return_value,
            output=result.output,
            exit_status=result.exit_status,
            steps=result.steps,
            engine=engine,
            cache_hit=cache_hit,
            decode_seconds=decode_seconds,
            run_seconds=max(run_seconds - decode_seconds, 0.0),
            sanitized=sanitize,
        )
        if tier2_cache is not None:
            report.tier2_steps = getattr(interpreter, "tier2_steps", 0)
            report.tier2_calls = getattr(interpreter, "tier2_calls", 0)
            report.tier2_functions_compiled = \
                tier2_cache.stats.functions_compiled
            report.tier2_warm_compiles = tier2_cache.stats.warm_compiles
            report.tier2_compile_seconds = \
                tier2_cache.stats.compile_seconds - compile_before
            report.translation_cache_hit = \
                tier2_cache.translation_cache_hit
            report.tier2_superblocks = \
                tier2_cache.stats.superblocks_compiled
            report.tier2_osr_entries = tier2_cache.stats.osr_entries
            report.tier2_osr_upgrades = tier2_cache.stats.osr_upgrades
            report.tier2_side_exits = \
                getattr(interpreter, "t2_side_exits", 0)
            report.profile_cache_hit = tier2_cache.profile_cache_hit
            report.tier2_async = tier2_cache.async_compile
            report.tier2_swap_ins = tier2_cache.stats.swap_ins
            report.tier2_swap_wait_seconds = \
                tier2_cache.stats.swap_wait_seconds
            report.tier2_pending_at_exit = pending_at_exit
            if self._compile_service is not None:
                report.tier2_queue_peak = \
                    self._compile_service.stats.queue_peak
            if tier2_cache.tier3:
                report.tier3_steps = getattr(interpreter,
                                             "tier3_steps", 0)
                report.tier3_calls = getattr(interpreter,
                                             "tier3_calls", 0)
                report.tier3_functions_compiled = \
                    tier2_cache.stats.tier3_compiled
                report.tier3_warm_compiles = tier2_cache.stats.tier3_warm
                report.tier3_compile_seconds = \
                    tier2_cache.stats.tier3_compile_seconds
                report.tier3_deopts = tier2_cache.stats.tier3_deopts
                report.tier3_pins = tier2_cache.stats.tier3_pins
                report.tier3_cache_hit = tier2_cache.tier3_cache_hit
                report.tier3_backend = tier2_cache.tier3_backend
                report.tier3_threaded_units = \
                    tier2_cache.stats.tier3_threaded_units
                report.tier3_step_units = \
                    tier2_cache.stats.tier3_step_units
                report.tier3_degraded = \
                    tier2_cache.stats.tier3_degraded
        return report

    def offline_translate(self, object_code: bytes,
                          optimize_level: int = 0) -> JITStats:
        """Idle-time translation: populate the cache, execute nothing.

        A nonzero ``optimize_level`` is the paper's *install-time
        optimization* (Section 4.2, item 2): since the rich code
        representation is still available at install time, the
        translator runs its optimizer before generating code for this
        particular system, and the cache serves the tuned translation
        on every subsequent launch.
        """
        if self.storage is None:
            raise RuntimeError(
                "offline translation requires the storage API")
        with observe.span("llee.offline_translate",
                          target=self.target.name,
                          optimize_level=optimize_level):
            module = read_module(object_code)
            if optimize_level > 0:
                from repro.transforms.pass_manager import optimize

                optimize(module, level=optimize_level)
            jit = FunctionJIT(module, self.target)
            native = jit.translate_all()
            self._store_cache(self._cache_key(object_code), native)
            observe.counter("llee.offline_translations", 1,
                            target=self.target.name)
        return jit.stats

    def invalidate(self, object_code: bytes) -> None:
        """Drop any cached translation of this executable."""
        if self.storage is not None:
            self.storage.write(_CACHE_NAME,
                               self._cache_key(object_code), b"",
                               timestamp=0.0)

    # -- cache plumbing ---------------------------------------------------------

    def _cache_key(self, object_code: bytes) -> str:
        digest = hashlib.sha256(object_code).hexdigest()[:24]
        return "{0}-{1}".format(self.target.name, digest)

    def _lookup_cache(self, key: str,
                      executable_timestamp: Optional[float]):
        if self.storage is None:
            return None, False
        # The storage API is strictly optional; a failing implementation
        # must degrade to online translation, never break execution
        # (Section 4.1: "the system will operate correctly in their
        # absence").
        try:
            data = self.storage.read(_CACHE_NAME, key)
            if not data:
                return None, False
            if executable_timestamp is not None:
                cached_at = self.storage.timestamp(_CACHE_NAME, key)
                if cached_at is None or cached_at < executable_timestamp:
                    # Stale translation: the executable was rebuilt
                    # after the cache entry was written.
                    observe.counter("llee.cache.invalid", 1,
                                    target=self.target.name,
                                    reason="stale")
                    _flight_cache("invalid", _CACHE_NAME, key=key,
                                  reason="stale")
                    return None, False
            native = deserialize_native(data, self.target)
        except Exception as error:
            # Corrupt or truncated entry, or a failing storage
            # implementation: record why, then translate online.
            observe.counter("llee.cache.invalid", 1,
                            target=self.target.name,
                            reason=type(error).__name__)
            _flight_cache("invalid", _CACHE_NAME, key=key,
                          reason=type(error).__name__)
            return None, False
        return native, True

    def _store_cache(self, key: str, native: NativeModule) -> None:
        try:
            self.storage.write(_CACHE_NAME, key,
                               serialize_native(native))
        except Exception:
            pass  # cache write-back is best-effort
